//! The `ximd-serve` job daemon.
//!
//! Architecture: one acceptor (the thread that called [`Server::run`])
//! plus a fixed pool of worker threads draining a shared `Job` queue.
//! Accepted connections become `Job::Conn` entries; a worker owns a
//! connection for its whole lifetime, answering frames in a loop
//! (request pipelining is the client's prerogative; responses come back
//! in order). Batch requests shard their lanes into `Job::Shard` closures
//! pushed onto the *same* queue, so idle workers help finish a big batch
//! — and the sharding worker drains shard jobs itself while it waits, so
//! a single-threaded pool can never deadlock on its own batch.
//!
//! All state the handlers share lives in [`ServerState`]: the
//! content-addressed [`ArtifactStore`] and the per-op job counters. There
//! is no session table — snapshot state travels in the protocol body
//! (`snapshot` returns the image, `resume` carries it back), which keeps
//! the daemon restartable and the ops idempotent.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use ximd_isa::Addr;
use ximd_sim::backend::{BackendHandle, BackendRequest, ExecutionBackend};
use ximd_sim::{
    decoded::MAX_FAST_WIDTH, DecodedProgram, MachineConfig, Session, SimStats, TimingSpec, Xsim,
};
use ximd_workloads::RunSpec;

use crate::artifact::{program_hash, ArtifactStore};
use crate::hash::format_digest;
use crate::jobs;
use crate::json::JsonWriter;
use crate::wire::{Message, WireError};

/// How a [`Server`] is stood up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (query
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads. Zero means one per available core, capped at 8.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
        }
    }
}

impl ServerConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        thread::available_parallelism().map_or(2, |n| n.get().min(8))
    }
}

enum Job {
    Conn(TcpStream),
    Shard(Box<dyn FnOnce() + Send>),
    Stop,
}

#[derive(Default)]
struct JobQueue {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        self.q.lock().unwrap().push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self) -> Job {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return job;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Removes one queued `Shard` (skipping connections) — the
    /// work-stealing path a batching worker uses while it waits for its
    /// own shards.
    fn try_pop_shard(&self) -> Option<Box<dyn FnOnce() + Send>> {
        let mut q = self.q.lock().unwrap();
        let idx = q.iter().position(|j| matches!(j, Job::Shard(_)))?;
        match q.remove(idx) {
            Some(Job::Shard(f)) => Some(f),
            _ => unreachable!("position() found a shard"),
        }
    }
}

/// Per-backend usage counters, reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default)]
struct BackendCounters {
    /// Machines driven to completion on this backend.
    runs: u64,
    /// Runs that reused cached decode tables from the artifact store.
    decode_cache_hits: u64,
}

/// Shared daemon state: artifact cache, job queue, counters.
pub struct ServerState {
    store: ArtifactStore,
    queue: JobQueue,
    ops: Mutex<HashMap<String, u64>>,
    backends: Mutex<HashMap<String, BackendCounters>>,
    threads: usize,
    started: Instant,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl ServerState {
    /// The content-addressed artifact cache.
    #[must_use]
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    fn record_backend(&self, name: &str, runs: u64, cache_hit: bool) {
        let mut map = self.backends.lock().unwrap();
        let entry = map.entry(name.to_string()).or_default();
        entry.runs += runs;
        entry.decode_cache_hits += u64::from(cache_hit);
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A daemon running on a background thread (the shape tests and the CLI's
/// self-hosting mode use).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (after a `shutdown` request).
    ///
    /// # Errors
    ///
    /// The acceptor's I/O error, if it died on one.
    ///
    /// # Panics
    ///
    /// Panics if the acceptor thread itself panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Binds a server and runs it on a background thread.
///
/// # Errors
///
/// Any bind error.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let server = Server::bind(&config)?;
    let addr = server.local_addr();
    let thread = thread::spawn(move || server.run());
    Ok(ServerHandle { addr, thread })
}

impl Server {
    /// Binds the listening socket and allocates shared state; workers
    /// start in [`Server::run`].
    ///
    /// # Errors
    ///
    /// Any `TcpListener::bind` error.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            store: ArtifactStore::new(),
            queue: JobQueue::default(),
            ops: Mutex::new(HashMap::new()),
            backends: Mutex::new(HashMap::new()),
            threads: config.effective_threads(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            addr,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Runs the accept loop until a `shutdown` request arrives, then
    /// drains the workers and returns. Consumes the server.
    ///
    /// # Errors
    ///
    /// A fatal `accept` error (per-connection errors are swallowed; the
    /// peer sees a closed socket).
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.state.threads)
            .map(|_| {
                let state = Arc::clone(&self.state);
                thread::spawn(move || loop {
                    match state.queue.pop() {
                        Job::Conn(stream) => serve_conn(&state, stream),
                        Job::Shard(f) => f(),
                        Job::Stop => break,
                    }
                })
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => self.state.queue.push(Job::Conn(s)),
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        for _ in 0..self.state.threads {
            self.state.queue.push(Job::Stop);
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn serve_conn(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let req = match Message::read_from(&mut stream) {
            Ok(req) => req,
            Err(WireError::Closed) => return,
            Err(e) => {
                let _ = Message::error("usage", &e.to_string()).write_to(&mut stream);
                return;
            }
        };
        let is_shutdown = req.op() == Some("shutdown");
        let resp = dispatch(state, req);
        if resp.write_to(&mut stream).is_err() {
            return;
        }
        if is_shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor out of its blocking accept.
            let _ = TcpStream::connect(state.addr);
            return;
        }
    }
}

fn dispatch(state: &Arc<ServerState>, req: Message) -> Message {
    let op = req.op().unwrap_or("").to_string();
    *state.ops.lock().unwrap().entry(op.clone()).or_insert(0) += 1;
    let result = match op.as_str() {
        "ping" => Ok(Message::ok()
            .with("server", "ximd-serve")
            .with("proto", "1")),
        "assemble" => handle_assemble(state, &req),
        "lint" => handle_lint(state, &req),
        "certify" => handle_certify(state, &req),
        "simulate" => handle_simulate(state, &req),
        "batch" => handle_batch(state, &req),
        "snapshot" => handle_snapshot(state, &req),
        "resume" => handle_resume(state, &req),
        "stats" => Ok(handle_stats(state)),
        "shutdown" => Ok(Message::ok()),
        "" => Err(("usage", "missing op header".to_string())),
        other => Err(("usage", format!("unknown op {other:?}"))),
    };
    result.unwrap_or_else(|(code, msg)| Message::error(code, &msg))
}

type HandlerResult = Result<Message, (&'static str, String)>;

fn source_of(req: &Message) -> Result<String, (&'static str, String)> {
    String::from_utf8(req.body.clone())
        .map_err(|_| ("usage", "request body is not UTF-8 source text".to_string()))
}

fn timing_of(req: &Message) -> Result<Option<TimingSpec>, (&'static str, String)> {
    match req.get("timing") {
        None => Ok(None),
        Some(s) => TimingSpec::parse(s)
            .map(Some)
            .map_err(|e| ("usage", format!("bad timing spec: {e}"))),
    }
}

/// Resolves the request's `backend:` header against the registry (the old
/// `engine:` spelling is rejected with a pointer — it collided with
/// xlint's analysis-engine flag and was retired with `EngineKind`).
fn backend_of(
    req: &Message,
    request: &BackendRequest,
) -> Result<BackendHandle, (&'static str, String)> {
    if req.get("engine").is_some() {
        return Err((
            "usage",
            "the engine header was renamed; send backend: NAME|auto".to_string(),
        ));
    }
    jobs::resolve_backend(req.get("backend"), request).map_err(|e| ("usage", e))
}

fn non_ideal_of(req: &Message) -> Result<bool, (&'static str, String)> {
    Ok(timing_of(req)?.is_some_and(|t| !t.is_ideal()))
}

fn park_of(req: &Message) -> Result<Option<Addr>, (&'static str, String)> {
    match req.get("park") {
        None => Ok(None),
        Some(s) => s
            .parse::<u32>()
            .map(|a| Some(Addr(a)))
            .map_err(|_| ("usage", format!("bad park address {s:?}"))),
    }
}

fn handle_assemble(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let source = source_of(req)?;
    let (artifact, hit) = state
        .store
        .assemble(&source)
        .map_err(|e| ("asm", e.to_string()))?;
    let program = &artifact.assembly.program;
    Ok(Message::ok()
        .with("hash", &format_digest(artifact.hash))
        .with("width", &program.width().to_string())
        .with("len", &program.len().to_string())
        .with("cached", if hit { "true" } else { "false" }))
}

fn handle_lint(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let source = source_of(req)?;
    let (artifact, program_hit) = state
        .store
        .assemble(&source)
        .map_err(|e| ("asm", e.to_string()))?;
    let (report, lint_hit) = state.store.lint(&artifact);
    let mut body = String::new();
    for d in &report.diagnostics {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("severity", &d.severity.to_string());
        w.field_str("message", &d.to_string());
        w.end_object();
        body.push_str(&w.finish());
        body.push('\n');
    }
    let errors = report.has_errors();
    let mut resp = Message::ok()
        .with("hash", &format_digest(artifact.hash))
        .with("cached_program", if program_hit { "true" } else { "false" })
        .with("cached_lint", if lint_hit { "true" } else { "false" })
        .with("clean", if report.is_clean() { "true" } else { "false" })
        .with("errors", if errors { "true" } else { "false" })
        .with("truncated", if report.truncated { "true" } else { "false" })
        .with("diagnostics", &report.diagnostics.len().to_string());
    resp.body = body.into_bytes();
    Ok(resp)
}

fn handle_certify(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let source = source_of(req)?;
    let (artifact, program_hit) = state
        .store
        .assemble(&source)
        .map_err(|e| ("asm", e.to_string()))?;
    let (outcome, certify_hit) = state.store.certify(&artifact);
    let mut resp = Message::ok()
        .with("hash", &format_digest(artifact.hash))
        .with("cached_program", if program_hit { "true" } else { "false" })
        .with("cached_certify", if certify_hit { "true" } else { "false" });
    match &*outcome {
        ximd_analysis::CertifyOutcome::Missing => {
            resp.set("certificate", "missing");
        }
        ximd_analysis::CertifyOutcome::Unparseable(err) => {
            resp.set("certificate", "invalid");
            resp.body = err.clone().into_bytes();
        }
        ximd_analysis::CertifyOutcome::Report(report) => {
            resp.set("certificate", "ok");
            resp.set("clean", if report.is_clean() { "true" } else { "false" });
            resp.set("errors", if report.has_errors() { "true" } else { "false" });
            resp.set("diagnostics", &report.diagnostics.len().to_string());
            let mut body = String::new();
            for d in &report.diagnostics {
                let mut w = JsonWriter::new();
                w.begin_object();
                w.field_str("severity", &d.severity.to_string());
                w.field_str("message", &d.to_string());
                w.end_object();
                body.push_str(&w.finish());
                body.push('\n');
            }
            resp.body = body.into_bytes();
        }
    }
    Ok(resp)
}

/// A machine plus drive spec from either input form (`workload` header or
/// source body), with decode tables when the cache applies.
struct PreparedJob {
    sim: Xsim,
    spec: RunSpec,
    hash: u64,
    cached_program: bool,
    tables: Option<Arc<DecodedProgram>>,
    cached_decode: bool,
}

fn prepare_job(
    state: &Arc<ServerState>,
    req: &Message,
    backend: &dyn ExecutionBackend,
) -> Result<PreparedJob, (&'static str, String)> {
    let timing = timing_of(req)?;
    let (sim, mut spec, cached_program) = if let Some(name) = req.get("workload") {
        let n = req.get_usize("n").unwrap_or(32);
        let seed = req.get_u64("seed").unwrap_or(0);
        let (sim, spec) =
            jobs::prepare_timed(name, n, seed, timing.as_ref()).map_err(|e| ("usage", e))?;
        (sim, spec, false)
    } else {
        let source = source_of(req)?;
        let (artifact, hit) = state
            .store
            .assemble(&source)
            .map_err(|e| ("asm", e.to_string()))?;
        let program = artifact.assembly.program.clone();
        let mut config = MachineConfig::with_width(program.width());
        if let Some(t) = &timing {
            config.timing = t.clone();
        }
        let sim = Xsim::new(program, config).map_err(|e| ("sim", e.to_string()))?;
        let budget = req.get_u64("budget").unwrap_or(1 << 20);
        let spec = match park_of(req)? {
            Some(p) => RunSpec::Parked(p, budget),
            None => RunSpec::Run(budget),
        };
        (sim, spec, hit)
    };
    // Explicit budget/park headers override a workload's defaults too.
    if req.get("workload").is_some() {
        if let Some(b) = req.get_u64("budget") {
            spec = match spec {
                RunSpec::Run(_) => RunSpec::Run(b),
                RunSpec::Parked(p, _) => RunSpec::Parked(p, b),
            };
        }
        if let Some(p) = park_of(req)? {
            spec = RunSpec::Parked(p, spec.budget());
        }
    }
    let hash = program_hash(sim.program());
    let cacheable = backend.capabilities().uses_decoded_tables
        && sim.config().timing.is_ideal()
        && sim.config().width <= MAX_FAST_WIDTH;
    let (tables, cached_decode) = if cacheable {
        let (t, hit) = state.store.decoded(sim.program(), sim.config().num_regs);
        (Some(t), hit)
    } else {
        (None, false)
    };
    Ok(PreparedJob {
        sim,
        spec,
        hash,
        cached_program,
        tables,
        cached_decode,
    })
}

fn handle_simulate(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let request = BackendRequest {
        non_ideal_timing: non_ideal_of(req)?,
        ..BackendRequest::default()
    };
    let backend = backend_of(req, &request)?;
    let job = prepare_job(state, req, backend.as_ref())?;
    let stats = jobs::run_one(job.sim, job.spec, backend.as_ref(), job.tables.clone())
        .map_err(|e| ("sim", e.to_string()))?;
    state.record_backend(backend.name(), 1, job.cached_decode);
    let mut resp = Message::ok()
        .with("hash", &format_digest(job.hash))
        .with("backend", backend.name())
        .with(
            "cached_program",
            if job.cached_program { "true" } else { "false" },
        )
        .with(
            "cached_decode",
            if job.cached_decode { "true" } else { "false" },
        )
        .with("cycles", &stats.cycles.to_string());
    resp.body = jobs::stats_json(&stats).into_bytes();
    Ok(resp)
}

fn handle_batch(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let Some(name) = req.get("workload") else {
        return Err(("usage", "batch requires a workload header".to_string()));
    };
    let name = name.to_string();
    let lanes = req.get_usize("lanes").unwrap_or(8).clamp(1, 4096);
    let n = req.get_usize("n").unwrap_or(32);
    let seed = req.get_u64("seed").unwrap_or(0);
    let timing = timing_of(req)?;
    let request = BackendRequest {
        non_ideal_timing: timing.as_ref().is_some_and(|t| !t.is_ideal()),
        lanes,
        ..BackendRequest::default()
    };
    let backend = backend_of(req, &request)?;

    let mut prepared = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        prepared.push(
            jobs::prepare_timed(&name, n, seed.wrapping_add(lane as u64), timing.as_ref())
                .map_err(|e| ("usage", e))?,
        );
    }
    let proto = &prepared[0].0;
    let cacheable = backend.capabilities().uses_decoded_tables
        && proto.config().timing.is_ideal()
        && proto.config().width <= MAX_FAST_WIDTH;
    let (tables, cached_decode) = if cacheable {
        let (t, hit) = state
            .store
            .decoded(proto.program(), proto.config().num_regs);
        (Some(t), hit)
    } else {
        (None, false)
    };
    let hash = program_hash(proto.program());

    // Shard across the pool: ceil-split into at most `threads` chunks,
    // queue all but the first, run the first inline, then steal queued
    // shards while waiting. Every shard is thus guaranteed a thread even
    // on a single-worker pool.
    let shards = state.threads.clamp(1, lanes);
    let chunk = lanes.div_ceil(shards);
    let (tx, rx) = mpsc::channel::<(usize, Result<Vec<SimStats>, String>)>();
    let mut chunks: Vec<Vec<(Xsim, RunSpec)>> = Vec::new();
    while !prepared.is_empty() {
        let rest = prepared.split_off(prepared.len().min(chunk));
        chunks.push(std::mem::replace(&mut prepared, rest));
    }
    let num_shards = chunks.len();
    let run_shard = {
        let tables = tables.clone();
        let backend = backend.clone();
        move |shard: Vec<(Xsim, RunSpec)>| -> Result<Vec<SimStats>, String> {
            jobs::run_shard(shard, backend.as_ref(), tables.clone()).map_err(|e| e.to_string())
        }
    };
    let run_shard = Arc::new(run_shard);
    let mut iter = chunks.into_iter().enumerate();
    let first = iter.next();
    for (idx, shard) in iter {
        let tx = tx.clone();
        let run_shard = Arc::clone(&run_shard);
        state.queue.push(Job::Shard(Box::new(move || {
            let _ = tx.send((idx, run_shard(shard)));
        })));
    }
    if let Some((idx, shard)) = first {
        let _ = tx.send((idx, run_shard(shard)));
    }
    drop(tx);
    let mut results: Vec<Option<Vec<SimStats>>> = vec![None; num_shards];
    let mut received = 0;
    while received < num_shards {
        // Prefer stealing queued shard work (ours or anyone's) over
        // blocking, so the pool can never wedge on its own batch.
        if let Some(f) = state.queue.try_pop_shard() {
            f();
            continue;
        }
        match rx.recv() {
            Ok((idx, result)) => {
                results[idx] = Some(result.map_err(|e| ("sim", e))?);
                received += 1;
            }
            Err(_) => break,
        }
    }

    let mut all: Vec<SimStats> = Vec::with_capacity(lanes);
    for r in results {
        all.extend(r.ok_or(("internal", "batch shard lost".to_string()))?);
    }
    state.record_backend(backend.name(), lanes as u64, cached_decode);
    let total_cycles: u64 = all.iter().map(|s| s.cycles).sum();
    let total_ops: u64 = all.iter().map(|s| s.ops).sum();
    let max_cycles = all.iter().map(|s| s.cycles).max().unwrap_or(0);

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("workload", &name);
    w.field_str("backend", backend.name());
    w.field_u64("lanes", lanes as u64);
    w.field_u64("shards", num_shards as u64);
    w.field_u64("total_cycles", total_cycles);
    w.field_u64("total_ops", total_ops);
    w.field_u64("max_cycles", max_cycles);
    w.key("lane_cycles");
    w.begin_array();
    for s in &all {
        w.value_u64(s.cycles);
    }
    w.end_array();
    w.end_object();

    let mut resp = Message::ok()
        .with("hash", &format_digest(hash))
        .with("backend", backend.name())
        .with("lanes", &lanes.to_string())
        .with("shards", &num_shards.to_string())
        .with(
            "cached_decode",
            if cached_decode { "true" } else { "false" },
        )
        .with("total_cycles", &total_cycles.to_string());
    resp.body = w.finish().into_bytes();
    Ok(resp)
}

fn handle_snapshot(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let Some(upto) = req.get_u64("upto") else {
        return Err((
            "usage",
            "snapshot requires an upto header (cycle mark)".to_string(),
        ));
    };
    // Advancing to a mark is interpreter stepping on every backend (the
    // advance_to default), but the handle still carries the decode-table
    // policy and the capability check.
    let request = BackendRequest {
        non_ideal_timing: non_ideal_of(req)?,
        snapshot: true,
        ..BackendRequest::default()
    };
    let backend = backend_of(req, &request)?;
    let job = prepare_job(state, req, backend.as_ref())?;
    let (park, budget) = match job.spec {
        RunSpec::Run(b) => (None, b),
        RunSpec::Parked(p, b) => (Some(p), b),
    };
    let mut session = backend
        .prepare(vec![job.sim], job.tables.clone())
        .map_err(|e| ("sim", e.to_string()))?;
    backend
        .advance_to(&mut session, park, upto)
        .map_err(|e| ("sim", e.to_string()))?;
    let image = backend
        .snapshot(&session)
        .map_err(|e| ("internal", e.to_string()))?;
    state.record_backend(backend.name(), 1, job.cached_decode);
    let mut resp = Message::ok()
        .with("hash", &format_digest(job.hash))
        .with("backend", backend.name())
        .with("cycle", &session.cycle().to_string())
        .with(
            "complete",
            if session.complete() { "true" } else { "false" },
        )
        .with("budget", &budget.to_string())
        .with("bytes", &image.len().to_string());
    if let Some(p) = park {
        resp.set("park", &p.0.to_string());
    }
    resp.body = image;
    Ok(resp)
}

fn handle_resume(state: &Arc<ServerState>, req: &Message) -> HandlerResult {
    let Some(budget) = req.get_u64("budget") else {
        return Err((
            "usage",
            "resume requires a budget header (absolute cycle budget)".to_string(),
        ));
    };
    let park = park_of(req)?;
    let mut session = Session::restore(&req.body).map_err(|e| ("sim", e.to_string()))?;
    let backend = backend_of(req, &session.backend_request())?;
    session
        .finish(park, budget, backend.as_ref())
        .map_err(|e| ("sim", e.to_string()))?;
    state.record_backend(backend.name(), 1, false);
    let hash = session.machine().map(|sim| program_hash(sim.program()));
    let mut resp = Message::ok()
        .with("backend", backend.name())
        .with("cycles", &session.cycle().to_string())
        .with(
            "complete",
            if session.complete() { "true" } else { "false" },
        );
    if let Some(h) = hash {
        resp.set("hash", &format_digest(h));
    }
    let body = match session.machine() {
        Some(sim) => jobs::stats_json(sim.stats()),
        None => {
            let batch = session.batch().expect("session is machine or batch");
            let mut lines = String::new();
            for lane in 0..batch.lanes() {
                lines.push_str(&jobs::stats_json(batch.stats(lane)));
                lines.push('\n');
            }
            lines
        }
    };
    resp.body = body.into_bytes();
    Ok(resp)
}

fn handle_stats(state: &Arc<ServerState>) -> Message {
    let stages = state.store.counters().snapshot();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("server", "ximd-serve");
    w.field_f64("uptime_secs", state.started.elapsed().as_secs_f64(), 3);
    w.field_u64("threads", state.threads as u64);
    w.field_u64("programs_cached", state.store.len() as u64);
    w.field_u64("decoded_cached", state.store.decoded_len() as u64);
    w.newline();
    w.key("stages");
    w.begin_object();
    w.field_u64("assemble_hits", stages.assemble_hits);
    w.field_u64("assemble_misses", stages.assemble_misses);
    w.field_u64("lint_hits", stages.lint_hits);
    w.field_u64("lint_misses", stages.lint_misses);
    w.field_u64("decode_hits", stages.decode_hits);
    w.field_u64("decode_misses", stages.decode_misses);
    w.field_u64("certify_hits", stages.certify_hits);
    w.field_u64("certify_misses", stages.certify_misses);
    w.end_object();
    w.newline();
    w.key("jobs");
    w.begin_object();
    let ops = state.ops.lock().unwrap();
    let mut names: Vec<_> = ops.keys().collect();
    names.sort();
    for name in names {
        w.field_u64(name, ops[name]);
    }
    drop(ops);
    w.end_object();
    w.newline();
    w.key("backends");
    w.begin_object();
    let backends = state.backends.lock().unwrap();
    let mut names: Vec<_> = backends.keys().collect();
    names.sort();
    for name in names {
        let c = backends[name];
        w.key(name);
        w.begin_object();
        w.field_u64("runs", c.runs);
        w.field_u64("decode_cache_hits", c.decode_cache_hits);
        w.end_object();
    }
    drop(backends);
    w.end_object();
    w.end_object();
    let mut resp = Message::ok();
    resp.body = w.finish().into_bytes();
    resp
}
