//! Blocking client for the `ximd-serve` daemon.
//!
//! One [`Client`] owns one TCP connection and issues synchronous
//! request/response calls. The CLI's `--connect` thin-client mode and the
//! CI smoke tests are both built on this; anything not covered by a
//! convenience method goes through [`Client::call`] with a hand-built
//! [`Message`].

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{Message, WireError};

/// A connected daemon client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (any `host:port` form).
    ///
    /// # Errors
    ///
    /// Any socket error, wrapped as [`WireError::Io`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sets a read timeout so a wedged daemon fails the call instead of
    /// hanging the client forever.
    ///
    /// # Errors
    ///
    /// Any socket error, wrapped as [`WireError::Io`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.stream.set_read_timeout(timeout).map_err(WireError::Io)
    }

    /// Sends one request and reads one response. Transport errors only;
    /// an application-level error still comes back `Ok` (check
    /// [`Message::is_ok`] or chain [`Message::into_result`]).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from framing or the socket.
    pub fn call(&mut self, req: &Message) -> Result<Message, WireError> {
        req.write_to(&mut self.stream)?;
        Message::read_from(&mut self.stream)
    }

    /// [`Client::call`] plus [`Message::into_result`]: application errors
    /// become [`WireError::Remote`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including remote application errors.
    pub fn call_ok(&mut self, req: &Message) -> Result<Message, WireError> {
        self.call(req)?.into_result()
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`].
    pub fn ping(&mut self) -> Result<(), WireError> {
        self.call_ok(&Message::request("ping")).map(|_| ())
    }

    /// Assembles `source` on the daemon; returns the response (headers:
    /// `hash`, `width`, `len`, `cached`).
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including assembly errors reported remotely.
    pub fn assemble(&mut self, source: &str) -> Result<Message, WireError> {
        let mut req = Message::request("assemble");
        req.body = source.as_bytes().to_vec();
        self.call_ok(&req)
    }

    /// Lints `source` on the daemon; returns the response (headers:
    /// `clean`, `errors`, `diagnostics`, cache flags; body: one JSON
    /// diagnostic per line).
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including assembly errors reported remotely.
    pub fn lint(&mut self, source: &str) -> Result<Message, WireError> {
        let mut req = Message::request("lint");
        req.body = source.as_bytes().to_vec();
        self.call_ok(&req)
    }

    /// Verifies `source`'s embedded schedule certificate on the daemon;
    /// returns the response (headers: `certificate` = `ok`/`missing`/
    /// `invalid`, `clean`, `errors`, `diagnostics`, cache flags; body:
    /// one JSON diagnostic per line, or the parse error for `invalid`).
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including assembly errors reported remotely.
    pub fn certify(&mut self, source: &str) -> Result<Message, WireError> {
        let mut req = Message::request("certify");
        req.body = source.as_bytes().to_vec();
        self.call_ok(&req)
    }

    /// Simulates `source` on the daemon (headers per the `simulate` op;
    /// body: the run's statistics as one JSON line). `backend` is a
    /// registry name or `auto`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including simulation errors reported remotely.
    pub fn simulate_source(&mut self, source: &str, backend: &str) -> Result<Message, WireError> {
        let mut req = Message::request("simulate").with("backend", backend);
        req.body = source.as_bytes().to_vec();
        self.call_ok(&req)
    }

    /// Runs a named workload (`bitcount`, `livermore`, `minmax`, `tproc`)
    /// with seeded data on the daemon. `backend` is a registry name or
    /// `auto`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`], including simulation errors reported remotely.
    pub fn simulate_workload(
        &mut self,
        name: &str,
        n: usize,
        seed: u64,
        backend: &str,
    ) -> Result<Message, WireError> {
        let req = Message::request("simulate")
            .with("workload", name)
            .with("n", &n.to_string())
            .with("seed", &seed.to_string())
            .with("backend", backend);
        self.call_ok(&req)
    }

    /// Fetches the daemon's stats document (cache stage counters, job
    /// counts, uptime) as JSON text.
    ///
    /// # Errors
    ///
    /// Any [`WireError`].
    pub fn stats(&mut self) -> Result<String, WireError> {
        let resp = self.call_ok(&Message::request("stats"))?;
        String::from_utf8(resp.body).map_err(|_| WireError::Malformed("non-UTF-8 stats body"))
    }

    /// Asks the daemon to shut down after replying.
    ///
    /// # Errors
    ///
    /// Any [`WireError`].
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.call_ok(&Message::request("shutdown")).map(|_| ())
    }
}
