//! Session/artifact service layer for the XIMD toolchain.
//!
//! The simulators in `ximd-sim` are libraries: every caller re-assembles,
//! re-lints and re-decodes its program from scratch. This crate adds the
//! infrastructure to amortize that work across submissions and across
//! processes:
//!
//! * [`hash`] — the FNV-1a content hash that keys every cache;
//! * [`ArtifactStore`] — a content-addressed cache mapping source text to
//!   its assembled [`Program`](ximd_isa::Program), lint report and decoded
//!   execution tables, with per-stage hit/miss counters so clients can
//!   verify which stages were actually skipped;
//! * [`json`] — the hand-rolled JSON emit/parse helpers shared with
//!   `ximd-bench` (the workspace's serde stand-in cannot serialize, so
//!   every JSON document in the tree goes through these);
//! * [`wire`] — the length-prefixed request/response framing the daemon
//!   speaks;
//! * [`server`] — the `ximd-serve` job daemon: a std-only thread pool and
//!   work queue behind a `TcpListener`, sharding batch jobs across workers
//!   and dispatching to the interpreter, decoded or lane engine;
//! * [`Client`] — the blocking client used by the CLI's `--connect` mode
//!   and the CI smoke tests.
//!
//! Everything is hand-rolled on `std`: no async runtime, no serialization
//! framework, no HTTP. See DESIGN.md §8 for the architecture rationale.

pub mod artifact;
pub mod hash;
pub mod jobs;
pub mod json;
pub mod wire;

pub mod client;
pub mod server;

pub use artifact::{ArtifactStore, ProgramArtifact, StageCounters, StageSnapshot};
pub use client::Client;
pub use hash::fnv1a;
pub use server::{spawn, Server, ServerConfig, ServerHandle};
pub use wire::{Message, WireError};
