//! The `ximd-serve` wire protocol: length-prefixed frames, text headers,
//! binary bodies.
//!
//! A frame on the socket is:
//!
//! ```text
//! u32 LE  payload length (header block + body)
//! u32 LE  header block length
//! bytes   header block — UTF-8 `key: value` lines, '\n'-separated
//! bytes   body — arbitrary binary (source text, snapshot image, JSON)
//! ```
//!
//! Requests carry an `op` header naming the operation; responses carry a
//! `status` header (`ok` or `error`, plus `code`/`error` detail headers on
//! failure). Everything else is op-specific. Binary payloads (snapshot
//! images) ride in the body untouched — no base64, no escaping — which is
//! the reason for the explicit header-length word instead of a separator
//! scan.
//!
//! The format is deliberately dumb: both sides read a whole frame into
//! memory before acting, connections are synchronous request/response, and
//! a frame longer than [`MAX_FRAME`] is a protocol error (the daemon must
//! not let one client allocate unbounded memory).

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame's payload (64 MiB). Large enough for any
/// snapshot image the simulators produce, small enough to bound a
/// malicious client's allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Errors reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O error on the socket.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The frame's structure is inconsistent (header block longer than the
    /// payload, non-UTF-8 headers, malformed `key: value` line).
    Malformed(&'static str),
    /// A well-formed response reported an application error.
    Remote { code: String, message: String },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Remote { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

/// One protocol message: ordered `key: value` headers plus a binary body.
///
/// # Example
///
/// ```
/// use ximd_serve::Message;
///
/// let mut req = Message::request("simulate");
/// req.set("engine", "decoded");
/// req.body = b".width 1\nmain:\n  fu0: nop ; halt\n".to_vec();
///
/// let mut buf = Vec::new();
/// req.write_to(&mut buf).unwrap();
/// let back = Message::read_from(&mut buf.as_slice()).unwrap();
/// assert_eq!(back.op(), Some("simulate"));
/// assert_eq!(back.get("engine"), Some("decoded"));
/// assert_eq!(back.body, req.body);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Message {
    headers: Vec<(String, String)>,
    /// Binary payload (source text, snapshot image, JSON document — per
    /// the operation's contract).
    pub body: Vec<u8>,
}

impl Message {
    /// A new request for operation `op`.
    #[must_use]
    pub fn request(op: &str) -> Message {
        let mut m = Message::default();
        m.set("op", op);
        m
    }

    /// A new success response.
    #[must_use]
    pub fn ok() -> Message {
        let mut m = Message::default();
        m.set("status", "ok");
        m
    }

    /// A new error response. `code` is one of the documented error classes
    /// (`usage`, `asm`, `lint`, `sim`, `internal`); `message` is free text.
    #[must_use]
    pub fn error(code: &str, message: &str) -> Message {
        let mut m = Message::default();
        m.set("status", "error");
        m.set("code", code);
        m.set("error", message);
        m
    }

    /// Sets header `key`, replacing any existing value.
    ///
    /// # Panics
    ///
    /// Panics if the key or value contains a newline or the key contains a
    /// colon — those cannot be framed, and reaching here with one is a
    /// caller bug, not input data.
    pub fn set(&mut self, key: &str, value: &str) -> &mut Message {
        assert!(
            !key.contains([':', '\n']) && !value.contains('\n'),
            "header keys/values must be single-line; key must be colon-free"
        );
        if let Some(slot) = self.headers.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.headers.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Builder-style [`Message::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: &str) -> Message {
        self.set(key, value);
        self
    }

    /// The value of header `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses header `key` as a `u64`.
    #[must_use]
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// Parses header `key` as a `usize`.
    #[must_use]
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.parse().ok()
    }

    /// Parses header `key` as a boolean (`true`/`false`).
    #[must_use]
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    /// The request's operation name.
    #[must_use]
    pub fn op(&self) -> Option<&str> {
        self.get("op")
    }

    /// True for a response whose `status` is `ok`.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.get("status") == Some("ok")
    }

    /// Converts an error response into a [`WireError::Remote`]; passes an
    /// `ok` response through. Lets clients write
    /// `client.call(req)?.into_result()?`.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the response's status is not `ok`.
    pub fn into_result(self) -> Result<Message, WireError> {
        if self.is_ok() {
            Ok(self)
        } else {
            Err(WireError::Remote {
                code: self.get("code").unwrap_or("unknown").to_string(),
                message: self.get("error").unwrap_or("unspecified").to_string(),
            })
        }
    }

    /// All headers in insertion order.
    #[must_use]
    pub fn headers(&self) -> &[(String, String)] {
        &self.headers
    }

    fn header_block(&self) -> String {
        let mut block = String::new();
        for (k, v) in &self.headers {
            block.push_str(k);
            block.push_str(": ");
            block.push_str(v);
            block.push('\n');
        }
        block
    }

    /// Frames and writes the message.
    ///
    /// # Errors
    ///
    /// Any I/O error from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let header = self.header_block();
        let payload_len = 4 + header.len() + self.body.len();
        assert!(payload_len <= MAX_FRAME, "frame exceeds MAX_FRAME");
        w.write_all(&(payload_len as u32).to_le_bytes())?;
        w.write_all(&(header.len() as u32).to_le_bytes())?;
        w.write_all(header.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Reads and decodes one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] on clean EOF before the first length byte,
    /// and the other [`WireError`] variants per their documentation.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Message, WireError> {
        let mut len4 = [0u8; 4];
        // Distinguish a clean close (zero bytes then EOF) from a frame
        // truncated mid-prefix.
        let mut got = 0;
        while got < 4 {
            let n = r.read(&mut len4[got..]).map_err(WireError::from)?;
            if n == 0 {
                return if got == 0 {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Malformed("truncated length prefix"))
                };
            }
            got += n;
        }
        let payload_len = u32::from_le_bytes(len4) as usize;
        if payload_len > MAX_FRAME {
            return Err(WireError::TooLarge(payload_len));
        }
        if payload_len < 4 {
            return Err(WireError::Malformed("payload shorter than header length"));
        }
        let mut payload = vec![0u8; payload_len];
        r.read_exact(&mut payload)?;
        let header_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
        if 4 + header_len > payload_len {
            return Err(WireError::Malformed("header block overruns payload"));
        }
        let header = std::str::from_utf8(&payload[4..4 + header_len])
            .map_err(|_| WireError::Malformed("non-UTF-8 header block"))?;
        let mut headers = Vec::new();
        for line in header.lines() {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(": ")
                .ok_or(WireError::Malformed("header line without ': '"))?;
            headers.push((k.to_string(), v.to_string()));
        }
        let body = payload[4 + header_len..].to_vec();
        Ok(Message { headers, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_with_binary_bodies() {
        let mut msg = Message::request("resume");
        msg.set("budget", "4096");
        msg.body = (0u16..600).flat_map(|v| v.to_le_bytes()).collect();
        // A body full of newlines and fake header text must survive.
        msg.body.extend_from_slice(b"\n\nop: fake\n");

        let mut buf = Vec::new();
        msg.write_to(&mut buf).unwrap();
        let back = Message::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn multiple_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        Message::request("ping").write_to(&mut buf).unwrap();
        Message::request("stats").write_to(&mut buf).unwrap();
        let mut cursor = buf.as_slice();
        assert_eq!(Message::read_from(&mut cursor).unwrap().op(), Some("ping"));
        assert_eq!(Message::read_from(&mut cursor).unwrap().op(), Some("stats"));
        assert!(matches!(
            Message::read_from(&mut cursor),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn oversized_and_torn_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            Message::read_from(&mut buf.as_slice()),
            Err(WireError::TooLarge(_))
        ));

        let mut torn = Vec::new();
        Message::request("ping").write_to(&mut torn).unwrap();
        torn.truncate(torn.len() - 1);
        assert!(matches!(
            Message::read_from(&mut torn.as_slice()),
            Err(WireError::Closed) | Err(WireError::Io(_))
        ));
    }

    #[test]
    fn error_responses_surface_as_remote_errors() {
        let resp = Message::error("usage", "missing op");
        let err = resp.into_result().unwrap_err();
        match err {
            WireError::Remote { code, message } => {
                assert_eq!(code, "usage");
                assert_eq!(message, "missing op");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Message::ok().into_result().is_ok());
    }

    #[test]
    fn set_replaces_existing_headers() {
        let mut m = Message::request("x");
        m.set("k", "1").set("k", "2");
        assert_eq!(m.get("k"), Some("2"));
        assert_eq!(m.headers().len(), 2); // op + k
    }
}
