//! Job execution: the named-workload registry and the backend dispatch
//! the daemon runs every simulation through.
//!
//! The daemon accepts work in two forms — raw source text (assembled
//! through the [`ArtifactStore`](crate::ArtifactStore)) and *named
//! workloads*: the paper's benchmark programs, instantiated with seeded
//! data so a one-line request (`workload: bitcount, n: 64, seed: 7`)
//! reproduces bit-identical runs on any host. Both forms funnel into
//! [`run_one`], which drives whatever [`ExecutionBackend`] the request
//! resolved to (see [`resolve_backend`]) and feeds cached decode tables
//! through [`ExecutionBackend::prepare`] so a warm cache skips lowering
//! entirely.

use std::sync::Arc;

use ximd_sim::backend::{self, BackendHandle, BackendRequest, ExecutionBackend};
use ximd_sim::{DecodedProgram, SimError, SimStats, TimingSpec, Xsim};
use ximd_workloads::{bitcount, gen, livermore, minmax, tproc, with_timing, RunSpec};

use crate::json::JsonWriter;

/// Workloads the daemon can instantiate by name. All are `Xsim`-based and
/// deterministic in `(n, seed)`. (`saxpy` is the VLIW companion's workload
/// and `nonblocking` needs an I/O-port scenario; neither fits the
/// name-plus-scale request shape.)
pub const WORKLOADS: &[&str] = &["bitcount", "livermore", "minmax", "tproc"];

/// Instantiates a named workload: a ready-to-run machine plus the drive
/// spec (budget and park address) its `prepared` constructor mandates.
/// `n` scales the data set (clamped to each workload's minimum); `seed`
/// fixes the generated inputs.
///
/// # Errors
///
/// An unknown name, or any [`SimError`] from the workload constructor,
/// rendered as text (the daemon forwards it in the error response).
pub fn prepare(name: &str, n: usize, seed: u64) -> Result<(Xsim, RunSpec), String> {
    let prepared = match name {
        "bitcount" => bitcount::prepared(&gen::bit_weighted_ints(seed, n.max(1), 24)),
        "livermore" => livermore::prepared(&gen::livermore_y(seed, n.max(1))),
        "minmax" => minmax::prepared(&gen::uniform_ints(seed, n.max(1), -1000, 1000)),
        "tproc" => {
            let v = gen::uniform_ints(seed, 4, -100, 100);
            tproc::prepared(v[0], v[1], v[2], v[3])
        }
        _ => {
            return Err(format!(
                "unknown workload {name:?} (expected one of {})",
                WORKLOADS.join(", ")
            ))
        }
    };
    prepared.map_err(|e| format!("workload {name} failed to prepare: {e}"))
}

/// [`prepare`] plus an optional timing override: swaps the machine onto
/// `timing` and stretches the budget by the model's worst-case factor,
/// exactly as `ximd-workloads::with_timing` does for local runs.
///
/// # Errors
///
/// As [`prepare`], plus degenerate timing specs.
pub fn prepare_timed(
    name: &str,
    n: usize,
    seed: u64,
    timing: Option<&TimingSpec>,
) -> Result<(Xsim, RunSpec), String> {
    let prepared = prepare(name, n, seed)?;
    match timing {
        None => Ok(prepared),
        Some(spec) => with_timing(prepared, spec).map_err(|e| format!("timing override: {e}")),
    }
}

/// Drives one machine to completion on the resolved backend and returns
/// its final statistics.
///
/// `tables` carries cached decode tables from the artifact store; `None`
/// (or a non-matching table) lowers on the fly, so the choice only
/// affects *where the decode time goes*, never the result. Backends that
/// cannot run this machine (a non-ideal timing model on an ideal-only
/// backend) reject with the uniform capability-mismatch error.
///
/// # Errors
///
/// Any [`SimError`] the backend reports, including capability mismatches.
pub fn run_one(
    sim: Xsim,
    spec: RunSpec,
    backend: &dyn ExecutionBackend,
    tables: Option<Arc<DecodedProgram>>,
) -> Result<SimStats, SimError> {
    let mut session = backend.prepare(vec![sim], tables)?;
    let (park, budget) = match spec {
        RunSpec::Run(b) => (None, b),
        RunSpec::Parked(p, b) => (Some(p), b),
    };
    backend.finish(&mut session, park, budget)?;
    Ok(backend.stats(&session).clone())
}

/// Drives a shard of same-workload machines on one backend and returns
/// per-machine statistics. A lane-batching backend runs the whole shard
/// as one lockstep batch (the shard must be drive-uniform — same park
/// mode — with the budget covering every lane being the per-lane maximum,
/// mirroring `ximd_workloads::lane_batch`); any other backend runs the
/// machines one at a time.
///
/// # Errors
///
/// Any [`SimError`] from batch assembly or the runs.
pub fn run_shard(
    prepared: Vec<(Xsim, RunSpec)>,
    backend: &dyn ExecutionBackend,
    tables: Option<Arc<DecodedProgram>>,
) -> Result<Vec<SimStats>, SimError> {
    let Some(&(_, mut spec)) = prepared.first() else {
        return Ok(Vec::new());
    };
    if !backend.capabilities().lane_batching || prepared.len() == 1 {
        return prepared
            .into_iter()
            .map(|(sim, spec)| run_one(sim, spec, backend, tables.clone()))
            .collect();
    }
    for &(_, other) in prepared.iter().skip(1) {
        spec = match (spec, other) {
            (RunSpec::Run(a), RunSpec::Run(b)) => RunSpec::Run(a.max(b)),
            (RunSpec::Parked(p, a), RunSpec::Parked(q, b)) if p == q => {
                RunSpec::Parked(p, a.max(b))
            }
            _ => spec, // heterogeneous shards never get here; prepare() is uniform
        };
    }
    let sims: Vec<Xsim> = prepared.into_iter().map(|(sim, _)| sim).collect();
    let mut session = backend.prepare(sims, tables)?;
    let (park, budget) = match spec {
        RunSpec::Run(b) => (None, b),
        RunSpec::Parked(p, b) => (Some(p), b),
    };
    backend.finish(&mut session, park, budget)?;
    let batch = session
        .batch()
        .expect("lane-batching backend built a batch");
    Ok((0..batch.lanes()).map(|l| batch.stats(l).clone()).collect())
}

/// Renders [`SimStats`] as a single-line JSON object — the body of every
/// `simulate`/`resume` response and of each per-lane batch record. Derived
/// rates ride along so thin clients need no arithmetic.
#[must_use]
pub fn stats_json(stats: &SimStats) -> String {
    let mut w = JsonWriter::new();
    write_stats(&mut w, stats);
    w.finish()
}

/// Emits the stats object into an open writer (for embedding in larger
/// documents).
pub fn write_stats(w: &mut JsonWriter, stats: &SimStats) {
    w.begin_object();
    w.field_u64("cycles", stats.cycles);
    w.field_u64("width", stats.width as u64);
    w.field_u64("ops", stats.ops);
    w.field_u64("nops", stats.nops);
    w.field_u64("loads", stats.loads);
    w.field_u64("stores", stats.stores);
    w.field_u64("compares", stats.compares);
    w.field_u64("cond_branches", stats.cond_branches);
    w.field_u64("branches_taken", stats.branches_taken);
    w.field_u64("spin_cycles", stats.spin_cycles);
    w.field_u64("halted_fu_cycles", stats.halted_fu_cycles);
    w.field_u64(
        "max_concurrent_streams",
        stats.max_concurrent_streams as u64,
    );
    w.field_u64("sset_cycle_sum", stats.sset_cycle_sum);
    w.field_u64("conflicts_resolved", stats.conflicts_resolved);
    w.field_u64("stall_cycles", stats.stall_cycles);
    w.field_u64("contention_stalls", stats.contention_stalls);
    w.key("ops_per_fu");
    w.begin_array();
    for &o in &stats.ops_per_fu {
        w.value_u64(o);
    }
    w.end_array();
    w.field_f64("utilization", stats.utilization(), 6);
    w.field_f64("avg_streams", stats.avg_streams(), 6);
    w.field_f64("ops_per_cycle", stats.ops_per_cycle(), 6);
    w.end_object();
}

/// Resolves the `backend:` selector header against the process-wide
/// registry: a missing header means `auto` (pick the most capable backend
/// for the request — the decoded fast path for a plain single-machine
/// run, the daemon's workhorse), a name must be registered and capable.
///
/// # Errors
///
/// A usage message: an unknown backend name, or a capability mismatch.
pub fn resolve_backend(
    value: Option<&str>,
    request: &BackendRequest,
) -> Result<BackendHandle, String> {
    backend::resolve(value.unwrap_or("auto"), request).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> BackendHandle {
        backend::lookup(name).expect("built-in backend")
    }

    #[test]
    fn registry_runs_every_workload_on_every_backend() {
        for &name in WORKLOADS {
            let baseline = {
                let (sim, spec) = prepare(name, 8, 3).expect("prepares");
                run_one(sim, spec, by_name("interp").as_ref(), None).expect("interp runs")
            };
            for b in backend::all() {
                if !b.capabilities().supports(&BackendRequest::single_ideal()) {
                    continue;
                }
                let (sim, spec) = prepare(name, 8, 3).expect("prepares");
                let stats = run_one(sim, spec, b.as_ref(), None).expect("backend runs");
                assert_eq!(stats, baseline, "{name} diverges on {}", b.name());
            }
        }
    }

    #[test]
    fn cached_tables_change_nothing() {
        let decoded = by_name("decoded");
        let (a, spec_a) = prepare("minmax", 12, 9).expect("prepares");
        let tables = Arc::new(DecodedProgram::lower(a.program(), a.config().num_regs));
        let cached = run_one(a, spec_a, decoded.as_ref(), Some(tables)).expect("runs");
        let (b, spec_b) = prepare("minmax", 12, 9).expect("prepares");
        let fresh = run_one(b, spec_b, decoded.as_ref(), None).expect("runs");
        assert_eq!(cached, fresh);
    }

    #[test]
    fn timed_preparation_stretches_budget_and_stalls() {
        let spec = TimingSpec::parse("latency:mem=4").expect("parses");
        let (sim, run) = prepare_timed("minmax", 8, 1, Some(&spec)).expect("prepares");
        let stats = run_one(sim, run, by_name("interp").as_ref(), None).expect("runs");
        assert!(stats.stall_cycles > 0, "mem latency must stall");
    }

    #[test]
    fn timed_runs_on_ideal_only_backends_are_capability_errors() {
        let spec = TimingSpec::parse("latency:mem=4").expect("parses");
        let (sim, run) = prepare_timed("minmax", 8, 1, Some(&spec)).expect("prepares");
        let err = run_one(sim, run, by_name("decoded").as_ref(), None).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid machine configuration: backend \"decoded\" does not support \
             non-ideal timing models"
        );
    }

    #[test]
    fn unknown_workload_is_a_text_error() {
        let err = prepare("fibonacci", 8, 0).unwrap_err();
        assert!(err.contains("unknown workload"));
        let err = resolve_backend(Some("warp"), &BackendRequest::single_ideal()).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        // The default (auto) selection for a plain run is the decoded path.
        let auto = resolve_backend(None, &BackendRequest::single_ideal()).unwrap();
        assert_eq!(auto.name(), "decoded");
        // ...and the interpreter under a non-ideal timing model.
        let timed = resolve_backend(
            None,
            &BackendRequest {
                non_ideal_timing: true,
                ..BackendRequest::default()
            },
        )
        .unwrap();
        assert_eq!(timed.name(), "interp");
    }
}
