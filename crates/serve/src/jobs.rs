//! Job execution: the named-workload registry and the engine dispatch the
//! daemon runs every simulation through.
//!
//! The daemon accepts work in two forms — raw source text (assembled
//! through the [`ArtifactStore`](crate::ArtifactStore)) and *named
//! workloads*: the paper's benchmark programs, instantiated with seeded
//! data so a one-line request (`workload: bitcount, n: 64, seed: 7`)
//! reproduces bit-identical runs on any host. Both forms funnel into
//! [`run_one`], which picks the interpreter, the decoded fast path or the
//! lane engine behind one enum and feeds cached decode tables through the
//! `*_cached` entry points so a warm cache skips lowering entirely.

use ximd_sim::{DecodedProgram, EngineKind, LaneXsim, SimError, SimStats, TimingSpec, Xsim};
use ximd_workloads::{bitcount, gen, livermore, minmax, tproc, with_timing, RunSpec};

use crate::json::JsonWriter;

/// Workloads the daemon can instantiate by name. All are `Xsim`-based and
/// deterministic in `(n, seed)`. (`saxpy` is the VLIW companion's workload
/// and `nonblocking` needs an I/O-port scenario; neither fits the
/// name-plus-scale request shape.)
pub const WORKLOADS: &[&str] = &["bitcount", "livermore", "minmax", "tproc"];

/// Instantiates a named workload: a ready-to-run machine plus the drive
/// spec (budget and park address) its `prepared` constructor mandates.
/// `n` scales the data set (clamped to each workload's minimum); `seed`
/// fixes the generated inputs.
///
/// # Errors
///
/// An unknown name, or any [`SimError`] from the workload constructor,
/// rendered as text (the daemon forwards it in the error response).
pub fn prepare(name: &str, n: usize, seed: u64) -> Result<(Xsim, RunSpec), String> {
    let prepared = match name {
        "bitcount" => bitcount::prepared(&gen::bit_weighted_ints(seed, n.max(1), 24)),
        "livermore" => livermore::prepared(&gen::livermore_y(seed, n.max(1))),
        "minmax" => minmax::prepared(&gen::uniform_ints(seed, n.max(1), -1000, 1000)),
        "tproc" => {
            let v = gen::uniform_ints(seed, 4, -100, 100);
            tproc::prepared(v[0], v[1], v[2], v[3])
        }
        _ => {
            return Err(format!(
                "unknown workload {name:?} (expected one of {})",
                WORKLOADS.join(", ")
            ))
        }
    };
    prepared.map_err(|e| format!("workload {name} failed to prepare: {e}"))
}

/// [`prepare`] plus an optional timing override: swaps the machine onto
/// `timing` and stretches the budget by the model's worst-case factor,
/// exactly as `ximd-workloads::with_timing` does for local runs.
///
/// # Errors
///
/// As [`prepare`], plus degenerate timing specs.
pub fn prepare_timed(
    name: &str,
    n: usize,
    seed: u64,
    timing: Option<&TimingSpec>,
) -> Result<(Xsim, RunSpec), String> {
    let prepared = prepare(name, n, seed)?;
    match timing {
        None => Ok(prepared),
        Some(spec) => with_timing(prepared, spec).map_err(|e| format!("timing override: {e}")),
    }
}

/// Drives one machine to completion on the chosen engine and returns its
/// final statistics.
///
/// `decoded` carries cached tables from the artifact store; `None` (or a
/// non-matching table, or a non-ideal timing model) lowers on the fly via
/// the engines' own fallback rules, so the choice only affects *where the
/// decode time goes*, never the result. The lane engine runs the machine
/// as a one-lane batch — pointless for throughput, but it makes `engine:
/// lanes` mean the same code path in a single-machine request as in a
/// batch, which is what the equivalence tests want to pin.
///
/// # Errors
///
/// Any [`SimError`] the underlying engine reports.
pub fn run_one(
    sim: &mut Xsim,
    spec: RunSpec,
    engine: EngineKind,
    decoded: Option<&DecodedProgram>,
) -> Result<SimStats, SimError> {
    match engine {
        EngineKind::Interp => spec.drive(sim).map(|s| s.stats),
        EngineKind::Decoded => {
            let (park, budget) = match spec {
                RunSpec::Run(b) => (None, b),
                RunSpec::Parked(p, b) => (Some(p), b),
            };
            match decoded {
                Some(tables) => sim
                    .run_decoded_cached(tables, park, budget)
                    .map(|s| s.stats),
                None => match spec {
                    RunSpec::Run(b) => sim.run_decoded(b),
                    RunSpec::Parked(p, b) => sim.run_decoded_until_parked(p, b),
                }
                .map(|s| s.stats),
            }
        }
        EngineKind::Lanes => {
            let mut lanes = match decoded {
                Some(tables) => LaneXsim::from_instances_cached(std::slice::from_ref(sim), tables)?,
                None => LaneXsim::from_instances(std::slice::from_ref(sim))?,
            };
            spec.drive_lanes(&mut lanes)?;
            Ok(lanes.stats(0).clone())
        }
    }
}

/// Drives a shard of same-workload machines as one lane batch and returns
/// per-lane statistics. The shard must be drive-uniform (same park mode);
/// the budget covering every lane is the per-lane maximum, mirroring
/// `ximd_workloads::lane_batch`.
///
/// # Errors
///
/// Any [`SimError`] from batch assembly or the run.
pub fn run_shard_lanes(
    prepared: Vec<(Xsim, RunSpec)>,
    decoded: Option<&DecodedProgram>,
) -> Result<Vec<SimStats>, SimError> {
    let Some(&(_, mut spec)) = prepared.first() else {
        return Ok(Vec::new());
    };
    for &(_, other) in prepared.iter().skip(1) {
        spec = match (spec, other) {
            (RunSpec::Run(a), RunSpec::Run(b)) => RunSpec::Run(a.max(b)),
            (RunSpec::Parked(p, a), RunSpec::Parked(q, b)) if p == q => {
                RunSpec::Parked(p, a.max(b))
            }
            _ => spec, // heterogeneous shards never get here; prepare() is uniform
        };
    }
    let sims: Vec<Xsim> = prepared.into_iter().map(|(sim, _)| sim).collect();
    let mut lanes = match decoded {
        Some(tables) => LaneXsim::from_instances_cached(&sims, tables)?,
        None => LaneXsim::from_instances(&sims)?,
    };
    spec.drive_lanes(&mut lanes)?;
    Ok((0..lanes.lanes()).map(|l| lanes.stats(l).clone()).collect())
}

/// Renders [`SimStats`] as a single-line JSON object — the body of every
/// `simulate`/`resume` response and of each per-lane batch record. Derived
/// rates ride along so thin clients need no arithmetic.
#[must_use]
pub fn stats_json(stats: &SimStats) -> String {
    let mut w = JsonWriter::new();
    write_stats(&mut w, stats);
    w.finish()
}

/// Emits the stats object into an open writer (for embedding in larger
/// documents).
pub fn write_stats(w: &mut JsonWriter, stats: &SimStats) {
    w.begin_object();
    w.field_u64("cycles", stats.cycles);
    w.field_u64("width", stats.width as u64);
    w.field_u64("ops", stats.ops);
    w.field_u64("nops", stats.nops);
    w.field_u64("loads", stats.loads);
    w.field_u64("stores", stats.stores);
    w.field_u64("compares", stats.compares);
    w.field_u64("cond_branches", stats.cond_branches);
    w.field_u64("branches_taken", stats.branches_taken);
    w.field_u64("spin_cycles", stats.spin_cycles);
    w.field_u64("halted_fu_cycles", stats.halted_fu_cycles);
    w.field_u64(
        "max_concurrent_streams",
        stats.max_concurrent_streams as u64,
    );
    w.field_u64("sset_cycle_sum", stats.sset_cycle_sum);
    w.field_u64("conflicts_resolved", stats.conflicts_resolved);
    w.field_u64("stall_cycles", stats.stall_cycles);
    w.field_u64("contention_stalls", stats.contention_stalls);
    w.key("ops_per_fu");
    w.begin_array();
    for &o in &stats.ops_per_fu {
        w.value_u64(o);
    }
    w.end_array();
    w.field_f64("utilization", stats.utilization(), 6);
    w.field_f64("avg_streams", stats.avg_streams(), 6);
    w.field_f64("ops_per_cycle", stats.ops_per_cycle(), 6);
    w.end_object();
}

/// Parses the engine selector header (defaulting to the decoded fast
/// path, the daemon's workhorse).
///
/// # Errors
///
/// A usage message naming the valid selectors.
pub fn parse_engine(value: Option<&str>) -> Result<EngineKind, String> {
    match value {
        None => Ok(EngineKind::Decoded),
        Some(s) => EngineKind::parse(s)
            .ok_or_else(|| format!("unknown engine {s:?} (expected interp, decoded or lanes)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_runs_every_workload_on_every_engine() {
        for &name in WORKLOADS {
            let baseline = {
                let (mut sim, spec) = prepare(name, 8, 3).expect("prepares");
                run_one(&mut sim, spec, EngineKind::Interp, None).expect("interp runs")
            };
            for engine in [EngineKind::Decoded, EngineKind::Lanes] {
                let (mut sim, spec) = prepare(name, 8, 3).expect("prepares");
                let stats = run_one(&mut sim, spec, engine, None).expect("engine runs");
                assert_eq!(stats, baseline, "{name} diverges on {}", engine.name());
            }
        }
    }

    #[test]
    fn cached_tables_change_nothing() {
        let (mut a, spec_a) = prepare("minmax", 12, 9).expect("prepares");
        let tables = DecodedProgram::lower(a.program(), a.config().num_regs);
        let cached = run_one(&mut a, spec_a, EngineKind::Decoded, Some(&tables)).expect("runs");
        let (mut b, spec_b) = prepare("minmax", 12, 9).expect("prepares");
        let fresh = run_one(&mut b, spec_b, EngineKind::Decoded, None).expect("runs");
        assert_eq!(cached, fresh);
    }

    #[test]
    fn timed_preparation_stretches_budget_and_stalls() {
        let spec = TimingSpec::parse("latency:mem=4").expect("parses");
        let (mut sim, run) = prepare_timed("minmax", 8, 1, Some(&spec)).expect("prepares");
        let stats = run_one(&mut sim, run, EngineKind::Interp, None).expect("runs");
        assert!(stats.stall_cycles > 0, "mem latency must stall");
    }

    #[test]
    fn unknown_workload_is_a_text_error() {
        let err = prepare("fibonacci", 8, 0).unwrap_err();
        assert!(err.contains("unknown workload"));
        assert!(parse_engine(Some("warp")).is_err());
        assert!(matches!(parse_engine(None), Ok(EngineKind::Decoded)));
    }
}
