//! Hand-rolled JSON emit and parse helpers.
//!
//! The workspace's serde stand-in is a marker-trait stub (see
//! `stubs/README.md`): it satisfies derive bounds but cannot serialize a
//! byte. Every JSON document in the tree — `BENCH_ximd.json`, the daemon's
//! stats endpoint, simulation results on the wire — is therefore written
//! and read by hand. This module centralizes the two halves that used to
//! live privately in `ximd-bench`:
//!
//! * [`JsonWriter`] — a comma-tracking emitter for objects and arrays;
//! * [`str_field`] / [`num_field`] / [`u64_field`] / [`bool_field`] — the
//!   line-oriented field extractors the baseline-gate parser is built on.
//!
//! The parsers are deliberately line-oriented, not a full JSON reader:
//! every emitter in this workspace writes one object per line, which keeps
//! the reader four lines long and the documents diffable.

use std::fmt::Write as _;

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// included).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Clone, Copy)]
enum Ctx {
    Object,
    Array,
}

/// A minimal JSON emitter: tracks nesting and comma placement so callers
/// only state structure. Output is compact (no indentation); emitters that
/// want the one-object-per-line convention insert their own newlines via
/// [`JsonWriter::newline`].
///
/// # Example
///
/// ```
/// use ximd_serve::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("name", "minmax");
/// w.field_u64("cycles", 14);
/// w.key("ok");
/// w.value_bool(true);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name": "minmax", "cycles": 14, "ok": true}"#);
/// ```
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    ctx: Vec<(Ctx, bool)>, // (context, wrote_first_item)
    pending_key: bool,
}

impl JsonWriter {
    #[must_use]
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Consumes the writer and returns the document.
    ///
    /// # Panics
    ///
    /// Panics if objects or arrays are still open — an emitter bug, not a
    /// data error.
    #[must_use]
    pub fn finish(self) -> String {
        assert!(
            self.ctx.is_empty() && !self.pending_key,
            "JsonWriter finished with unclosed structure"
        );
        self.out
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some((_, first)) = self.ctx.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push_str(", ");
            }
        }
    }

    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.ctx.push((Ctx::Object, true));
    }

    pub fn end_object(&mut self) {
        assert!(
            matches!(self.ctx.pop(), Some((Ctx::Object, _))),
            "end_object outside an object"
        );
        self.out.push('}');
    }

    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.ctx.push((Ctx::Array, true));
    }

    pub fn end_array(&mut self) {
        assert!(
            matches!(self.ctx.pop(), Some((Ctx::Array, _))),
            "end_array outside an array"
        );
        self.out.push(']');
    }

    /// Emits an object key; the next `value_*`/`begin_*` call supplies its
    /// value.
    pub fn key(&mut self, key: &str) {
        assert!(
            matches!(self.ctx.last(), Some((Ctx::Object, _))),
            "key outside an object"
        );
        self.before_value();
        let _ = write!(self.out, "\"{}\": ", escape(key));
        self.pending_key = true;
    }

    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    pub fn value_i64(&mut self, v: i64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Emits a float with `decimals` fractional digits (the emitters in
    /// this workspace always fix precision so documents diff cleanly).
    pub fn value_f64(&mut self, v: f64, decimals: usize) {
        self.before_value();
        let _ = write!(self.out, "{v:.decimals$}");
    }

    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Emits pre-rendered JSON verbatim (for embedding documents built
    /// elsewhere).
    pub fn value_raw(&mut self, v: &str) {
        self.before_value();
        self.out.push_str(v);
    }

    /// Inserts a raw newline between items (cosmetic; keeps the
    /// one-object-per-line convention the parsers rely on).
    pub fn newline(&mut self) {
        self.out.push('\n');
    }

    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.value_str(v);
    }

    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.value_u64(v);
    }

    pub fn field_f64(&mut self, key: &str, v: f64, decimals: usize) {
        self.key(key);
        self.value_f64(v, decimals);
    }

    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.value_bool(v);
    }
}

/// Extracts the string value of `"key": "..."` from one line of a document
/// written by the emitters in this workspace. Returns a borrow of the raw
/// (still-escaped) contents; fields written from identifier-like strings
/// (workload names, timing specs) contain no escapes.
#[must_use]
pub fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extracts the numeric value of `"key": 1.25` from one line.
#[must_use]
pub fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts the integer value of `"key": 42` from one line. Unlike
/// [`num_field`] this refuses fractional or exponent forms, so counters
/// parse losslessly.
#[must_use]
pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts the boolean value of `"key": true` from one line.
#[must_use]
pub fn bool_field(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    match rest[..end].trim() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_places_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("a", "x");
        w.key("list");
        w.begin_array();
        w.value_u64(1);
        w.value_u64(2);
        w.begin_object();
        w.field_bool("ok", false);
        w.end_object();
        w.end_array();
        w.field_f64("r", 0.5, 3);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"a": "x", "list": [1, 2, {"ok": false}], "r": 0.500}"#
        );
    }

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn field_extractors_round_trip_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "livermore");
        w.field_u64("cycles", 420);
        w.field_f64("speedup", 3.25, 3);
        w.field_bool("equivalent", true);
        w.end_object();
        let line = w.finish();
        assert_eq!(str_field(&line, "name"), Some("livermore"));
        assert_eq!(u64_field(&line, "cycles"), Some(420));
        assert_eq!(num_field(&line, "speedup"), Some(3.25));
        assert_eq!(bool_field(&line, "equivalent"), Some(true));
        assert_eq!(str_field(&line, "missing"), None);
        assert_eq!(u64_field(&line, "speedup"), None);
    }
}
