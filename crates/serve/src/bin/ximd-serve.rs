//! `ximd-serve` — the XIMD toolchain job daemon.
//!
//! Serves assemble / lint / simulate / batch / snapshot / resume / stats
//! over the length-prefixed wire protocol (see `ximd-serve`'s crate docs
//! and DESIGN.md §8). Prints the bound address on stdout once listening,
//! so scripts can bind port 0 and parse the line:
//!
//! ```text
//! $ ximd-serve --addr 127.0.0.1:0 --threads 4
//! ximd-serve listening on 127.0.0.1:40913
//! ```
//!
//! With `--stats ADDR` it runs as a one-shot client instead: fetch the
//! daemon's stats JSON (cache stages, job counts, per-backend counters)
//! and print it — the shape CI's daemon-smoke step greps.
//!
//! Exit codes follow the workspace convention: 0 clean shutdown, 1
//! runtime failure, 2 usage error.

use std::io::Write as _;
use std::process::ExitCode;

use ximd_serve::{Client, Server, ServerConfig};

const USAGE: &str = "\
usage: ximd-serve [--addr HOST:PORT] [--threads N]
       ximd-serve --stats HOST:PORT

  --addr HOST:PORT   bind address (default 127.0.0.1:0; port 0 picks a
                     free port, printed on stdout once bound)
  --threads N        worker threads (default: one per core, capped at 8)
  --stats HOST:PORT  client mode: print a running daemon's stats JSON
";

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => config.addr = a,
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--stats" => match args.next() {
                Some(addr) => return print_stats(&addr),
                None => return usage("--stats needs a HOST:PORT value"),
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.threads = n,
                _ => return usage("--threads needs a positive integer"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ximd-serve: cannot bind {}: {e}", config.addr);
            return ExitCode::from(1);
        }
    };
    println!("ximd-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ximd-serve: accept loop failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn print_stats(addr: &str) -> ExitCode {
    let result = Client::connect(addr).and_then(|mut c| c.stats());
    match result {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ximd-serve: stats from {addr} failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ximd-serve: {msg}\n{USAGE}");
    ExitCode::from(2)
}
