//! Content hashing for the artifact store.
//!
//! The cache keys on a 64-bit FNV-1a digest of the source text. FNV-1a is
//! not cryptographic — a client could construct colliding submissions — but
//! the store never *trusts* the hash: on every lookup it compares the full
//! source before declaring a hit (see
//! [`ArtifactStore`](crate::ArtifactStore)), so a collision costs one cache
//! miss, never a wrong program. Within that contract FNV-1a wins on being
//! four lines of dependency-free code with excellent dispersion on short
//! ASCII inputs.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a digest of `bytes`.
///
/// # Example
///
/// ```
/// use ximd_serve::hash::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a(b"fu0: iadd r0, 1, r0"), fnv1a(b"fu0: iadd r0, 1, r1"));
/// ```
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Formats a digest the way the wire protocol and logs spell it: 16
/// lowercase hex digits, zero-padded.
#[must_use]
pub fn format_digest(h: u64) -> String {
    format!("{h:016x}")
}

/// Parses a digest formatted by [`format_digest`].
#[must_use]
pub fn parse_digest(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_round_trips_through_text() {
        for h in [0u64, 1, FNV_OFFSET, u64::MAX] {
            let s = format_digest(h);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_digest(&s), Some(h));
        }
        assert_eq!(parse_digest("xyz"), None);
        assert_eq!(parse_digest("00"), None);
    }
}
