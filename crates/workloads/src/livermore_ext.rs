//! Additional Livermore kernels, software-pipelined by the compiler's
//! modulo scheduler.
//!
//! The paper's §4.1 reports that "a number of programs have been gathered
//! to allow more sophisticated performance measurements" on xsim/vsim; the
//! Livermore loops are its named example family. Beyond Loop 12 (hand
//! scheduled in [`crate::livermore`]), this module pipelines three more
//! kernels chosen to exercise distinct scheduling regimes:
//!
//! * **Loop 1** (hydro fragment) — wide, independent iterations: II is
//!   resource-bound and shrinks with machine width;
//! * **Loop 3** (inner product) — a scalar reduction: the loop-carried add
//!   bounds II from below no matter the width;
//! * **Loop 5** (tridiagonal elimination) — a *memory-carried* recurrence
//!   (`x[i]` depends on `x[i-1]`): correct only under the conservative
//!   memory-dependence model, so it doubles as the aliasing ablation.
//!
//! All three are integer variants (the machine's float path is exercised
//! elsewhere; integer oracles are exact).

use ximd_compiler::ir::{Inst, VReg, Val};
use ximd_compiler::pipeline::{modulo_schedule, CountedLoop, Pipelined};
use ximd_compiler::CompileError;
use ximd_isa::{AluOp, Value};
use ximd_sim::{MachineConfig, SimError, Vsim};

/// Memory map shared by the kernels (word addresses).
pub const X_BASE: i32 = 10_000;
/// Base of the `Y` array.
pub const Y_BASE: i32 = 12_000;
/// Base of the `Z` array.
pub const Z_BASE: i32 = 14_000;

const IND: VReg = VReg(0);
const TRIPS: VReg = VReg(1);

/// Loop 1 coefficients (paper-style constants, integer variant).
pub const L1_Q: i32 = 5;
/// `r` coefficient.
pub const L1_R: i32 = 3;
/// `t` coefficient.
pub const L1_T: i32 = 2;

/// Livermore Loop 1 (hydro fragment), integer variant:
/// `X[k] = q + Y[k] * (r * Z[k+10] + t * Z[k+11])`.
pub fn loop1_spec() -> CountedLoop {
    let (za, zb, ma, mb, s, y, p, xv, addr) = (
        VReg(2),
        VReg(3),
        VReg(4),
        VReg(5),
        VReg(6),
        VReg(7),
        VReg(8),
        VReg(9),
        VReg(10),
    );
    CountedLoop {
        body: vec![
            Inst::Bin {
                op: AluOp::Iadd,
                a: IND.into(),
                b: Val::Const(X_BASE - 1),
                d: addr,
            },
            Inst::Load {
                base: Val::Const(Z_BASE - 1 + 10),
                off: IND.into(),
                d: za,
            },
            Inst::Load {
                base: Val::Const(Z_BASE - 1 + 11),
                off: IND.into(),
                d: zb,
            },
            Inst::Load {
                base: Val::Const(Y_BASE - 1),
                off: IND.into(),
                d: y,
            },
            Inst::Bin {
                op: AluOp::Imult,
                a: za.into(),
                b: Val::Const(L1_R),
                d: ma,
            },
            Inst::Bin {
                op: AluOp::Imult,
                a: zb.into(),
                b: Val::Const(L1_T),
                d: mb,
            },
            Inst::Bin {
                op: AluOp::Iadd,
                a: ma.into(),
                b: mb.into(),
                d: s,
            },
            Inst::Bin {
                op: AluOp::Imult,
                a: y.into(),
                b: s.into(),
                d: p,
            },
            Inst::Bin {
                op: AluOp::Iadd,
                a: p.into(),
                b: Val::Const(L1_Q),
                d: xv,
            },
            Inst::Store {
                val: xv.into(),
                addr: addr.into(),
            },
        ],
        induction: IND,
        start: 1,
        step: 1,
        trips: TRIPS,
        assume_no_alias: true, // X, Y, Z are disjoint arrays
    }
}

/// Oracle for Loop 1. `z` must have `n + 11` elements, `y` must have `n`.
pub fn loop1_oracle(y: &[i32], z: &[i32]) -> Vec<i32> {
    (0..y.len())
        .map(|k| {
            let inner = L1_R
                .wrapping_mul(z[k + 10])
                .wrapping_add(L1_T.wrapping_mul(z[k + 11]));
            L1_Q.wrapping_add(y[k].wrapping_mul(inner))
        })
        .collect()
}

/// Livermore Loop 3 (inner product), integer variant:
/// `q = Σ Z[k] * X[k]`. The accumulator lives in [`LOOP3_ACC`].
pub fn loop3_spec() -> CountedLoop {
    let (zv, xv, m, q) = (VReg(2), VReg(3), VReg(4), VReg(5));
    CountedLoop {
        body: vec![
            Inst::Load {
                base: Val::Const(Z_BASE - 1),
                off: IND.into(),
                d: zv,
            },
            Inst::Load {
                base: Val::Const(X_BASE - 1),
                off: IND.into(),
                d: xv,
            },
            Inst::Bin {
                op: AluOp::Imult,
                a: zv.into(),
                b: xv.into(),
                d: m,
            },
            Inst::Bin {
                op: AluOp::Iadd,
                a: q.into(),
                b: m.into(),
                d: q,
            },
        ],
        induction: IND,
        start: 1,
        step: 1,
        trips: TRIPS,
        assume_no_alias: true,
    }
}

/// The accumulator vreg of [`loop3_spec`].
pub const LOOP3_ACC: VReg = VReg(5);

/// Oracle for Loop 3.
pub fn loop3_oracle(z: &[i32], x: &[i32]) -> i32 {
    z.iter()
        .zip(x)
        .fold(0i32, |q, (&a, &b)| q.wrapping_add(a.wrapping_mul(b)))
}

/// Livermore Loop 5 (tridiagonal elimination), integer variant:
/// `X[i] = Z[i] * (Y[i] - X[i-1])`.
///
/// The recurrence flows through memory (`X[i-1]` is loaded, `X[i]` is
/// stored), so this spec keeps `assume_no_alias: false`: the conservative
/// carried store→load dependence is exactly the true dependence.
pub fn loop5_spec() -> CountedLoop {
    let (xp, yv, zv, diff, prod, addr) = (VReg(2), VReg(3), VReg(4), VReg(5), VReg(6), VReg(7));
    CountedLoop {
        body: vec![
            Inst::Bin {
                op: AluOp::Iadd,
                a: IND.into(),
                b: Val::Const(X_BASE - 1),
                d: addr,
            },
            Inst::Load {
                base: Val::Const(X_BASE - 2),
                off: IND.into(),
                d: xp,
            }, // X[i-1]
            Inst::Load {
                base: Val::Const(Y_BASE - 1),
                off: IND.into(),
                d: yv,
            },
            Inst::Load {
                base: Val::Const(Z_BASE - 1),
                off: IND.into(),
                d: zv,
            },
            Inst::Bin {
                op: AluOp::Isub,
                a: yv.into(),
                b: xp.into(),
                d: diff,
            },
            Inst::Bin {
                op: AluOp::Imult,
                a: zv.into(),
                b: diff.into(),
                d: prod,
            },
            Inst::Store {
                val: prod.into(),
                addr: addr.into(),
            },
        ],
        induction: IND,
        start: 1,
        step: 1,
        trips: TRIPS,
        assume_no_alias: false, // the recurrence IS a memory dependence
    }
}

/// Oracle for Loop 5, given `x0 = X[0]` and `y`, `z` of length `n`.
pub fn loop5_oracle(x0: i32, y: &[i32], z: &[i32]) -> Vec<i32> {
    let mut prev = x0;
    y.iter()
        .zip(z)
        .map(|(&yv, &zv)| {
            prev = zv.wrapping_mul(yv.wrapping_sub(prev));
            prev
        })
        .collect()
}

/// The result of pipelining and running one kernel.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Cycles for the measured run.
    pub cycles: u64,
}

fn run_pipelined(
    pipe: &Pipelined,
    width: usize,
    n: usize,
    setup: impl FnOnce(&mut Vsim),
) -> Result<(Vsim, u64), SimError> {
    let mut sim = Vsim::new(pipe.vliw.clone(), MachineConfig::with_width(width))?;
    sim.write_reg(pipe.reg_of[&TRIPS], Value::I32(n as i32));
    setup(&mut sim);
    let summary = sim.run(10_000 + 64 * n as u64)?;
    Ok((sim, summary.cycles))
}

/// Pipelines Loop 1 for `width` FUs and verifies it on generated data.
///
/// # Errors
///
/// Returns scheduling errors, or a wrapped simulation/verification failure.
pub fn run_loop1(width: usize, n: usize, seed: u64) -> Result<KernelRun, CompileError> {
    let pipe = modulo_schedule(&loop1_spec(), width)?;
    assert!(
        n as u32 >= pipe.min_trips,
        "trip count below pipeline depth"
    );
    let y = crate::gen::uniform_ints(seed, n, -100, 100);
    let z = crate::gen::uniform_ints(seed + 1, n + 11, -100, 100);
    let (sim, cycles) = run_pipelined(&pipe, width, n, |sim| {
        sim.mem_mut().poke_slice(Y_BASE as i64, &y).expect("y fits");
        sim.mem_mut().poke_slice(Z_BASE as i64, &z).expect("z fits");
    })?;
    let got = sim.mem().peek_slice(X_BASE as i64, n)?;
    if got != loop1_oracle(&y, &z) {
        return Err(CompileError::Schedule("loop1 output mismatch".into()));
    }
    Ok(KernelRun {
        ii: pipe.ii,
        stages: pipe.stages,
        cycles,
    })
}

/// Pipelines Loop 3 for `width` FUs and verifies the reduction.
///
/// # Errors
///
/// Returns scheduling errors, or a wrapped simulation/verification failure.
pub fn run_loop3(width: usize, n: usize, seed: u64) -> Result<KernelRun, CompileError> {
    let pipe = modulo_schedule(&loop3_spec(), width)?;
    assert!(
        n as u32 >= pipe.min_trips,
        "trip count below pipeline depth"
    );
    let z = crate::gen::uniform_ints(seed, n, -50, 50);
    let x = crate::gen::uniform_ints(seed + 1, n, -50, 50);
    let (sim, cycles) = run_pipelined(&pipe, width, n, |sim| {
        sim.mem_mut().poke_slice(Z_BASE as i64, &z).expect("z fits");
        sim.mem_mut().poke_slice(X_BASE as i64, &x).expect("x fits");
    })?;
    let got = sim.reg(pipe.reg_of[&LOOP3_ACC]).as_i32();
    if got != loop3_oracle(&z, &x) {
        return Err(CompileError::Schedule("loop3 reduction mismatch".into()));
    }
    Ok(KernelRun {
        ii: pipe.ii,
        stages: pipe.stages,
        cycles,
    })
}

/// Pipelines Loop 5 for `width` FUs and verifies the recurrence.
///
/// # Errors
///
/// Returns scheduling errors, or a wrapped simulation/verification failure.
pub fn run_loop5(width: usize, n: usize, seed: u64) -> Result<KernelRun, CompileError> {
    let pipe = modulo_schedule(&loop5_spec(), width)?;
    assert!(
        n as u32 >= pipe.min_trips,
        "trip count below pipeline depth"
    );
    let y = crate::gen::uniform_ints(seed, n, -20, 20);
    let z = crate::gen::uniform_ints(seed + 1, n, -3, 4);
    let x0 = 7;
    let (sim, cycles) = run_pipelined(&pipe, width, n, |sim| {
        sim.mem_mut().poke_slice(Y_BASE as i64, &y).expect("y fits");
        sim.mem_mut().poke_slice(Z_BASE as i64, &z).expect("z fits");
        sim.mem_mut()
            .poke(X_BASE as i64 - 1, Value::I32(x0))
            .expect("x0 fits");
    })?;
    let got = sim.mem().peek_slice(X_BASE as i64, n)?;
    if got != loop5_oracle(x0, &y, &z) {
        return Err(CompileError::Schedule("loop5 recurrence mismatch".into()));
    }
    Ok(KernelRun {
        ii: pipe.ii,
        stages: pipe.stages,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop1_correct_across_widths() {
        for width in [4usize, 8] {
            let run = run_loop1(width, 40, 9).unwrap();
            assert!(run.ii >= 2, "width {width}: ii {}", run.ii);
        }
    }

    #[test]
    fn loop1_ii_shrinks_with_width() {
        let narrow = run_loop1(4, 40, 3).unwrap();
        let wide = run_loop1(8, 40, 3).unwrap();
        assert!(
            wide.ii <= narrow.ii,
            "wide {} vs narrow {}",
            wide.ii,
            narrow.ii
        );
        assert!(wide.cycles <= narrow.cycles);
    }

    #[test]
    fn loop3_reduction_is_exact() {
        for n in [8usize, 33, 100] {
            run_loop3(8, n, n as u64).unwrap();
        }
    }

    #[test]
    fn loop5_memory_recurrence_is_honoured() {
        for n in [10usize, 50] {
            run_loop5(8, n, n as u64).unwrap();
        }
    }

    #[test]
    fn loop5_ii_reflects_the_recurrence() {
        // The carried store→load chain (store lat 1, load→sub 1, sub→mul 1,
        // mul→store 1) bounds II below regardless of width.
        let w8 = run_loop5(8, 24, 1).unwrap();
        let w4 = run_loop5(4, 24, 1).unwrap();
        assert!(w8.ii >= 4, "recurrence-bound ii, got {}", w8.ii);
        assert_eq!(w8.ii, w4.ii, "extra width cannot beat a recurrence");
    }

    #[test]
    fn oracles_spot_checks() {
        assert_eq!(loop3_oracle(&[1, 2, 3], &[4, 5, 6]), 4 + 10 + 18);
        assert_eq!(loop5_oracle(1, &[2, 3], &[10, 10]), vec![10, -70]);
        let y = vec![1];
        let z: Vec<i32> = (0..12).collect();
        // k = 0: r*z[10] + t*z[11] = 3*10 + 2*11 = 52; x = 5 + 1*52 = 57.
        assert_eq!(loop1_oracle(&y, &z), vec![57]);
    }
}
