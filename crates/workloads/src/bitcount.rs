//! **BITCOUNT1** — the paper's Example 3 and Figure 11.
//!
//! Counts the set bits of each element of `D[]` and stores the *cumulative*
//! count into `B[]`. The inner (bit) loop runs a data-dependent number of
//! iterations, so the compiler schedules four copies in parallel — one per
//! FU — and joins them with an explicit `ALL-SS` **barrier** before the
//! software-pipelined store sequence. This is the paper's flagship
//! demonstration of explicit barrier synchronization on XIMD.
//!
//! Two corrections to the published listing, both noted in `DESIGN.md`:
//!
//! * the exit test is `lt t,#8`, matching the listing's own caption
//!   ("Clean Up Code for less than 8 iterations remaining") and the `le
//!   n,#8` entry guard — the printed `lt t,4` would let a final block read
//!   up to three elements past the array;
//! * the `iadd #0,#0,b` at `15:` (which would zero the running total each
//!   block) is dropped: the text specifies *cumulative* counts, which
//!   require `b` to carry across blocks.
//!
//! The cleanup code at `30:`, which the paper explicitly omits ("additional
//! code is required, but not shown"), is supplied here: a sequential
//! single-FU loop handling the final `< 8` elements while FU1–FU3 halt.

use ximd_asm::{assemble, Assembly};
use ximd_isa::{FuId, Reg, Value};
use ximd_sim::{MachineConfig, SimError, Trace, VliwProgram, Vsim, Xsim};

/// Word address of `D[1]` minus one (`M(D0 + k) = D[k]`, 1-based).
pub const D_BASE: i32 = 999;
/// Word address of `B[0]` (`M(B0 + k) = B[k]`; `B[0]` is written 0).
pub const B_BASE: i32 = 1999;
/// Machine width of the published listing.
pub const WIDTH: usize = 4;

/// Loop index register `k`.
pub const REG_K: Reg = Reg(0);
/// Element-count register `n`.
pub const REG_N: Reg = Reg(1);
/// Running cumulative count `b`.
pub const REG_B: Reg = Reg(3);

/// Assembler source for BITCOUNT1 (paper Example 3 + our cleanup).
pub const SOURCE: &str = r"
; BITCOUNT1 -- paper Example 3 (explicit barrier synchronization).
.width 4
.reg k r0
.reg n r1
.reg a r2
.reg b r3
.reg t r4
.reg b0 r5
.reg b1 r6
.reg b2 r7
.reg b3 r8
.reg d0 r9
.reg d1 r10
.reg d2 r11
.reg d3 r12
.reg t0 r13
.reg t1 r14
.reg t2 r15
.reg t3 r16
.const D0 999
.const D1 1000
.const D2 1001
.const D3 1002
.const B0 1999
.const B1 2000
.const B2 2001
.const B3 2002
00:
  fu0: le n,#8      ; -> 01: ; DONE
  fu1: iadd #1,#0,k ; -> 01: ; DONE
  fu2: iadd #0,#0,b ; -> 01: ; DONE
  fu3: store #0,#B0 ; -> 01: ; DONE
01:
  all: nop ; if cc0 30: | 02: ; DONE
02:
  fu0: iadd #0,#0,b0 ; -> 03:
  fu1: iadd #0,#0,b1 ; -> 03:
  fu2: iadd #0,#0,b2 ; -> 03:
  fu3: iadd #0,#0,b3 ; -> 03:
03:
  fu0: load #D0,k,d0 ; -> 04:
  fu1: load #D1,k,d1 ; -> 04:
  fu2: load #D2,k,d2 ; -> 04:
  fu3: load #D3,k,d3 ; -> 04:
04:
  fu0: eq d0,#0 ; -> 05:
  fu1: eq d1,#0 ; -> 05:
  fu2: eq d2,#0 ; -> 05:
  fu3: eq d3,#0 ; -> 05:
05:
  fu0: and d0,#1,t0 ; if cc0 10: | 06:
  fu1: and d1,#1,t1 ; if cc1 10: | 06:
  fu2: and d2,#1,t2 ; if cc2 10: | 06:
  fu3: and d3,#1,t3 ; if cc3 10: | 06:
06:
  fu0: eq #0,t0 ; -> 07:
  fu1: eq #0,t1 ; -> 07:
  fu2: eq #0,t2 ; -> 07:
  fu3: eq #0,t3 ; -> 07:
07:
  fu0: shr d0,#1,d0 ; if cc0 04: | 08:
  fu1: shr d1,#1,d1 ; if cc1 04: | 08:
  fu2: shr d2,#1,d2 ; if cc2 04: | 08:
  fu3: shr d3,#1,d3 ; if cc3 04: | 08:
08:
  fu0: iadd b0,#1,b0 ; -> 04:
  fu1: iadd b1,#1,b1 ; -> 04:
  fu2: iadd b2,#1,b2 ; -> 04:
  fu3: iadd b3,#1,b3 ; -> 04:
10:
  all: nop ; if allss 11: | 10: ; DONE
11:
  fu0: iadd b,b0,b  ; -> 12: ; DONE
  fu1: nop          ; -> 12: ; DONE
  fu2: iadd k,#B0,a ; -> 12: ; DONE
  fu3: nop          ; -> 12: ; DONE
12:
  fu0: iadd b,b1,b  ; -> 13: ; DONE
  fu1: store b,a    ; -> 13: ; DONE
  fu2: iadd k,#B1,a ; -> 13: ; DONE
  fu3: nop          ; -> 13: ; DONE
13:
  fu0: iadd b,b2,b  ; -> 14: ; DONE
  fu1: store b,a    ; -> 14: ; DONE
  fu2: iadd k,#B2,a ; -> 14: ; DONE
  fu3: isub n,k,t   ; -> 14: ; DONE
14:
  fu0: iadd b,b3,b  ; -> 15: ; DONE
  fu1: store b,a    ; -> 15: ; DONE
  fu2: iadd k,#B3,a ; -> 15: ; DONE
  fu3: lt t,#8      ; -> 15: ; DONE
15:
  fu0: iadd k,#4,k  ; if cc3 30: | 02: ; DONE
  fu1: store b,a    ; if cc3 30: | 02: ; DONE
  fu2: nop          ; if cc3 30: | 02: ; DONE
  fu3: nop          ; if cc3 30: | 02: ; DONE
; ---- cleanup: sequential bit-count of the remaining < 8 elements on FU0.
30:
  fu0: gt k,n ; -> 31:
  fu1: nop ; halt
  fu2: nop ; halt
  fu3: nop ; halt
31:
  fu0: nop ; if cc0 3c: | 32:
32:
  fu0: load #D0,k,d0 ; -> 33:
33:
  fu0: iadd #0,#0,b0 ; -> 34:
34:
  fu0: eq d0,#0 ; -> 35:
35:
  fu0: and d0,#1,t0 ; if cc0 39: | 36:
36:
  fu0: eq #0,t0 ; -> 37:
37:
  fu0: shr d0,#1,d0 ; if cc0 34: | 38:
38:
  fu0: iadd b0,#1,b0 ; -> 34:
39:
  fu0: iadd b,b0,b ; -> 3a:
3a:
  fu0: iadd k,#B0,a ; -> 3b:
3b:
  fu0: store b,a ; -> 3d:
3c:
  fu0: nop ; halt
3d:
  fu0: iadd k,#1,k ; -> 30:
";

/// Assembles the BITCOUNT1 program.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (guarded by tests).
pub fn ximd_assembly() -> Assembly {
    assemble(SOURCE).expect("embedded BITCOUNT1 source is valid")
}

/// Outcome of a BITCOUNT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// `B[1..=n]`: cumulative popcounts.
    pub b: Vec<i32>,
    /// Cycles the run took.
    pub cycles: u64,
}

/// Reference implementation: `B[i] = Σ_{j<=i} popcount(D[j])`.
pub fn oracle(data: &[i32]) -> Vec<i32> {
    let mut total = 0i32;
    data.iter()
        .map(|&d| {
            total += (d as u32).count_ones() as i32;
            total
        })
        .collect()
}

fn prepared_sim(data: &[i32]) -> Result<Xsim, SimError> {
    let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH))?;
    sim.mem_mut().poke_slice(D_BASE as i64 + 1, data)?;
    sim.write_reg(REG_N, Value::I32(data.len() as i32));
    Ok(sim)
}

/// A seeded, ready-to-run BITCOUNT1 instance and how to drive it.
///
/// # Errors
///
/// Propagates simulator machine checks.
pub fn prepared(data: &[i32]) -> Result<(Xsim, crate::RunSpec), SimError> {
    let sim = prepared_sim(data)?;
    Ok((sim, crate::RunSpec::Run(200 + 160 * data.len() as u64)))
}

fn extract(sim_mem: &ximd_sim::Memory, n: usize) -> Result<Vec<i32>, SimError> {
    sim_mem.peek_slice(B_BASE as i64 + 1, n)
}

/// Runs BITCOUNT1 on xsim.
///
/// # Errors
///
/// Propagates simulator machine checks.
pub fn run_ximd(data: &[i32]) -> Result<Outcome, SimError> {
    let mut sim = prepared_sim(data)?;
    let budget = 200 + 160 * data.len() as u64;
    let summary = sim.run(budget)?;
    Ok(Outcome {
        b: extract(sim.mem(), data.len())?,
        cycles: summary.cycles,
    })
}

/// Runs BITCOUNT1 on xsim with tracing and returns the trace too.
///
/// # Errors
///
/// Propagates simulator machine checks.
pub fn run_ximd_traced(data: &[i32]) -> Result<(Outcome, Trace), SimError> {
    let mut sim = prepared_sim(data)?;
    sim.enable_trace();
    let budget = 200 + 160 * data.len() as u64;
    let summary = sim.run(budget)?;
    let outcome = Outcome {
        b: extract(sim.mem(), data.len())?,
        cycles: summary.cycles,
    };
    Ok((outcome, sim.trace().expect("tracing enabled").clone()))
}

/// The best single-control-stream (VLIW) schedule: the bit loops are
/// data-dependent in length, so a single sequencer must count each element
/// serially — exactly the handicap §3.3 describes.
pub fn vliw_program() -> VliwProgram {
    use ximd_isa::{Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, Operand};
    use ximd_sim::VliwInstruction;

    let k = REG_K;
    let n = REG_N;
    let a = Reg(2);
    let b = REG_B;
    let b0 = Reg(5);
    let d0 = Reg(9);
    let t0 = Reg(13);
    let zero = Operand::imm_i32(0);
    let one = Operand::imm_i32(1);
    let nop = DataOp::Nop;

    let mut p = VliwProgram::new(WIDTH);
    // 0: k = 1; b = 0; B[0] = 0                                     -> 1
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Iadd, one, zero, k),
            DataOp::alu(AluOp::Iadd, zero, zero, b),
            DataOp::store(zero, Operand::imm_i32(B_BASE)),
            nop,
        ],
        ctrl: ControlOp::Goto(Addr(1)),
    });
    // 1: cc3 = k > n                                                -> 2
    p.push(VliwInstruction {
        ops: vec![
            nop,
            nop,
            nop,
            DataOp::cmp(CmpOp::Gt, Operand::Reg(k), Operand::Reg(n)),
        ],
        ctrl: ControlOp::Goto(Addr(2)),
    });
    // 2: d0 = M(D0+k); b0 = 0; a = k + B0;  if cc3 -> 10 (done) else 3
    p.push(VliwInstruction {
        ops: vec![
            DataOp::load(Operand::imm_i32(D_BASE), Operand::Reg(k), d0),
            DataOp::alu(AluOp::Iadd, zero, zero, b0),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), Operand::imm_i32(B_BASE), a),
            nop,
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(3)), Addr(10), Addr(3)),
    });
    // 3: cc0 = (d0 == 0)                                            -> 4
    p.push(VliwInstruction {
        ops: vec![
            DataOp::cmp(CmpOp::Eq, Operand::Reg(d0), zero),
            nop,
            nop,
            nop,
        ],
        ctrl: ControlOp::Goto(Addr(4)),
    });
    // 4: t0 = d0 & 1;  if cc0 -> 8 (element done) else 5
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::And, Operand::Reg(d0), one, t0),
            nop,
            nop,
            nop,
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(0)), Addr(8), Addr(5)),
    });
    // 5: cc0 = (t0 == 0)                                            -> 6
    p.push(VliwInstruction {
        ops: vec![
            DataOp::cmp(CmpOp::Eq, zero, Operand::Reg(t0)),
            nop,
            nop,
            nop,
        ],
        ctrl: ControlOp::Goto(Addr(6)),
    });
    // 6: d0 >>= 1;  if cc0 -> 3 else 7
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Shr, Operand::Reg(d0), one, d0),
            nop,
            nop,
            nop,
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(0)), Addr(3), Addr(7)),
    });
    // 7: b0 += 1                                                    -> 3
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Iadd, Operand::Reg(b0), one, b0),
            nop,
            nop,
            nop,
        ],
        ctrl: ControlOp::Goto(Addr(3)),
    });
    // 8: b += b0; k += 1                                            -> 9
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Iadd, Operand::Reg(b), Operand::Reg(b0), b),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), one, k),
            nop,
            nop,
        ],
        ctrl: ControlOp::Goto(Addr(9)),
    });
    // 9: M(a) = b; cc3 = k > n                                      -> 2
    p.push(VliwInstruction {
        ops: vec![
            DataOp::store(Operand::Reg(b), Operand::Reg(a)),
            nop,
            nop,
            DataOp::cmp(CmpOp::Gt, Operand::Reg(k), Operand::Reg(n)),
        ],
        ctrl: ControlOp::Goto(Addr(2)),
    });
    // 10: halt
    p.push(VliwInstruction::halt(WIDTH));
    p
}

/// Runs BITCOUNT on the VLIW baseline.
///
/// # Errors
///
/// Propagates simulator machine checks.
pub fn run_vliw(data: &[i32]) -> Result<Outcome, SimError> {
    let mut sim = Vsim::new(vliw_program(), MachineConfig::with_width(WIDTH))?;
    sim.mem_mut().poke_slice(D_BASE as i64 + 1, data)?;
    sim.write_reg(REG_N, Value::I32(data.len() as i32));
    let budget = 200 + 200 * data.len() as u64;
    let summary = sim.run(budget)?;
    Ok(Outcome {
        b: extract(sim.mem(), data.len())?,
        cycles: summary.cycles,
    })
}

/// Figure 11 summary: the SSET transition profile of a run — for each
/// cycle, how many concurrent streams existed. The paper's Figure 11 shows
/// the fork at the first data-dependent inner-loop branch and the re-join
/// at the `ALL-SS` barrier.
pub fn stream_profile(trace: &Trace) -> Vec<usize> {
    trace.partitions().map(|p| p.num_ssets()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_oracle_small_cases() {
        // n <= 8 exercises the straight-to-cleanup path.
        for data in [
            vec![0],
            vec![1],
            vec![0b1011],
            vec![1, 2, 3, 4],
            vec![255, 0, 7, 1, 9, 15, 31, 63],
        ] {
            let out = run_ximd(&data).unwrap();
            assert_eq!(out.b, oracle(&data), "data {data:?}");
        }
    }

    #[test]
    fn matches_oracle_with_parallel_blocks() {
        // n > 8 exercises the 4-wide barrier loop plus cleanup.
        let data = crate::gen::bit_weighted_ints(5, 23, 16);
        let out = run_ximd(&data).unwrap();
        assert_eq!(out.b, oracle(&data));
    }

    #[test]
    fn matches_oracle_boundary_sizes() {
        // Sizes around the block/cleanup boundary logic.
        for n in [8usize, 9, 11, 12, 13, 16, 17] {
            let data = crate::gen::bit_weighted_ints(n as u64, n, 12);
            let out = run_ximd(&data).unwrap();
            assert_eq!(out.b, oracle(&data), "n = {n}");
        }
    }

    #[test]
    fn zero_heavy_data_exercises_early_barrier_arrivals() {
        let data = vec![
            0, 0x7fffffff, 0, 0x7fffffff, 0, 0, 0x0f0f0f0f, 0, 1, 0, 0, 2,
        ];
        let out = run_ximd(&data).unwrap();
        assert_eq!(out.b, oracle(&data));
    }

    #[test]
    fn vliw_baseline_matches_oracle() {
        for data in [vec![3, 0, 255], crate::gen::bit_weighted_ints(9, 12, 10)] {
            let out = run_vliw(&data).unwrap();
            assert_eq!(out.b, oracle(&data), "data {data:?}");
        }
    }

    #[test]
    fn ximd_beats_vliw_substantially() {
        let data = crate::gen::bit_weighted_ints(13, 64, 24);
        let x = run_ximd(&data).unwrap();
        let v = run_vliw(&data).unwrap();
        assert_eq!(x.b, v.b);
        let speedup = v.cycles as f64 / x.cycles as f64;
        assert!(
            speedup > 1.5,
            "XIMD should win clearly by running 4 bit loops concurrently: {speedup:.2}x \
             (ximd {} vs vliw {})",
            x.cycles,
            v.cycles
        );
    }

    #[test]
    fn forks_to_four_streams_and_rejoins() {
        let data = crate::gen::bit_weighted_ints(3, 16, 20);
        let (_, trace) = run_ximd_traced(&data).unwrap();
        let profile = stream_profile(&trace);
        assert_eq!(
            *profile.iter().max().unwrap(),
            4,
            "four concurrent inner loops"
        );
        assert_eq!(profile[0], 1, "starts as a single SSET");
        // The barrier re-joins all four streams at least once per block.
        let rejoined_after_fork = profile.windows(2).any(|w| w[0] > 1 && w[1] == 1);
        assert!(
            rejoined_after_fork,
            "barrier must merge the streams: {profile:?}"
        );
    }

    #[test]
    fn barrier_spin_cycles_accrue_on_skewed_data() {
        // One element with many bits, three with none: three FUs spin at
        // the barrier while the heavy loop finishes.
        let data = vec![0x7fffffff, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2];
        let mut sim = prepared_sim(&data).unwrap();
        let summary = sim.run(10_000).unwrap();
        assert!(
            summary.stats.spin_cycles > 30,
            "spin cycles {}",
            summary.stats.spin_cycles
        );
    }

    #[test]
    fn oracle_is_cumulative() {
        assert_eq!(oracle(&[1, 3, 0, 7]), vec![1, 3, 3, 6]);
    }
}
