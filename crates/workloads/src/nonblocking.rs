//! **Non-blocking synchronizations** — the paper's Figure 12.
//!
//! Two concurrent processes on an 8-FU XIMD: Process 1 (SSET `{0,1,2,3}`)
//! reads values `a`, `b`, `c` from I/O ports, Process 2 (SSET `{4,5,6,7}`)
//! reads `x`, `y`, `z`; each process also consumes the other's values, in
//! order, writing them to an output port. Port response times are bounded
//! but non-deterministic, so no static schedule exists — the paper's point
//! is that XIMD sync bits implement the cross-process dependencies with
//! single-cycle tests and no blocking:
//!
//! | variable | signal | | variable | signal |
//! |----------|--------|-|----------|--------|
//! | `a` | `SS0` | | `x` | `SS4` |
//! | `b` | `SS1` | | `y` | `SS5` |
//! | `c` | `SS2` | | `z` | `SS6` |
//!
//! Each producing FU polls its port, latches the value in a (globally
//! readable) register, then parks on a hold state that exports `DONE`
//! forever — the signal *is* the availability flag. Consumers test one sync
//! signal per cycle. A standard `ALL-SS` barrier ends the program, exactly
//! as the paper describes ("a standard barrier synchronization is used
//! after both processes are completed").
//!
//! [`run_flags`] is the baseline the paper argues against: the same program
//! with availability signalled through memory flags (store by producer,
//! load + compare + branch by consumer). [`run_sync`] beats it on every
//! seed; the benchmark harness quantifies the gap.

use ximd_asm::{assemble, Assembly};
use ximd_isa::Value;
use ximd_sim::{IoPort, MachineConfig, SimError, Xsim};

/// Machine width (the paper's full 8-FU XIMD-1).
pub const WIDTH: usize = 8;

/// Memory addresses of the ready flags used by the baseline version.
pub const FLAG_BASE: i32 = 600;

/// Input values for one run: what the six ports will eventually deliver
/// (all must be non-zero — the protocol polls "until the port returns a
/// non-zero, valid value") and the latency window for arrivals.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Values for `a`, `b`, `c` (Process 1 inputs, ports 0–2).
    pub abc: [i32; 3],
    /// Values for `x`, `y`, `z` (Process 2 inputs, ports 3–5).
    pub xyz: [i32; 3],
    /// RNG seed for arrival times.
    pub seed: u64,
    /// Arrival-gap window in cycles (uniform), e.g. `5..40`.
    pub latency: std::ops::Range<u64>,
}

impl Scenario {
    /// A scenario with the given seed and default values/latencies.
    pub fn with_seed(seed: u64) -> Scenario {
        Scenario {
            abc: [11, 22, 33],
            xyz: [44, 55, 66],
            seed,
            latency: 5..40,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Values Process 1 wrote to its output port (must be `x, y, z`).
    pub p1_wrote: Vec<i32>,
    /// Values Process 2 wrote to its output port (must be `a, b, c`).
    pub p2_wrote: Vec<i32>,
    /// Total cycles.
    pub cycles: u64,
}

/// The sync-bit version (the paper's Figure 12 design).
pub const SOURCE_SYNC: &str = r"
; Figure 12 -- multiple non-blocking synchronizations via sync bits.
.width 8
.reg ra r0
.reg rb r1
.reg rc r2
.reg rx r4
.reg ry r5
.reg rz r6
00:
  fu0: nop ; -> 01:
  fu1: nop ; -> 04:
  fu2: nop ; -> 07:
  fu3: nop ; -> 0a:
  fu4: nop ; -> 20:
  fu5: nop ; -> 23:
  fu6: nop ; -> 26:
  fu7: nop ; -> 2a:
; --- process 1 producers: poll ports 0..2 for a, b, c.
01:
  fu0: in p0,ra ; -> 02:
02:
  fu0: ne ra,#0 ; -> 03:
03:
  fu0: nop ; if cc0 0f: | 01:
04:
  fu1: in p1,rb ; -> 05:
05:
  fu1: ne rb,#0 ; -> 06:
06:
  fu1: nop ; if cc1 10: | 04:
07:
  fu2: in p2,rc ; -> 08:
08:
  fu2: ne rc,#0 ; -> 09:
09:
  fu2: nop ; if cc2 11: | 07:
; --- process 1 consumer: forward x, y, z (in order) to port 6.
0a:
  fu3: nop ; if ss4 0b: | 0a:
0b:
  fu3: out rx,p6 ; -> 0c:
0c:
  fu3: nop ; if ss5 0d: | 0c:
0d:
  fu3: out ry,p6 ; -> 0e:
0e:
  fu3: nop ; if ss6 12: | 0e:
; --- hold states: the DONE export is the availability flag.
0f:
  fu0: nop ; if allss 40: | 0f: ; DONE
10:
  fu1: nop ; if allss 40: | 10: ; DONE
11:
  fu2: nop ; if allss 40: | 11: ; DONE
12:
  fu3: out rz,p6 ; -> 13:
13:
  fu3: nop ; if allss 40: | 13: ; DONE
; --- process 2 producers: poll ports 3..5 for x, y, z.
20:
  fu4: in p3,rx ; -> 21:
21:
  fu4: ne rx,#0 ; -> 22:
22:
  fu4: nop ; if cc4 2e: | 20:
23:
  fu5: in p4,ry ; -> 24:
24:
  fu5: ne ry,#0 ; -> 25:
25:
  fu5: nop ; if cc5 2f: | 23:
26:
  fu6: in p5,rz ; -> 27:
27:
  fu6: ne rz,#0 ; -> 28:
28:
  fu6: nop ; if cc6 30: | 26:
; --- process 2 consumer: forward a, b, c (in order) to port 7.
2a:
  fu7: nop ; if ss0 2b: | 2a:
2b:
  fu7: out ra,p7 ; -> 2c:
2c:
  fu7: nop ; if ss1 2d: | 2c:
2d:
  fu7: out rb,p7 ; -> 31:
2e:
  fu4: nop ; if allss 40: | 2e: ; DONE
2f:
  fu5: nop ; if allss 40: | 2f: ; DONE
30:
  fu6: nop ; if allss 40: | 30: ; DONE
31:
  fu7: nop ; if ss2 32: | 31:
32:
  fu7: out rc,p7 ; -> 33:
33:
  fu7: nop ; if allss 40: | 33: ; DONE
40:
  all: nop ; halt
";

/// The memory-flag baseline: identical structure, but availability is
/// signalled by storing 1 to a flag word, and consumers poll with
/// load + compare + branch (three cycles per test instead of one).
pub const SOURCE_FLAGS: &str = r"
; Figure 12 baseline -- availability through memory flags.
.width 8
.reg ra r0
.reg rb r1
.reg rc r2
.reg rx r4
.reg ry r5
.reg rz r6
.reg t3 r8
.reg t7 r9
.const FA 600
.const FB 601
.const FC 602
.const FX 603
.const FY 604
.const FZ 605
00:
  fu0: nop ; -> 01:
  fu1: nop ; -> 05:
  fu2: nop ; -> 09:
  fu3: nop ; -> 0d:
  fu4: nop ; -> 20:
  fu5: nop ; -> 24:
  fu6: nop ; -> 28:
  fu7: nop ; -> 2c:
; --- process 1 producers: poll port, then store the ready flag.
01:
  fu0: in p0,ra ; -> 02:
02:
  fu0: ne ra,#0 ; -> 03:
03:
  fu0: nop ; if cc0 04: | 01:
04:
  fu0: store #1,#FA ; -> 13:
05:
  fu1: in p1,rb ; -> 06:
06:
  fu1: ne rb,#0 ; -> 07:
07:
  fu1: nop ; if cc1 08: | 05:
08:
  fu1: store #1,#FB ; -> 14:
09:
  fu2: in p2,rc ; -> 0a:
0a:
  fu2: ne rc,#0 ; -> 0b:
0b:
  fu2: nop ; if cc2 0c: | 09:
0c:
  fu2: store #1,#FC ; -> 15:
; --- process 1 consumer: spin on flag words for x, y, z.
0d:
  fu3: load #FX,#0,t3 ; -> 0e:
0e:
  fu3: ne t3,#0 ; -> 0f:
0f:
  fu3: nop ; if cc3 10: | 0d:
10:
  fu3: out rx,p6 ; -> 16:
13:
  fu0: nop ; if allss 40: | 13: ; DONE
14:
  fu1: nop ; if allss 40: | 14: ; DONE
15:
  fu2: nop ; if allss 40: | 15: ; DONE
16:
  fu3: load #FY,#0,t3 ; -> 17:
17:
  fu3: ne t3,#0 ; -> 18:
18:
  fu3: nop ; if cc3 19: | 16:
19:
  fu3: out ry,p6 ; -> 1a:
1a:
  fu3: load #FZ,#0,t3 ; -> 1b:
1b:
  fu3: ne t3,#0 ; -> 1c:
1c:
  fu3: nop ; if cc3 1d: | 1a:
1d:
  fu3: out rz,p6 ; -> 1e:
1e:
  fu3: nop ; if allss 40: | 1e: ; DONE
; --- process 2 producers.
20:
  fu4: in p3,rx ; -> 21:
21:
  fu4: ne rx,#0 ; -> 22:
22:
  fu4: nop ; if cc4 23: | 20:
23:
  fu4: store #1,#FX ; -> 36:
24:
  fu5: in p4,ry ; -> 25:
25:
  fu5: ne ry,#0 ; -> 26:
26:
  fu5: nop ; if cc5 27: | 24:
27:
  fu5: store #1,#FY ; -> 37:
28:
  fu6: in p5,rz ; -> 29:
29:
  fu6: ne rz,#0 ; -> 2a:
2a:
  fu6: nop ; if cc6 2b: | 28:
2b:
  fu6: store #1,#FZ ; -> 38:
; --- process 2 consumer.
2c:
  fu7: load #FA,#0,t7 ; -> 2d:
2d:
  fu7: ne t7,#0 ; -> 2e:
2e:
  fu7: nop ; if cc7 2f: | 2c:
2f:
  fu7: out ra,p7 ; -> 30:
30:
  fu7: load #FB,#0,t7 ; -> 31:
31:
  fu7: ne t7,#0 ; -> 32:
32:
  fu7: nop ; if cc7 33: | 30:
33:
  fu7: out rb,p7 ; -> 34:
34:
  fu7: load #FC,#0,t7 ; -> 35:
35:
  fu7: ne t7,#0 ; -> 39:
36:
  fu4: nop ; if allss 40: | 36: ; DONE
37:
  fu5: nop ; if allss 40: | 37: ; DONE
38:
  fu6: nop ; if allss 40: | 38: ; DONE
39:
  fu7: nop ; if cc7 3a: | 34:
3a:
  fu7: out rc,p7 ; -> 3b:
3b:
  fu7: nop ; if allss 40: | 3b: ; DONE
40:
  all: nop ; halt
";

/// Assembles the sync-bit version.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (guarded by tests).
pub fn sync_assembly() -> Assembly {
    assemble(SOURCE_SYNC).expect("embedded sync source is valid")
}

/// Assembles the memory-flag baseline.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (guarded by tests).
pub fn flags_assembly() -> Assembly {
    assemble(SOURCE_FLAGS).expect("embedded flags source is valid")
}

fn prepared_with(
    program: ximd_isa::Program,
    scenario: &Scenario,
) -> Result<(Xsim, crate::RunSpec), SimError> {
    let mut sim = Xsim::new(program, MachineConfig::ximd1())?;
    // Ports 0..5: inputs a,b,c,x,y,z with seeded arrival times. Ports 6,7:
    // outputs.
    for (i, &v) in scenario.abc.iter().chain(scenario.xyz.iter()).enumerate() {
        assert!(
            v != 0,
            "port values must be non-zero (the protocol polls for non-zero)"
        );
        let mut port = IoPort::new();
        port.schedule_random(
            scenario.seed.wrapping_add(i as u64),
            0,
            scenario.latency.clone(),
            [Value::I32(v)],
        );
        sim.attach_port(port);
    }
    sim.attach_port(IoPort::new()); // p6
    sim.attach_port(IoPort::new()); // p7
    let max = 2000 + 20 * scenario.latency.end;
    Ok((sim, crate::RunSpec::Run(max)))
}

/// A seeded, ready-to-run sync-bit Figure 12 instance and how to drive it.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics if a scenario value is zero.
pub fn prepared_sync(scenario: &Scenario) -> Result<(Xsim, crate::RunSpec), SimError> {
    prepared_with(sync_assembly().program, scenario)
}

fn run(program: ximd_isa::Program, scenario: &Scenario) -> Result<Outcome, SimError> {
    let (mut sim, spec) = prepared_with(program, scenario)?;
    let summary = spec.drive(&mut sim)?;
    let collect = |port: &IoPort| port.written().iter().map(|e| e.value.as_i32()).collect();
    Ok(Outcome {
        p1_wrote: collect(&sim.ports()[6]),
        p2_wrote: collect(&sim.ports()[7]),
        cycles: summary.cycles,
    })
}

/// Runs the sync-bit version of Figure 12.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics if a scenario value is zero.
pub fn run_sync(scenario: &Scenario) -> Result<Outcome, SimError> {
    run(sync_assembly().program, scenario)
}

/// Runs the memory-flag baseline.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics if a scenario value is zero.
pub fn run_flags(scenario: &Scenario) -> Result<Outcome, SimError> {
    run(flags_assembly().program, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_outcome(out: &Outcome, s: &Scenario) {
        assert_eq!(
            out.p1_wrote,
            s.xyz.to_vec(),
            "process 1 forwards x, y, z in order"
        );
        assert_eq!(
            out.p2_wrote,
            s.abc.to_vec(),
            "process 2 forwards a, b, c in order"
        );
    }

    #[test]
    fn sync_version_forwards_all_values_in_order() {
        for seed in 0..8 {
            let s = Scenario::with_seed(seed);
            let out = run_sync(&s).unwrap();
            check_outcome(&out, &s);
        }
    }

    #[test]
    fn flags_version_forwards_all_values_in_order() {
        for seed in 0..8 {
            let s = Scenario::with_seed(seed);
            let out = run_flags(&s).unwrap();
            check_outcome(&out, &s);
        }
    }

    #[test]
    fn sync_bits_beat_memory_flags() {
        // The paper: "We will implement them using the XIMD synchronization
        // bits rather than through register or memory based flags. This
        // will result in increased performance."
        let mut wins = 0;
        for seed in 0..16 {
            let s = Scenario::with_seed(seed);
            let sync = run_sync(&s).unwrap();
            let flags = run_flags(&s).unwrap();
            check_outcome(&sync, &s);
            check_outcome(&flags, &s);
            assert!(
                sync.cycles <= flags.cycles,
                "seed {seed}: sync {} vs flags {}",
                sync.cycles,
                flags.cycles
            );
            if sync.cycles < flags.cycles {
                wins += 1;
            }
        }
        assert!(
            wins >= 12,
            "sync bits should usually win outright ({wins}/16)"
        );
    }

    #[test]
    fn extreme_skew_still_correct() {
        // All of process 2's inputs arrive long before process 1's.
        let s = Scenario {
            abc: [1, 2, 3],
            xyz: [7, 8, 9],
            seed: 99,
            latency: 100..101,
        };
        let out = run_sync(&s).unwrap();
        check_outcome(&out, &s);

        let quick = Scenario {
            abc: [1, 2, 3],
            xyz: [7, 8, 9],
            seed: 4,
            latency: 1..2,
        };
        let out = run_sync(&quick).unwrap();
        check_outcome(&out, &quick);
    }

    #[test]
    fn processes_run_as_independent_streams() {
        let s = Scenario::with_seed(5);
        let mut sim = Xsim::new(sync_assembly().program, MachineConfig::ximd1()).unwrap();
        for (i, &v) in s.abc.iter().chain(s.xyz.iter()).enumerate() {
            let mut port = IoPort::new();
            port.schedule_random(s.seed + i as u64, 0, s.latency.clone(), [Value::I32(v)]);
            sim.attach_port(port);
        }
        sim.attach_port(IoPort::new());
        sim.attach_port(IoPort::new());
        sim.enable_trace();
        sim.run(5000).unwrap();
        // Many concurrent streams: the 8 FUs run up to 8 distinct threads.
        assert!(sim.trace().unwrap().max_streams() >= 6);
    }
}
