//! **SAXPY** — the floating-point path, end to end.
//!
//! XIMD-1 supports two data types, 32-bit integers and 32-bit IEEE floats,
//! and the prototype's headline rate is quoted in MFLOPS; this kernel
//! (`Z[k] = a·X[k] + Y[k]`, single precision) exercises the float opcodes
//! through the whole stack: IR construction, modulo scheduling, both
//! simulators, and a bit-exact Rust oracle (the simulator's `fmult`/`fadd`
//! are the same IEEE-754 operations `f32` performs, applied in the same
//! order, so results match exactly — not merely approximately).

use ximd_compiler::ir::{Inst, VReg, Val};
use ximd_compiler::pipeline::{modulo_schedule, CountedLoop, Pipelined};
use ximd_compiler::CompileError;
use ximd_isa::{AluOp, Value};
use ximd_sim::{MachineConfig, RunSummary, SimError, TimingSpec, Vsim};

/// Word address of `X[1]` minus one.
pub const X_BASE: i32 = 20_000;
/// Word address of `Y[1]` minus one.
pub const Y_BASE: i32 = 22_000;
/// Word address of `Z[1]` minus one.
pub const Z_BASE: i32 = 24_000;

const IND: VReg = VReg(0);
const TRIPS: VReg = VReg(1);
/// The vreg holding the scalar `a` (seed via [`Pipelined::reg_of`]).
pub const A: VReg = VReg(2);

/// The SAXPY loop for the modulo scheduler.
pub fn spec() -> CountedLoop {
    let (x, y, ax, z, addr) = (VReg(3), VReg(4), VReg(5), VReg(6), VReg(7));
    CountedLoop {
        body: vec![
            Inst::Bin {
                op: AluOp::Iadd,
                a: IND.into(),
                b: Val::Const(Z_BASE),
                d: addr,
            },
            Inst::Load {
                base: Val::Const(X_BASE),
                off: IND.into(),
                d: x,
            },
            Inst::Load {
                base: Val::Const(Y_BASE),
                off: IND.into(),
                d: y,
            },
            Inst::Bin {
                op: AluOp::Fmult,
                a: A.into(),
                b: x.into(),
                d: ax,
            },
            Inst::Bin {
                op: AluOp::Fadd,
                a: ax.into(),
                b: y.into(),
                d: z,
            },
            Inst::Store {
                val: z.into(),
                addr: addr.into(),
            },
        ],
        induction: IND,
        start: 0,
        step: 1,
        trips: TRIPS,
        assume_no_alias: true,
    }
}

/// Bit-exact reference: `z[k] = a * x[k] + y[k]` in `f32`.
pub fn oracle(a: f32, x: &[f32], y: &[f32]) -> Vec<f32> {
    x.iter().zip(y).map(|(&xv, &yv)| a * xv + yv).collect()
}

/// Pipelines SAXPY and seeds a vsim without running it; returns the
/// machine, its ideal-timing cycle budget and the schedule. Harnesses can
/// retime the machine ([`Vsim::set_timing`]) before driving it.
///
/// # Errors
///
/// Returns scheduling or simulation failures.
///
/// # Panics
///
/// Panics if `x` and `y` differ in length or are shorter than the pipeline
/// depth.
pub fn prepared(
    a: f32,
    x: &[f32],
    y: &[f32],
    width: usize,
) -> Result<(Vsim, u64, Pipelined), CompileError> {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    let n = x.len();
    let pipe = modulo_schedule(&spec(), width)?;
    assert!(n as u32 >= pipe.min_trips, "n below pipeline depth");

    let mut sim = Vsim::new(pipe.vliw.clone(), MachineConfig::with_width(width))?;
    for (i, (&xv, &yv)) in x.iter().zip(y).enumerate() {
        sim.mem_mut()
            .poke(X_BASE as i64 + i as i64, Value::F32(xv))?;
        sim.mem_mut()
            .poke(Y_BASE as i64 + i as i64, Value::F32(yv))?;
    }
    sim.write_reg(pipe.reg_of[&TRIPS], Value::I32(n as i32));
    sim.write_reg(pipe.reg_of[&A], Value::F32(a));
    Ok((sim, 1_000 + 16 * n as u64, pipe))
}

/// Reads `Z[0..n]` back out of a finished machine.
///
/// # Errors
///
/// Propagates memory range checks.
pub fn read_z(sim: &Vsim, n: usize) -> Result<Vec<f32>, SimError> {
    (0..n)
        .map(|i| sim.mem().read(Z_BASE as i64 + i as i64).map(Value::as_f32))
        .collect()
}

/// Pipelines and runs SAXPY on vsim; returns `(z, cycles, pipelined)`.
///
/// # Errors
///
/// Returns scheduling or simulation failures.
///
/// # Panics
///
/// Panics if `x` and `y` differ in length or are shorter than the pipeline
/// depth.
pub fn run(
    a: f32,
    x: &[f32],
    y: &[f32],
    width: usize,
) -> Result<(Vec<f32>, u64, Pipelined), CompileError> {
    let (mut sim, budget, pipe) = prepared(a, x, y, width)?;
    let summary = sim.run(budget).map_err(CompileError::from)?;
    let z = read_z(&sim, x.len())?;
    Ok((z, summary.cycles, pipe))
}

/// Runs SAXPY under an explicit timing model (budget stretched by the
/// model's worst-case factor); returns `(z, summary)`. The kernel is
/// memory-heavy — two loads and a store per trip — so banked and
/// memory-latency models visibly stretch it.
///
/// # Errors
///
/// Returns scheduling, configuration or simulation failures.
///
/// # Panics
///
/// Panics if `x` and `y` differ in length or are shorter than the pipeline
/// depth.
pub fn run_timed(
    a: f32,
    x: &[f32],
    y: &[f32],
    width: usize,
    timing: &TimingSpec,
) -> Result<(Vec<f32>, RunSummary), CompileError> {
    let (mut sim, budget, _) = prepared(a, x, y, width)?;
    sim.set_timing(timing).map_err(CompileError::from)?;
    let budget = budget.saturating_mul(crate::timing_budget_factor(timing, width));
    let summary = sim.run(budget).map_err(CompileError::from)?;
    let z = read_z(&sim, x.len())?;
    Ok((z, summary))
}

/// Generates a deterministic float vector (finite, varied magnitudes).
pub fn float_vec(seed: u64, n: usize) -> Vec<f32> {
    crate::gen::uniform_ints(seed, n, -10_000, 10_000)
        .into_iter()
        .map(|v| v as f32 / 128.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_exact_against_f32_oracle() {
        for n in [4usize, 17, 64] {
            let x = float_vec(n as u64, n);
            let y = float_vec(n as u64 + 1, n);
            let a = 2.5f32;
            let (z, _, _) = run(a, &x, &y, 4).unwrap();
            let expect = oracle(a, &x, &y);
            // Bit-exact, not approximate: same IEEE ops in the same order.
            let zb: Vec<u32> = z.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(zb, eb, "n = {n}");
        }
    }

    #[test]
    fn achieves_tight_ii_on_wide_machine() {
        let (_, _, pipe) = run(1.0, &float_vec(1, 16), &float_vec(2, 16), 8).unwrap();
        assert!(
            pipe.ii <= 3,
            "9 nodes on 8 FUs, chain-limited: got II = {}",
            pipe.ii
        );
    }

    #[test]
    fn banked_memory_contends_but_stays_correct() {
        let a = 2.5f32;
        let x = float_vec(1, 32);
        let y = float_vec(2, 32);
        let (_, ideal) = run_timed(a, &x, &y, 8, &TimingSpec::Ideal).unwrap();
        // X, Y and Z bases share parity, so 2 banks serialize the accesses.
        let spec = TimingSpec::parse("banked:2").unwrap();
        let (z, banked) = run_timed(a, &x, &y, 8, &spec).unwrap();
        assert!(
            banked.stats.contention_stalls > 0,
            "same-parity arrays must collide: {:?}",
            banked.stats
        );
        assert!(banked.cycles > ideal.cycles, "contention costs cycles");
        let expect = oracle(a, &x, &y);
        assert_eq!(
            z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "timing must never change results"
        );
    }

    #[test]
    fn special_values_flow_through() {
        let x = vec![f32::INFINITY, -0.0, 1.0e-38, 3.5];
        let y = vec![1.0, -0.0, 0.0, -3.5];
        let (z, _, _) = run(0.5, &x, &y, 4).unwrap();
        let expect = oracle(0.5, &x, &y);
        assert_eq!(z[0], f32::INFINITY);
        assert_eq!(z[3], expect[3]);
        assert_eq!(
            z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
