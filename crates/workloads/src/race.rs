//! **RACE** — first-finisher synchronization via `ANY-SS`.
//!
//! XIMD-1 defines four condition-selection criteria; the paper's examples
//! exercise `CC_j`, `SS_j` and `ALL-SS`, leaving `∑(SS_i == DONE)` —
//! *branch on ANY sync signal* — described but undemonstrated. This
//! workload is the natural use: two functional units search an array for a
//! target value from opposite ends; whichever finds it first exports `DONE`
//! and **both** threads exit immediately through an `if anyss` test, rather
//! than each running to completion.
//!
//! The expected cycle count is therefore proportional to the *distance from
//! the nearer end*, not to the array length — which the tests assert — and
//! a third unit can wait on the outcome without polling memory.

use ximd_asm::{assemble, Assembly};
use ximd_isa::{Reg, Value};
use ximd_sim::{MachineConfig, SimError, Xsim};

/// Word address of the array's first element.
pub const BASE: i32 = 100;
/// Machine width.
pub const WIDTH: usize = 2;

/// Register receiving the forward searcher's found index (-1 if unset).
pub const REG_RESULT_FWD: Reg = Reg(6);
/// Register receiving the backward searcher's found index (-1 if unset).
pub const REG_RESULT_BWD: Reg = Reg(7);
/// Register holding the target value.
pub const REG_TARGET: Reg = Reg(2);
/// Register holding the array length.
pub const REG_N: Reg = Reg(3);

/// Two searchers racing from opposite ends; `anyss` ends both.
pub const SOURCE: &str = r"
; RACE -- bidirectional search with ANY-SS first-finisher exit.
.width 2
.reg lo r0
.reg hi r1
.reg target r2
.reg n r3
.reg va r4
.reg vb r5
.reg result r6
.reg result2 r7
00:
  fu0: iadd #0,#0,lo  ; -> 01:
  fu1: isub n,#1,hi   ; -> 01:
; --- forward searcher (FU0) and backward searcher (FU1), in lockstep
; shapes but independent streams once the loads diverge.
01:
  fu0: load #100,lo,va ; -> 02:
  fu1: load #100,hi,vb ; -> 02:
02:
  fu0: eq va,target ; -> 03:
  fu1: eq vb,target ; -> 03:
03:
  fu0: nop ; if cc0 08: | 04:
  fu1: nop ; if cc1 0a: | 05:
04:
  fu0: iadd lo,#1,lo ; -> 06:
05:
  fu1: isub hi,#1,hi ; -> 06:
06:
  fu0: nop ; if anyss 0c: | 07:
  fu1: nop ; if anyss 0c: | 07:
07:
  fu0: nop ; -> 01:
  fu1: nop ; -> 01:
; --- found paths: record the index, export DONE forever.
08:
  fu0: iadd lo,#0,result ; -> 09:
09:
  fu0: nop ; -> 0c: ; DONE
0a:
  fu1: iadd hi,#0,result2 ; -> 0b:
0b:
  fu1: nop ; -> 0c: ; DONE
; --- common exit.
0c:
  all: nop ; halt
";

/// Assembles the RACE program.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (guarded by tests).
pub fn ximd_assembly() -> Assembly {
    assemble(SOURCE).expect("embedded RACE source is valid")
}

/// Outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The index found (whichever searcher won).
    pub index: i32,
    /// Cycles to completion.
    pub cycles: u64,
}

/// Reference: the distance (in elements) from the nearer end to the first
/// occurrence reachable by that searcher.
pub fn oracle_indices(data: &[i32], target: i32) -> (Option<usize>, Option<usize>) {
    let fwd = data.iter().position(|&v| v == target);
    let bwd = data.iter().rposition(|&v| v == target);
    (fwd, bwd)
}

/// Runs the race.
///
/// # Errors
///
/// Propagates simulator machine checks; a missing target exhausts the cycle
/// budget ([`SimError::CycleLimit`]) — the program as written (like the
/// paper's examples) assumes the value is present.
pub fn run(data: &[i32], target: i32) -> Result<Outcome, SimError> {
    let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH))?;
    sim.mem_mut().poke_slice(BASE as i64, data)?;
    sim.write_reg(REG_TARGET, Value::I32(target));
    sim.write_reg(REG_N, Value::I32(data.len() as i32));
    sim.write_reg(REG_RESULT_FWD, Value::I32(-1));
    sim.write_reg(REG_RESULT_BWD, Value::I32(-1));
    let summary = sim.run(40 + 8 * data.len() as u64)?;
    // Both searchers may find in the same cycle (distinct result registers
    // avoid the undefined same-cycle write); report the forward winner
    // first.
    let fwd = sim.reg(REG_RESULT_FWD).as_i32();
    let bwd = sim.reg(REG_RESULT_BWD).as_i32();
    let index = if fwd >= 0 { fwd } else { bwd };
    Ok(Outcome {
        index,
        cycles: summary.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_target_from_either_end() {
        let data = vec![9, 9, 9, 5, 9, 9, 9, 9];
        let out = run(&data, 5).unwrap();
        assert_eq!(out.index, 3);

        let near_end = vec![9, 9, 9, 9, 9, 9, 5, 9];
        let out = run(&near_end, 5).unwrap();
        assert_eq!(out.index, 6);
    }

    #[test]
    fn cost_tracks_nearer_end_not_length() {
        // Target near the front of a long array: the backward searcher
        // would need ~n iterations, but ANY-SS stops it early.
        let mut data = vec![0; 400];
        data[3] = 7;
        let near = run(&data, 7).unwrap();
        assert_eq!(near.index, 3);
        assert!(
            near.cycles < 80,
            "first-finisher exit should cost ~distance-from-front: {} cycles",
            near.cycles
        );

        // Target dead center: both searchers work ~n/2.
        let mut data = vec![0; 400];
        data[200] = 7;
        let mid = run(&data, 7).unwrap();
        assert_eq!(mid.index, 200);
        assert!(
            mid.cycles > near.cycles * 5,
            "mid {} vs near {}",
            mid.cycles,
            near.cycles
        );
    }

    #[test]
    fn duplicate_targets_return_a_valid_occurrence() {
        let data = vec![1, 7, 2, 2, 7, 1];
        let out = run(&data, 7).unwrap();
        let (f, b) = oracle_indices(&data, 7);
        assert!(
            out.index == f.unwrap() as i32 || out.index == b.unwrap() as i32,
            "index {} should be one of {f:?}/{b:?}",
            out.index
        );
    }

    #[test]
    fn single_element() {
        let out = run(&[42], 42).unwrap();
        assert_eq!(out.index, 0);
    }

    #[test]
    fn missing_target_hits_cycle_budget() {
        let data = vec![1, 2, 3, 4];
        assert!(matches!(run(&data, 99), Err(SimError::CycleLimit { .. })));
    }

    #[test]
    fn searchers_run_as_independent_streams() {
        let mut data = vec![0; 64];
        data[40] = 7;
        let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH)).unwrap();
        sim.mem_mut().poke_slice(BASE as i64, &data).unwrap();
        sim.write_reg(REG_TARGET, Value::I32(7));
        sim.write_reg(REG_N, Value::I32(64));
        sim.enable_trace();
        sim.run(10_000).unwrap();
        assert_eq!(sim.trace().unwrap().max_streams(), 2);
    }
}
