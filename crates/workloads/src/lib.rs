//! The paper's example programs and benchmark workloads.
//!
//! Each module reproduces one of the programs published in the paper (or a
//! workload class its evaluation calls for), in up to three forms:
//!
//! * an **XIMD program** — the multi-instruction-stream version, usually a
//!   faithful transcription of the paper's listing;
//! * a **VLIW baseline** — the best single-control-stream schedule of the
//!   same computation, for the xsim-vs-vsim comparison of §4.1;
//! * a **Rust oracle** — a plain reference implementation used by the test
//!   suite to check simulated results.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`tproc`] | Example 1 — percolation-scheduled scalar code |
//! | [`minmax`] | Example 2 + Figure 10 — fork/join with implicit barriers |
//! | [`bitcount`] | Example 3 + Figure 11 — explicit `ALL-SS` barrier |
//! | [`livermore`] | §3.1 Livermore Loop 12 — software pipelining |
//! | [`livermore_ext`] | Loops 1, 3, 5 via the modulo scheduler (width/recurrence/alias regimes) |
//! | [`nonblocking`] | Figure 12 — non-blocking synchronizations via sync bits |
//! | [`saxpy`] | single-precision kernel exercising the float path (prototype MFLOPS claim) |
//! | [`race`] | first-finisher exit via `ANY-SS` (the fourth condition-selection criterion) |
//! | [`gen`] | seeded input generators |
//!
//! # Example
//!
//! Run the paper's MINMAX program on its published data set and check the
//! result against the oracle:
//!
//! ```
//! use ximd_workloads::minmax;
//!
//! let data = [5, 3, 4, 7]; // Figure 10's IZ()
//! let outcome = minmax::run_ximd(&data)?;
//! assert_eq!((outcome.min, outcome.max), (3, 7));
//! # Ok::<(), ximd_sim::SimError>(())
//! ```

use ximd_isa::Addr;

/// How a prepared workload simulator is driven to completion.
///
/// Returned alongside the seeded [`Xsim`](ximd_sim::Xsim) by each module's
/// `prepared` constructor so harnesses (xbench, equivalence tests) can run
/// the exact same machine through either the interpreter or the decoded
/// fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSpec {
    /// Drive with `run` / `run_decoded` and this cycle budget.
    Run(u64),
    /// Drive with `run_until_parked` / `run_decoded_until_parked`: park
    /// address and cycle budget.
    Parked(Addr, u64),
}

impl RunSpec {
    /// The cycle budget regardless of drive mode.
    pub fn budget(self) -> u64 {
        match self {
            RunSpec::Run(b) | RunSpec::Parked(_, b) => b,
        }
    }

    /// The same drive mode with the cycle budget multiplied by `factor`
    /// (saturating). Non-ideal timing models stretch schedules, so budgets
    /// tuned for the ideal machine must stretch with them.
    pub fn scaled(self, factor: u64) -> RunSpec {
        match self {
            RunSpec::Run(b) => RunSpec::Run(b.saturating_mul(factor)),
            RunSpec::Parked(park, b) => RunSpec::Parked(park, b.saturating_mul(factor)),
        }
    }

    /// Runs `sim` on the interpreter per this spec.
    ///
    /// # Errors
    ///
    /// Propagates simulator machine checks.
    pub fn drive(
        self,
        sim: &mut ximd_sim::Xsim,
    ) -> Result<ximd_sim::RunSummary, ximd_sim::SimError> {
        match self {
            RunSpec::Run(b) => sim.run(b),
            RunSpec::Parked(park, b) => sim.run_until_parked(park, b),
        }
    }

    /// Runs `sim` on the decoded fast path per this spec.
    ///
    /// # Errors
    ///
    /// Propagates simulator machine checks.
    pub fn drive_decoded(
        self,
        sim: &mut ximd_sim::Xsim,
    ) -> Result<ximd_sim::RunSummary, ximd_sim::SimError> {
        match self {
            RunSpec::Run(b) => sim.run_decoded(b),
            RunSpec::Parked(park, b) => sim.run_decoded_until_parked(park, b),
        }
    }

    /// Runs a lane batch per this spec (every lane gets the same budget and
    /// park rule, matching what `drive_decoded` would apply per instance).
    ///
    /// # Errors
    ///
    /// Propagates simulator machine checks, attributed per lane.
    pub fn drive_lanes(
        self,
        lanes: &mut ximd_sim::LaneXsim,
    ) -> Result<ximd_sim::LaneRunSummary, ximd_sim::SimError> {
        match self {
            RunSpec::Run(b) => lanes.run(b),
            RunSpec::Parked(park, b) => lanes.run_until_parked(park, b),
        }
    }
}

/// Assembles independently prepared `(machine, spec)` instances of one
/// workload into a lane batch plus the drive spec that covers every lane:
/// the common drive mode with the largest budget.
///
/// # Example
///
/// Batch four bitcount instances with per-lane seeded data:
///
/// ```
/// use ximd_workloads::{bitcount, gen, lane_batch};
///
/// let prepared = (0..4)
///     .map(|lane| bitcount::prepared(&gen::bit_weighted_ints(lane, 16, 24)))
///     .collect::<Result<Vec<_>, _>>()?;
/// let (mut lanes, spec) = lane_batch(prepared)?;
/// spec.drive_lanes(&mut lanes)?;
/// assert!(lanes.all_done());
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
///
/// # Errors
///
/// [`ximd_sim::ConfigError::ZeroLanes`] for an empty batch,
/// [`ximd_sim::ConfigError::LaneMismatch`] if instances disagree on
/// program, configuration or drive mode (same-workload instances always
/// agree — the park address is part of the program's shape).
pub fn lane_batch(
    prepared: Vec<(ximd_sim::Xsim, RunSpec)>,
) -> Result<(ximd_sim::LaneXsim, RunSpec), ximd_sim::SimError> {
    let Some(&(_, first)) = prepared.first() else {
        return Err(ximd_sim::ConfigError::ZeroLanes.into());
    };
    let mut spec = first;
    for (lane, &(_, other)) in prepared.iter().enumerate().skip(1) {
        spec = match (spec, other) {
            (RunSpec::Run(a), RunSpec::Run(b)) => RunSpec::Run(a.max(b)),
            (RunSpec::Parked(park, a), RunSpec::Parked(other_park, b)) if park == other_park => {
                RunSpec::Parked(park, a.max(b))
            }
            _ => return Err(ximd_sim::ConfigError::LaneMismatch { lane }.into()),
        };
    }
    let sims: Vec<ximd_sim::Xsim> = prepared.into_iter().map(|(sim, _)| sim).collect();
    Ok((ximd_sim::LaneXsim::from_instances(&sims)?, spec))
}

/// Worst-case factor by which `timing` can stretch an ideal-machine
/// schedule on a `width`-wide machine: the longest class latency for a
/// latency table, the machine width for banked contention (every FU queued
/// on one bank), 1 for ideal.
pub fn timing_budget_factor(timing: &ximd_sim::TimingSpec, width: usize) -> u64 {
    match timing {
        ximd_sim::TimingSpec::Ideal => 1,
        ximd_sim::TimingSpec::Latency(cfg) => cfg.max_latency(),
        ximd_sim::TimingSpec::Banked { .. } => width.max(1) as u64,
    }
}

/// Re-times a prepared workload: swaps the machine onto `timing` and
/// stretches the cycle budget by the model's worst-case factor. Composes
/// with every module's `prepared` constructor:
///
/// ```
/// use ximd_sim::TimingSpec;
/// use ximd_workloads::{minmax, with_timing};
///
/// let spec = TimingSpec::parse("latency:mem=4").unwrap();
/// let (mut sim, run) = with_timing(minmax::prepared(&[5, 3, 4, 7])?, &spec)?;
/// assert!(run.drive(&mut sim)?.stats.stall_cycles > 0);
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
///
/// # Timing validity
///
/// Non-ideal models stall each FU independently, which skews the relative
/// arrival times of the streams. XIMD programs that synchronize *by cycle
/// counting* — the implicit barriers of percolation scheduling ([`tproc`],
/// [`minmax`], the XIMD forms of [`livermore`]) — still run, and their
/// stall counters are real, but their *results* are only meaningful under
/// ideal timing: the schedule's timing assumptions are part of the program.
/// Programs that synchronize explicitly through sync signals held at a
/// level (`ALL-SS`/`ANY-SS` spin loops), and every VLIW form (the single
/// sequencer stalls whole words, preserving lockstep), stay correct under
/// any model. For timed sweeps use those: [`minmax::run_vliw_timed`],
/// [`livermore::run_vliw_timed`], [`saxpy::run_timed`].
///
/// # Errors
///
/// Returns [`ximd_sim::SimError::Config`] for degenerate specs.
pub fn with_timing(
    prepared: (ximd_sim::Xsim, RunSpec),
    timing: &ximd_sim::TimingSpec,
) -> Result<(ximd_sim::Xsim, RunSpec), ximd_sim::SimError> {
    let (mut sim, spec) = prepared;
    sim.set_timing(timing)?;
    let factor = timing_budget_factor(timing, sim.config().width);
    Ok((sim, spec.scaled(factor)))
}

pub mod bitcount;
pub mod gen;
pub mod livermore;
pub mod livermore_ext;
pub mod minmax;
pub mod nonblocking;
pub mod race;
pub mod saxpy;
pub mod tproc;
