//! Seeded input generators for workload sweeps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `n` integers uniform in `lo..hi` from a fixed seed.
///
/// # Panics
///
/// Panics if `lo >= hi`.
///
/// # Example
///
/// ```
/// let a = ximd_workloads::gen::uniform_ints(42, 8, -10, 10);
/// let b = ximd_workloads::gen::uniform_ints(42, 8, -10, 10);
/// assert_eq!(a, b);
/// assert!(a.iter().all(|&v| (-10..10).contains(&v)));
/// ```
pub fn uniform_ints(seed: u64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    assert!(lo < hi, "empty range");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Generates `n` non-negative integers whose popcount is uniform-ish in
/// `0..=max_bits` — the natural input distribution for BITCOUNT, whose inner
/// loop runs once per value *and* once per set bit below the highest.
pub fn bit_weighted_ints(seed: u64, n: usize, max_bits: u32) -> Vec<i32> {
    assert!(max_bits <= 31, "must fit a non-negative i32");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let bits = rng.gen_range(0..=max_bits);
            let mut v: u32 = 0;
            for _ in 0..bits {
                v |= 1 << rng.gen_range(0..max_bits.max(1));
            }
            v as i32
        })
        .collect()
}

/// Generates the `Y` array (length `n + 1`) for Livermore Loop 12.
pub fn livermore_y(seed: u64, n: usize) -> Vec<i32> {
    uniform_ints(seed, n + 1, -1000, 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let a = uniform_ints(1, 100, 0, 50);
        assert_eq!(a, uniform_ints(1, 100, 0, 50));
        assert_ne!(a, uniform_ints(2, 100, 0, 50));
        assert!(a.iter().all(|&v| (0..50).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_empty_range() {
        uniform_ints(1, 1, 5, 5);
    }

    #[test]
    fn bit_weighted_values_are_non_negative() {
        let v = bit_weighted_ints(7, 200, 31);
        assert!(v.iter().all(|&x| x >= 0));
        // The distribution must actually produce varied popcounts.
        let counts: std::collections::HashSet<u32> =
            v.iter().map(|&x| (x as u32).count_ones()).collect();
        assert!(
            counts.len() > 5,
            "expected varied popcounts, got {counts:?}"
        );
    }

    #[test]
    fn livermore_y_has_n_plus_one_elements() {
        assert_eq!(livermore_y(3, 10).len(), 11);
    }
}
