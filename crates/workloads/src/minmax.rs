//! **MINMAX** — the paper's Example 2 and Figure 10.
//!
//! Searches an integer array for its minimum and maximum. Each loop
//! iteration contains two data-dependent conditional updates; a VLIW machine
//! must execute its branches one per cycle, while XIMD forks into three
//! SSETs (`{0,1}{2}{3}`) and performs both control operations in parallel,
//! rejoining one cycle later via equal-length paths ("implicit barrier
//! synchronization").
//!
//! ```fortran
//! max = minint
//! min = maxint
//! DO 99 k = 1,n
//!     IF (IZ(k).LT.min) min = IZ(k)
//!     IF (IZ(k).GT.max) max = IZ(k)
//! 99 CONTINUE
//! ```
//!
//! The module reproduces the published 4-FU listing address-for-address
//! (addresses `00:`–`05:`, `08:`–`0a:`, with the same gap) and provides
//! [`figure10_trace`], the expected 14-cycle address trace for the paper's
//! sample data set `IZ() = (5,3,4,7)`.

use ximd_asm::{assemble, Assembly};
use ximd_isa::{Addr, Reg, Value};
use ximd_sim::{
    MachineConfig, Partition, SimError, Trace, VliwInstruction, VliwProgram, Vsim, Xsim,
};

/// Word address of `IZ(1)` in simulator memory (the paper's constant `z`,
/// chosen so `M(z + k)` is element `k + 1` of the 0-based array we load).
pub const Z_BASE: i32 = 100;

/// Machine width of the published listing.
pub const WIDTH: usize = 4;

/// Register assignment.
pub const REG_K: Reg = Reg(0);
/// Loop bound `n`.
pub const REG_N: Reg = Reg(1);
/// `tn = n - 1`, the last index compared by the exit test.
pub const REG_TN: Reg = Reg(2);
/// The current element.
pub const REG_TZ: Reg = Reg(3);
/// Running minimum.
pub const REG_MIN: Reg = Reg(4);
/// Running maximum.
pub const REG_MAX: Reg = Reg(5);

/// Assembler source transcribing the paper's Example 2.
///
/// One notational deviation from the listing (noted in `DESIGN.md`): the
/// listing's `load #z,#k,tz` is written `load #z,k,tz` (`k` is a register).
/// The terminal self-loop at `0a:` is kept verbatim; runs park there and the
/// runner stops one cycle after every FU reaches [`PARK`]. With data
/// `(5,3,4,7)` the run spans exactly the 14 cycles of Figure 10.
pub const SOURCE: &str = r"
; MINMAX -- paper Example 2.
.width 4
.reg k r0
.reg n r1
.reg tn r2
.reg tz r3
.reg min r4
.reg max r5
.const z 100
00:
  fu0: load #z,#0,tz ; -> 01:
  fu1: iadd #1,#0,k  ; -> 01:
  fu2: lt n,#2       ; -> 01:
  fu3: iadd n,#0,tn  ; -> 01:
01:
  fu0: lt tz,#maxint ; if cc2 08: | 02:
  fu1: gt tz,#minint ; if cc2 08: | 02:
  fu2: nop           ; if cc2 08: | 02:
  fu3: isub tn,#1,tn ; if cc2 08: | 02:
02:
  fu0: nop           ; -> 03:
  fu1: nop           ; -> 03:
  fu2: eq k,tn       ; if cc0 04: | 03:
  fu3: nop           ; if cc1 04: | 03:
03:
  fu0: load #z,k,tz  ; -> 05:
  fu1: iadd #1,k,k   ; -> 05:
  fu2: nop           ; -> 05:
  fu3: nop           ; -> 05:
04:
  fu0: nop           ; -> 05:
  fu1: nop           ; -> 05:
  fu2: iadd tz,#0,min ; -> 05:
  fu3: iadd tz,#0,max ; -> 05:
05:
  fu0: lt tz,min     ; if cc2 08: | 02:
  fu1: gt tz,max     ; if cc2 08: | 02:
  fu2: nop           ; if cc2 08: | 02:
  fu3: nop           ; if cc2 08: | 02:
08:
  fu0: nop           ; -> 0a:
  fu1: nop           ; -> 0a:
  fu2: nop           ; if cc0 09: | 0a:
  fu3: nop           ; if cc1 09: | 0a:
09:
  fu0: nop           ; -> 0a:
  fu1: nop           ; -> 0a:
  fu2: iadd tz,#0,min ; -> 0a:
  fu3: iadd tz,#0,max ; -> 0a:
0a:
  all: nop ; -> 0a:
";

/// The parking address: the paper's terminal self-loop at `0a:`.
pub const PARK: Addr = Addr(0x0a);

/// Assembles the Example 2 program.
///
/// # Panics
///
/// Panics only if the embedded source is invalid (guarded by tests).
pub fn ximd_assembly() -> Assembly {
    assemble(SOURCE).expect("embedded MINMAX source is valid")
}

/// Outcome of a MINMAX run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The minimum found.
    pub min: i32,
    /// The maximum found.
    pub max: i32,
    /// Cycles the run took.
    pub cycles: u64,
}

/// Reference implementation.
///
/// # Panics
///
/// Panics on an empty slice (the paper's program requires `n >= 1`).
pub fn oracle(data: &[i32]) -> (i32, i32) {
    assert!(!data.is_empty(), "MINMAX requires n >= 1");
    (*data.iter().min().unwrap(), *data.iter().max().unwrap())
}

fn prepared_sim(data: &[i32]) -> Result<Xsim, SimError> {
    let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH))?;
    sim.mem_mut().poke_slice(Z_BASE as i64, data)?;
    sim.write_reg(REG_N, Value::I32(data.len() as i32));
    // The Fortran source's preamble (`max = minint; min = maxint`) is
    // assumed by the listing: the sentinel compares at 01: skip the update
    // only when the first element equals the corresponding extreme, which is
    // correct precisely because min/max start at those extremes.
    sim.write_reg(REG_MIN, Value::I32(i32::MAX));
    sim.write_reg(REG_MAX, Value::I32(i32::MIN));
    Ok(sim)
}

/// A seeded, ready-to-run MINMAX instance and how to drive it (the paper's
/// listing parks on a terminal self-loop rather than halting).
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn prepared(data: &[i32]) -> Result<(Xsim, crate::RunSpec), SimError> {
    assert!(!data.is_empty(), "MINMAX requires n >= 1");
    let sim = prepared_sim(data)?;
    Ok((
        sim,
        crate::RunSpec::Parked(PARK, 16 + 8 * data.len() as u64),
    ))
}

/// Runs MINMAX on xsim.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn run_ximd(data: &[i32]) -> Result<Outcome, SimError> {
    assert!(!data.is_empty(), "MINMAX requires n >= 1");
    let mut sim = prepared_sim(data)?;
    let summary = sim.run_until_parked(PARK, 16 + 8 * data.len() as u64)?;
    Ok(Outcome {
        min: sim.reg(REG_MIN).as_i32(),
        max: sim.reg(REG_MAX).as_i32(),
        cycles: summary.cycles,
    })
}

/// Runs MINMAX on xsim with tracing enabled and returns the trace too.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn run_ximd_traced(data: &[i32]) -> Result<(Outcome, Trace), SimError> {
    assert!(!data.is_empty(), "MINMAX requires n >= 1");
    let mut sim = prepared_sim(data)?;
    sim.enable_trace();
    let summary = sim.run_until_parked(PARK, 16 + 8 * data.len() as u64)?;
    let outcome = Outcome {
        min: sim.reg(REG_MIN).as_i32(),
        max: sim.reg(REG_MAX).as_i32(),
        cycles: summary.cycles,
    };
    Ok((outcome, sim.trace().expect("tracing enabled").clone()))
}

/// The expected Figure 10 trace for `IZ() = (5,3,4,7)`: per cycle, the four
/// PCs, the condition codes (`X`/`T`/`F` as printed in the paper) and the
/// partition.
///
/// The published table contains two OCR-garbled condition-code cells
/// (`FITX`); the values here are the machine-consistent readings (`FTTX`),
/// cross-checked against the branch outcomes the same table reports.
pub fn figure10_trace() -> Vec<(u64, [u32; 4], &'static str, &'static str)> {
    vec![
        (0, [0x00, 0x00, 0x00, 0x00], "XXXX", "{0,1,2,3}"),
        (1, [0x01, 0x01, 0x01, 0x01], "XXFX", "{0,1,2,3}"),
        (2, [0x02, 0x02, 0x02, 0x02], "TTFX", "{0,1,2,3}"),
        (3, [0x03, 0x03, 0x04, 0x04], "TTFX", "{0,1}{2}{3}"),
        (4, [0x05, 0x05, 0x05, 0x05], "TTFX", "{0,1,2,3}"),
        (5, [0x02, 0x02, 0x02, 0x02], "TFFX", "{0,1,2,3}"),
        (6, [0x03, 0x03, 0x04, 0x03], "TFFX", "{0,1}{2}{3}"),
        (7, [0x05, 0x05, 0x05, 0x05], "TFFX", "{0,1,2,3}"),
        (8, [0x02, 0x02, 0x02, 0x02], "FFFX", "{0,1,2,3}"),
        (9, [0x03, 0x03, 0x03, 0x03], "FFTX", "{0,1}{2}{3}"),
        (10, [0x05, 0x05, 0x05, 0x05], "FFTX", "{0,1,2,3}"),
        (11, [0x08, 0x08, 0x08, 0x08], "FTTX", "{0,1,2,3}"),
        (12, [0x0a, 0x0a, 0x0a, 0x09], "FTTX", "{0,1}{2}{3}"),
        (13, [0x0a, 0x0a, 0x0a, 0x0a], "FTTX", "{0,1,2,3}"),
    ]
}

/// Builds the best single-control-stream (VLIW) schedule of MINMAX for the
/// vsim baseline.
///
/// Per iteration: one word for load + exit test, one for both compares and
/// the index increment, then the two conditional updates serialized through
/// the single sequencer (2–4 words depending on the data). This is the
/// structural handicap §1.3 describes: "only one control operation can be
/// executed each cycle".
pub fn vliw_program() -> VliwProgram {
    use ximd_isa::{AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, UnOp};

    let k = REG_K;
    let n = REG_N;
    let tz = REG_TZ;
    let min = REG_MIN;
    let max = REG_MAX;
    let zero = Operand::imm_i32(0);
    let z = Operand::imm_i32(Z_BASE);

    let mut p = VliwProgram::new(WIDTH);
    let nop = DataOp::Nop;
    // 00: tz = M(z+0); k = 1; min = maxint; max = minint          -> 01
    p.push(VliwInstruction {
        ops: vec![
            DataOp::load(z, zero, tz),
            DataOp::alu(AluOp::Iadd, Operand::imm_i32(1), zero, k),
            DataOp::un(UnOp::Mov, Operand::imm_i32(i32::MAX), min),
            DataOp::un(UnOp::Mov, Operand::imm_i32(i32::MIN), max),
        ],
        ctrl: ControlOp::Goto(Addr(1)),
    });
    // 01: cc0 = tz < min; cc1 = tz > max; cc3 = (k == n); k += 1  -> 02
    p.push(VliwInstruction {
        ops: vec![
            DataOp::cmp(CmpOp::Lt, Operand::Reg(tz), Operand::Reg(min)),
            DataOp::cmp(CmpOp::Gt, Operand::Reg(tz), Operand::Reg(max)),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), zero, Reg(6)), // kprev
            DataOp::cmp(CmpOp::Eq, Operand::Reg(k), Operand::Reg(n)),
        ],
        ctrl: ControlOp::Goto(Addr(2)),
    });
    // 02: k += 1; tz2 = M(z + kprev) prefetch next; if cc0 -> 03 (update min) else 04
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), Operand::imm_i32(1), k),
            DataOp::load(z, Operand::Reg(Reg(6)), Reg(7)), // next element
            nop,
            nop,
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(0)), Addr(3), Addr(4)),
    });
    // 03: min = tz; if cc1 -> 05 else 06
    p.push(VliwInstruction {
        ops: vec![DataOp::un(UnOp::Mov, Operand::Reg(tz), min), nop, nop, nop],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(1)), Addr(5), Addr(6)),
    });
    // 04: (no min update); if cc1 -> 05 else 06
    p.push(VliwInstruction {
        ops: vec![nop; 4],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(1)), Addr(5), Addr(6)),
    });
    // 05: max = tz; -> 06
    p.push(VliwInstruction {
        ops: vec![DataOp::un(UnOp::Mov, Operand::Reg(tz), max), nop, nop, nop],
        ctrl: ControlOp::Goto(Addr(6)),
    });
    // 06: tz = next; if cc3 (k reached n) -> 07 halt else 01
    p.push(VliwInstruction {
        ops: vec![
            DataOp::un(UnOp::Mov, Operand::Reg(Reg(7)), tz),
            nop,
            nop,
            nop,
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(3)), Addr(7), Addr(1)),
    });
    // 07: halt
    p.push(VliwInstruction::halt(WIDTH));
    p
}

/// Runs MINMAX on the VLIW baseline.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn run_vliw(data: &[i32]) -> Result<Outcome, SimError> {
    run_vliw_timed(data, &ximd_sim::TimingSpec::Ideal).map(|(out, _)| out)
}

/// Runs the MINMAX VLIW baseline under an explicit timing model. The single
/// sequencer stalls whole instruction words, so lockstep — and therefore
/// the computed min/max — survives any timing model (unlike the XIMD form,
/// whose implicit cycle-counted barriers assume ideal timing).
///
/// # Errors
///
/// Propagates configuration and simulator machine checks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn run_vliw_timed(
    data: &[i32],
    timing: &ximd_sim::TimingSpec,
) -> Result<(Outcome, ximd_sim::RunSummary), SimError> {
    assert!(!data.is_empty(), "MINMAX requires n >= 1");
    let mut sim = Vsim::new(vliw_program(), MachineConfig::with_width(WIDTH))?;
    sim.set_timing(timing)?;
    sim.mem_mut().poke_slice(Z_BASE as i64, data)?;
    sim.write_reg(REG_N, Value::I32(data.len() as i32));
    let budget =
        (16 + 16 * data.len() as u64).saturating_mul(crate::timing_budget_factor(timing, WIDTH));
    let summary = sim.run(budget)?;
    let outcome = Outcome {
        min: sim.reg(REG_MIN).as_i32(),
        max: sim.reg(REG_MAX).as_i32(),
        cycles: summary.cycles,
    };
    Ok((outcome, summary))
}

/// Checks a captured trace against [`figure10_trace`], returning the first
/// mismatch as `(cycle, expected, actual)`.
pub fn diff_figure10(trace: &Trace) -> Option<(u64, String, String)> {
    let expected = figure10_trace();
    if trace.rows().len() != expected.len() {
        return Some((
            trace.rows().len() as u64,
            format!("{} rows", expected.len()),
            format!("{} rows", trace.rows().len()),
        ));
    }
    for ((cycle, pcs, ccs, part), row) in expected.into_iter().zip(trace.rows()) {
        let actual_pcs: Vec<Option<Addr>> = row.pcs.clone();
        let expect_pcs: Vec<Option<Addr>> = pcs.iter().map(|&a| Some(Addr(a))).collect();
        let exp = format!("pcs {pcs:02x?} cc {ccs} part {part}");
        let act = format!(
            "pcs {:02x?} cc {} part {}",
            actual_pcs
                .iter()
                .map(|a| a.map(|x| x.0).unwrap_or(u32::MAX))
                .collect::<Vec<_>>(),
            row.cc_string(),
            row.partition
        );
        if row.cycle != cycle
            || actual_pcs != expect_pcs
            || row.cc_string() != ccs
            || row.partition.to_string() != part
        {
            return Some((cycle, exp, act));
        }
    }
    None
}

/// Convenience: partition sequence of a traced run (Figure 10's rightmost
/// column).
pub fn partitions(trace: &Trace) -> Vec<Partition> {
    trace.partitions().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure10_exactly() {
        let (outcome, trace) = run_ximd_traced(&[5, 3, 4, 7]).unwrap();
        assert_eq!((outcome.min, outcome.max), (3, 7));
        assert_eq!(outcome.cycles, 14, "Figure 10 spans cycles 0..=13");
        if let Some((cycle, expected, actual)) = diff_figure10(&trace) {
            panic!("figure 10 mismatch at cycle {cycle}:\n  expected {expected}\n  actual   {actual}\n{trace}");
        }
    }

    #[test]
    fn matches_oracle_on_varied_data() {
        let cases: Vec<Vec<i32>> = vec![
            vec![5, 3, 4, 7],
            vec![1],
            vec![2, 2, 2, 2, 2],
            vec![-5, 10, -15, 20, 0, 3],
            vec![i32::MIN + 1, 0, i32::MAX - 1],
            (0..40).map(|i| (i * 37) % 100 - 50).collect(),
        ];
        for data in cases {
            let out = run_ximd(&data).unwrap();
            assert_eq!((out.min, out.max), oracle(&data), "data {data:?}");
        }
    }

    #[test]
    fn vliw_baseline_matches_oracle() {
        for data in [vec![5, 3, 4, 7], vec![9], vec![3, 1, 4, 1, 5, 9, 2, 6]] {
            let out = run_vliw(&data).unwrap();
            assert_eq!((out.min, out.max), oracle(&data), "data {data:?}");
        }
    }

    #[test]
    fn ximd_beats_vliw_on_long_arrays() {
        let data = crate::gen::uniform_ints(11, 64, -1000, 1000);
        let x = run_ximd(&data).unwrap();
        let v = run_vliw(&data).unwrap();
        assert_eq!((x.min, x.max), (v.min, v.max));
        assert!(
            x.cycles < v.cycles,
            "XIMD ({}) should beat VLIW ({}) by parallelizing the two branches",
            x.cycles,
            v.cycles
        );
    }

    #[test]
    fn forks_into_three_streams_each_iteration() {
        let (_, trace) = run_ximd_traced(&[5, 3, 4, 7]).unwrap();
        assert_eq!(trace.max_streams(), 3);
        // Forked exactly on the update cycles (3, 6, 9, 12 per Figure 10).
        let forked: Vec<u64> = trace
            .rows()
            .iter()
            .filter(|r| r.partition.num_ssets() == 3)
            .map(|r| r.cycle)
            .collect();
        assert_eq!(forked, vec![3, 6, 9, 12]);
    }

    #[test]
    fn extreme_sentinel_values_are_handled() {
        // First element equal to maxint: the lt-maxint compare is false, so
        // the 04: update is skipped — correct only because min starts at
        // maxint (the Fortran preamble).
        let data = [i32::MAX, 4, 9];
        let out = run_ximd(&data).unwrap();
        assert_eq!((out.min, out.max), (4, i32::MAX));
        let low = [i32::MIN, -4];
        let out = run_ximd(&low).unwrap();
        assert_eq!((out.min, out.max), (i32::MIN, -4));
    }
}
