//! **TPROC** — the paper's Example 1.
//!
//! A small scalar procedure compiled by a Percolation Scheduling compiler
//! into a 5-instruction, 4-FU VLIW-style schedule. The paper uses it to show
//! that VLIW code runs unchanged on XIMD once the control fields are
//! duplicated into every parcel.
//!
//! ```c
//! tproc(a, b, c, d) {
//!     int e, f, g;
//!     e = a + b;
//!     f = e + c * a;
//!     g = a - (b + c);
//!     e = d - e;
//!     return (a + b + c) + d + e + (f + g);
//! }
//! ```

use ximd_asm::{assemble, Assembly};
use ximd_isa::{Reg, Value};
use ximd_sim::{MachineConfig, SimError, VliwProgram, Vsim, Xsim};

/// Register assignment used by the schedule (`a`..`g` of the source).
pub const REGS: [(&str, Reg); 7] = [
    ("a", Reg(0)),
    ("b", Reg(1)),
    ("c", Reg(2)),
    ("d", Reg(3)),
    ("e", Reg(4)),
    ("f", Reg(5)),
    ("g", Reg(6)),
];

/// The result register (`f` holds the return value after the last cycle).
pub const RESULT: Reg = Reg(5);

/// Machine width of the published schedule.
pub const WIDTH: usize = 4;

/// Assembler source transcribing the paper's Example 1 schedule.
///
/// The listing's five instructions are reproduced verbatim (operation
/// placement and all); a halt word is appended so the simulator terminates.
pub const SOURCE: &str = r"
; TPROC -- paper Example 1 (Percolation Scheduling output).
.width 4
.reg a r0
.reg b r1
.reg c r2
.reg d r3
.reg e r4
.reg f r5
.reg g r6
00:
  fu0: iadd a,b,e  ; -> 01:
  fu1: imult c,a,f ; -> 01:
  fu2: iadd c,b,g  ; -> 01:
  fu3: nop         ; -> 01:
01:
  fu0: iadd f,e,f  ; -> 02:
  fu1: isub a,g,g  ; -> 02:
  fu2: iadd e,c,a  ; -> 02:
  fu3: isub d,e,e  ; -> 02:
02:
  fu0: iadd a,d,a  ; -> 03:
  fu1: iadd f,g,g  ; -> 03:
  fu2: nop         ; -> 03:
  fu3: nop         ; -> 03:
03:
  all: nop         ; -> 04:
  fu0: iadd a,e,a  ; -> 04:
04:
  fu0: iadd a,g,f  ; -> 05:
  fu1: nop         ; -> 05:
  fu2: nop         ; -> 05:
  fu3: nop         ; -> 05:
05:
  all: nop ; halt
";

/// Assembles the Example 1 program.
///
/// # Panics
///
/// Panics only if the embedded source is invalid, which the test suite
/// guards against.
pub fn ximd_assembly() -> Assembly {
    assemble(SOURCE).expect("embedded TPROC source is valid")
}

/// The same schedule as a VLIW program (one control op per word).
pub fn vliw_program() -> VliwProgram {
    VliwProgram::from_ximd(&ximd_assembly().program)
        .expect("TPROC is VLIW-style: every parcel shares the word's control op")
}

/// Reference implementation of the source procedure.
pub fn oracle(a: i32, b: i32, c: i32, d: i32) -> i32 {
    let e = a.wrapping_add(b);
    let f = e.wrapping_add(c.wrapping_mul(a));
    let g = a.wrapping_sub(b.wrapping_add(c));
    let e = d.wrapping_sub(e);
    a.wrapping_add(b)
        .wrapping_add(c)
        .wrapping_add(d)
        .wrapping_add(e)
        .wrapping_add(f.wrapping_add(g))
}

/// Outcome of a TPROC run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The procedure's return value.
    pub result: i32,
    /// Cycles the run took.
    pub cycles: u64,
}

fn seed_regs(write: &mut dyn FnMut(Reg, Value), a: i32, b: i32, c: i32, d: i32) {
    for (name, reg) in REGS {
        let v = match name {
            "a" => a,
            "b" => b,
            "c" => c,
            "d" => d,
            _ => 0,
        };
        write(reg, Value::I32(v));
    }
}

/// A seeded, ready-to-run TPROC instance and how to drive it.
///
/// # Errors
///
/// Propagates simulator machine checks.
pub fn prepared(a: i32, b: i32, c: i32, d: i32) -> Result<(Xsim, crate::RunSpec), SimError> {
    let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH))?;
    seed_regs(&mut |r, v| sim.write_reg(r, v), a, b, c, d);
    Ok((sim, crate::RunSpec::Run(100)))
}

/// Runs TPROC on xsim.
///
/// # Errors
///
/// Propagates simulator machine checks (none occur for the published
/// schedule).
pub fn run_ximd(a: i32, b: i32, c: i32, d: i32) -> Result<Outcome, SimError> {
    let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH))?;
    seed_regs(&mut |r, v| sim.write_reg(r, v), a, b, c, d);
    let summary = sim.run(100)?;
    Ok(Outcome {
        result: sim.reg(RESULT).as_i32(),
        cycles: summary.cycles,
    })
}

/// Runs TPROC on the VLIW baseline (vsim).
///
/// # Errors
///
/// Propagates simulator machine checks.
pub fn run_vliw(a: i32, b: i32, c: i32, d: i32) -> Result<Outcome, SimError> {
    let mut sim = Vsim::new(vliw_program(), MachineConfig::with_width(WIDTH))?;
    seed_regs(&mut |r, v| sim.write_reg(r, v), a, b, c, d);
    let summary = sim.run(100)?;
    Ok(Outcome {
        result: sim.reg(RESULT).as_i32(),
        cycles: summary.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_five_instructions_plus_halt() {
        let asm = ximd_assembly();
        assert_eq!(asm.program.len(), 6);
        assert_eq!(asm.program.width(), 4);
    }

    #[test]
    fn matches_oracle_on_paper_style_inputs() {
        for (a, b, c, d) in [
            (1, 2, 3, 4),
            (0, 0, 0, 0),
            (-5, 7, 11, -13),
            (100, -200, 300, -400),
        ] {
            let out = run_ximd(a, b, c, d).unwrap();
            assert_eq!(out.result, oracle(a, b, c, d), "tproc({a},{b},{c},{d})");
        }
    }

    #[test]
    fn takes_six_cycles() {
        // Five scheduled instructions + the terminating halt word.
        let out = run_ximd(1, 2, 3, 4).unwrap();
        assert_eq!(out.cycles, 6);
    }

    #[test]
    fn vliw_and_ximd_agree_exactly() {
        for (a, b, c, d) in [(3, 1, 4, 1), (-9, 2, 6, 5)] {
            let x = run_ximd(a, b, c, d).unwrap();
            let v = run_vliw(a, b, c, d).unwrap();
            assert_eq!(
                x, v,
                "VLIW-style code must behave identically on both machines"
            );
        }
    }

    #[test]
    fn never_forks() {
        let mut sim = Xsim::new(ximd_assembly().program, MachineConfig::with_width(WIDTH)).unwrap();
        sim.enable_trace();
        sim.run(100).unwrap();
        assert_eq!(sim.stats().max_concurrent_streams, 1);
    }

    #[test]
    fn oracle_spot_checks() {
        // Hand-computed: a=1,b=2,c=3,d=4 -> e=3, f=3+3=6, g=1-5=-4, e=4-3=1,
        // result = (1+2+3)+4+1+(6-4) = 13.
        assert_eq!(oracle(1, 2, 3, 4), 13);
        assert_eq!(oracle(0, 0, 0, 0), 0);
    }
}
