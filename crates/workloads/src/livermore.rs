//! **Livermore Loop 12** — first difference (paper §3.1).
//!
//! ```fortran
//! DO 12 k = 1,n
//! 12  X(k) = Y(k+1) - Y(k)
//! ```
//!
//! The paper cites this loop as the canonical *fully synchronous* workload:
//! software pipelining schedules multiple iterations in parallel, and the
//! resulting VLIW-style code "can then execute just as efficiently on the
//! XIMD as on a VLIW machine". The schedule below is a modulo schedule with
//! initiation interval II = 2 on 4 FUs: each steady-state iteration issues
//! two loads, the subtract, the store of the previous iteration, the address
//! computation, the exit test and the index increment — 7 operations in 8
//! slots.
//!
//! Because every parcel in a word shares one control operation, the same
//! program runs on both xsim and vsim, and the module's tests assert
//! cycle-for-cycle equality — the paper's claim verified mechanically.

use ximd_isa::{Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Reg};
use ximd_sim::{MachineConfig, SimError, VliwInstruction, VliwProgram, Vsim, Xsim};

/// Word address of `Y[1]` minus one (`M(Y0 + k) = Y[k]`, 1-based).
pub const Y_BASE: i32 = 2999;
/// Word address of `X[1]` minus one.
pub const X_BASE: i32 = 4999;
/// Machine width of the schedule.
pub const WIDTH: usize = 4;

/// Loop index `k`.
pub const REG_K: Reg = Reg(0);
/// Iteration count `n`.
pub const REG_N: Reg = Reg(1);
const REG_A: Reg = Reg(2); // Y[k]
const REG_B: Reg = Reg(3); // Y[k+1]
const REG_X: Reg = Reg(4); // current difference
const REG_XA: Reg = Reg(5); // store address being computed
const REG_XAP: Reg = Reg(6); // store address one stage behind

/// Builds the software-pipelined VLIW program.
///
/// Layout: `0` prologue-init, `1`–`2` prologue stage (no store yet),
/// `3`–`4` the II=2 steady-state kernel, `5` epilogue store, `6` halt.
pub fn vliw_program() -> VliwProgram {
    let zero = Operand::imm_i32(0);
    let one = Operand::imm_i32(1);
    let y0 = Operand::imm_i32(Y_BASE);
    let y1 = Operand::imm_i32(Y_BASE + 1);
    let x0 = Operand::imm_i32(X_BASE);
    let nop = DataOp::Nop;
    let (k, n, a, b, x, xa, xap) = (REG_K, REG_N, REG_A, REG_B, REG_X, REG_XA, REG_XAP);

    let mut p = VliwProgram::new(WIDTH);
    // 0: k = 1                                                     -> 1
    p.push(VliwInstruction {
        ops: vec![DataOp::alu(AluOp::Iadd, one, zero, k), nop, nop, nop],
        ctrl: ControlOp::Goto(Addr(1)),
    });
    // 1 (prologue, even stage): a = Y[k]; b = Y[k+1]; xa = X0 + k; cc3 = (k == n)
    p.push(VliwInstruction {
        ops: vec![
            DataOp::load(y0, Operand::Reg(k), a),
            DataOp::load(y1, Operand::Reg(k), b),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), x0, xa),
            DataOp::cmp(CmpOp::Eq, Operand::Reg(k), Operand::Reg(n)),
        ],
        ctrl: ControlOp::Goto(Addr(2)),
    });
    // 2 (prologue, odd stage): x = b - a; k += 1; xap = xa;  exit if cc3
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Isub, Operand::Reg(b), Operand::Reg(a), x),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), one, k),
            nop,
            DataOp::alu(AluOp::Iadd, Operand::Reg(xa), zero, xap),
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(3)), Addr(5), Addr(3)),
    });
    // 3 (kernel, even): loads + address + exit test, while the previous
    //    difference is still in flight.
    p.push(VliwInstruction {
        ops: vec![
            DataOp::load(y0, Operand::Reg(k), a),
            DataOp::load(y1, Operand::Reg(k), b),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), x0, xa),
            DataOp::cmp(CmpOp::Eq, Operand::Reg(k), Operand::Reg(n)),
        ],
        ctrl: ControlOp::Goto(Addr(4)),
    });
    // 4 (kernel, odd): subtract this iteration; store the previous one.
    p.push(VliwInstruction {
        ops: vec![
            DataOp::alu(AluOp::Isub, Operand::Reg(b), Operand::Reg(a), x),
            DataOp::alu(AluOp::Iadd, Operand::Reg(k), one, k),
            DataOp::store(Operand::Reg(x), Operand::Reg(xap)),
            DataOp::alu(AluOp::Iadd, Operand::Reg(xa), zero, xap),
        ],
        ctrl: ControlOp::branch(CondSource::Cc(FuId(3)), Addr(5), Addr(3)),
    });
    // 5 (epilogue): store the final difference.
    p.push(VliwInstruction {
        ops: vec![
            nop,
            nop,
            DataOp::store(Operand::Reg(x), Operand::Reg(xap)),
            nop,
        ],
        ctrl: ControlOp::Goto(Addr(6)),
    });
    // 6: halt.
    p.push(VliwInstruction::halt(WIDTH));
    p
}

/// The same schedule lowered to XIMD (control fields duplicated per §3.1).
pub fn ximd_program() -> ximd_isa::Program {
    vliw_program().to_ximd()
}

/// Reference implementation: `X[k] = Y[k+1] - Y[k]`, `y.len() == n + 1`.
pub fn oracle(y: &[i32]) -> Vec<i32> {
    y.windows(2).map(|w| w[1].wrapping_sub(w[0])).collect()
}

/// Outcome of a Loop 12 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// `X[1..=n]`.
    pub x: Vec<i32>,
    /// Cycles the run took.
    pub cycles: u64,
}

/// A seeded, ready-to-run Loop 12 instance and how to drive it.
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics if `y` has fewer than 2 elements (`n >= 1` required).
pub fn prepared(y: &[i32]) -> Result<(Xsim, crate::RunSpec), SimError> {
    assert!(
        y.len() >= 2,
        "loop 12 requires n >= 1 (y has n + 1 elements)"
    );
    let n = y.len() - 1;
    let mut sim = Xsim::new(ximd_program(), MachineConfig::with_width(WIDTH))?;
    sim.mem_mut().poke_slice(Y_BASE as i64 + 1, y)?;
    sim.write_reg(REG_N, (n as i32).into());
    Ok((sim, crate::RunSpec::Run(20 + 4 * n as u64)))
}

/// Runs Loop 12 on xsim (XIMD form).
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics if `y` has fewer than 2 elements (`n >= 1` required).
pub fn run_ximd(y: &[i32]) -> Result<Outcome, SimError> {
    assert!(
        y.len() >= 2,
        "loop 12 requires n >= 1 (y has n + 1 elements)"
    );
    let n = y.len() - 1;
    let mut sim = Xsim::new(ximd_program(), MachineConfig::with_width(WIDTH))?;
    sim.mem_mut().poke_slice(Y_BASE as i64 + 1, y)?;
    sim.write_reg(REG_N, (n as i32).into());
    let summary = sim.run(20 + 4 * n as u64)?;
    Ok(Outcome {
        x: sim.mem().peek_slice(X_BASE as i64 + 1, n)?,
        cycles: summary.cycles,
    })
}

/// Runs Loop 12 on vsim (VLIW form).
///
/// # Errors
///
/// Propagates simulator machine checks.
///
/// # Panics
///
/// Panics if `y` has fewer than 2 elements.
pub fn run_vliw(y: &[i32]) -> Result<Outcome, SimError> {
    run_vliw_timed(y, &ximd_sim::TimingSpec::Ideal).map(|(out, _)| out)
}

/// Runs the Loop 12 VLIW form under an explicit timing model. Whole-word
/// stalling preserves the software pipeline's lockstep, so results stay
/// correct while the schedule stretches.
///
/// # Errors
///
/// Propagates configuration and simulator machine checks.
///
/// # Panics
///
/// Panics if `y` has fewer than 2 elements.
pub fn run_vliw_timed(
    y: &[i32],
    timing: &ximd_sim::TimingSpec,
) -> Result<(Outcome, ximd_sim::RunSummary), SimError> {
    assert!(
        y.len() >= 2,
        "loop 12 requires n >= 1 (y has n + 1 elements)"
    );
    let n = y.len() - 1;
    let mut sim = Vsim::new(vliw_program(), MachineConfig::with_width(WIDTH))?;
    sim.set_timing(timing)?;
    sim.mem_mut().poke_slice(Y_BASE as i64 + 1, y)?;
    sim.write_reg(REG_N, (n as i32).into());
    let budget = (20 + 4 * n as u64).saturating_mul(crate::timing_budget_factor(timing, WIDTH));
    let summary = sim.run(budget)?;
    let outcome = Outcome {
        x: sim.mem().peek_slice(X_BASE as i64 + 1, n)?,
        cycles: summary.cycles,
    };
    Ok((outcome, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::livermore_y;

    #[test]
    fn matches_oracle() {
        for n in [1usize, 2, 3, 7, 32, 101] {
            let y = livermore_y(n as u64, n);
            let out = run_ximd(&y).unwrap();
            assert_eq!(out.x, oracle(&y), "n = {n}");
        }
    }

    #[test]
    fn vliw_form_matches_oracle() {
        let y = livermore_y(9, 25);
        let out = run_vliw(&y).unwrap();
        assert_eq!(out.x, oracle(&y));
    }

    #[test]
    fn ximd_and_vliw_are_cycle_identical() {
        // §3.1: synchronous code runs "just as efficiently on the XIMD as
        // on a VLIW machine" — here, exactly as efficiently.
        for n in [1usize, 5, 40] {
            let y = livermore_y(n as u64 + 100, n);
            let x = run_ximd(&y).unwrap();
            let v = run_vliw(&y).unwrap();
            assert_eq!(x, v, "n = {n}");
        }
    }

    #[test]
    fn steady_state_ii_is_two() {
        // Cycles grow by ~2 per extra iteration once in steady state.
        let y64 = livermore_y(1, 64);
        let y65 = livermore_y(1, 65); // same prefix irrelevant; count matters
        let c64 = run_ximd(&y64).unwrap().cycles;
        let c65 = run_ximd(&y65).unwrap().cycles;
        assert_eq!(c65 - c64, 2, "initiation interval should be 2");
    }

    #[test]
    fn single_iteration_uses_epilogue_path() {
        let y = vec![10, 17];
        let out = run_ximd(&y).unwrap();
        assert_eq!(out.x, vec![7]);
    }

    #[test]
    fn never_forks_on_ximd() {
        let y = livermore_y(2, 16);
        let mut sim = Xsim::new(ximd_program(), MachineConfig::with_width(WIDTH)).unwrap();
        sim.mem_mut().poke_slice(Y_BASE as i64 + 1, &y).unwrap();
        sim.write_reg(REG_N, 16i32.into());
        sim.run(1000).unwrap();
        assert_eq!(sim.stats().max_concurrent_streams, 1);
    }

    #[test]
    fn oracle_definition() {
        assert_eq!(oracle(&[1, 4, 9, 16]), vec![3, 5, 7]);
    }
}
