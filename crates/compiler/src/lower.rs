//! AST → IR lowering.

use std::collections::HashMap;

use ximd_isa::UnOp;

use crate::error::CompileError;
use crate::ir::{Block, BlockId, Function, Inst, Terminator, VReg, Val};
use crate::lang::{Expr, FnDef, Stmt};

struct Lowerer {
    func: Function,
    vars: Vec<HashMap<String, VReg>>,
    current: BlockId,
}

impl Lowerer {
    fn new(def: &FnDef) -> Lowerer {
        let mut func = Function {
            name: def.name.clone(),
            params: Vec::new(),
            blocks: vec![Block {
                insts: Vec::new(),
                term: Terminator::Return(None),
            }],
            entry: BlockId(0),
            vreg_count: 0,
        };
        let mut scope = HashMap::new();
        for p in &def.params {
            let r = func.new_vreg();
            func.params.push(r);
            scope.insert(p.clone(), r);
        }
        Lowerer {
            func,
            vars: vec![scope],
            current: BlockId(0),
        }
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len());
        self.func.blocks.push(Block {
            insts: Vec::new(),
            term: Terminator::Return(None),
        });
        id
    }

    fn emit(&mut self, inst: Inst) {
        self.func.block_mut(self.current).insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        self.func.block_mut(self.current).term = term;
    }

    fn lookup(&self, name: &str) -> Result<VReg, CompileError> {
        self.vars
            .iter()
            .rev()
            .find_map(|s| s.get(name).copied())
            .ok_or_else(|| CompileError::Semantic(format!("undefined variable {name:?}")))
    }

    fn expr(&mut self, e: &Expr) -> Result<Val, CompileError> {
        Ok(match e {
            Expr::Int(v) => Val::Const(*v),
            Expr::Var(name) => Val::Reg(self.lookup(name)?),
            Expr::Mem(addr) => {
                let a = self.expr(addr)?;
                let d = self.func.new_vreg();
                self.emit(Inst::Load {
                    base: a,
                    off: Val::Const(0),
                    d,
                });
                Val::Reg(d)
            }
            Expr::Bin(op, l, r) => {
                let a = self.expr(l)?;
                let b = self.expr(r)?;
                // Constant folding for the common literal-only cases.
                if let (Val::Const(ca), Val::Const(cb)) = (a, b) {
                    if let Ok(v) = op.eval(ca.into(), cb.into()) {
                        return Ok(Val::Const(v.as_i32()));
                    }
                }
                let d = self.func.new_vreg();
                self.emit(Inst::Bin { op: *op, a, b, d });
                Val::Reg(d)
            }
            Expr::Neg(inner) => {
                let a = self.expr(inner)?;
                if let Val::Const(c) = a {
                    return Ok(Val::Const(c.wrapping_neg()));
                }
                let d = self.func.new_vreg();
                self.emit(Inst::Un {
                    op: UnOp::Ineg,
                    a,
                    d,
                });
                Val::Reg(d)
            }
        })
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<bool, CompileError> {
        self.vars.push(HashMap::new());
        let mut terminated = false;
        for stmt in body {
            if terminated {
                // Unreachable code after return: ignore, C-style.
                break;
            }
            terminated = self.stmt(stmt)?;
        }
        self.vars.pop();
        Ok(terminated)
    }

    /// Lowers one statement; returns `true` if it terminated the block with
    /// a return.
    fn stmt(&mut self, stmt: &Stmt) -> Result<bool, CompileError> {
        match stmt {
            Stmt::Let(name, e) => {
                let v = self.expr(e)?;
                let d = self.func.new_vreg();
                self.emit(Inst::Copy { a: v, d });
                self.vars
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), d);
                Ok(false)
            }
            Stmt::Assign(name, e) => {
                let v = self.expr(e)?;
                let d = self.lookup(name)?;
                self.emit(Inst::Copy { a: v, d });
                Ok(false)
            }
            Stmt::MemStore(addr, value) => {
                let a = self.expr(addr)?;
                let v = self.expr(value)?;
                self.emit(Inst::Store { val: v, addr: a });
                Ok(false)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                self.terminate(Terminator::Return(v));
                Ok(true)
            }
            Stmt::If(cond, then_body, else_body) => {
                let a = self.expr(&cond.a)?;
                let b = self.expr(&cond.b)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::Branch {
                    op: cond.op,
                    a,
                    b,
                    then_bb,
                    else_bb,
                });

                self.current = then_bb;
                if !self.stmts(then_body)? {
                    self.terminate(Terminator::Goto(join));
                }
                self.current = else_bb;
                if !self.stmts(else_body)? {
                    self.terminate(Terminator::Goto(join));
                }
                self.current = join;
                Ok(false)
            }
            Stmt::While(cond, body) => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Goto(head));

                self.current = head;
                let a = self.expr(&cond.a)?;
                let b = self.expr(&cond.b)?;
                self.terminate(Terminator::Branch {
                    op: cond.op,
                    a,
                    b,
                    then_bb: body_bb,
                    else_bb: exit,
                });

                self.current = body_bb;
                if !self.stmts(body)? {
                    self.terminate(Terminator::Goto(head));
                }
                self.current = exit;
                Ok(false)
            }
        }
    }
}

/// Lowers one function definition to IR.
///
/// # Errors
///
/// Returns [`CompileError::Semantic`] for undefined variables.
///
/// # Example
///
/// ```
/// let ast = ximd_compiler::lang::parse("fn inc(x) { return x + 1; }")?;
/// let func = ximd_compiler::lower::lower(&ast.fns[0])?;
/// assert_eq!(func.params.len(), 1);
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
pub fn lower(def: &FnDef) -> Result<Function, CompileError> {
    let mut l = Lowerer::new(def);
    if !l.stmts(&def.body)? {
        l.terminate(Terminator::Return(None));
    }
    Ok(l.func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use ximd_isa::CmpOp;

    fn lower_src(src: &str) -> Function {
        lower(&parse(src).unwrap().fns[0]).unwrap()
    }

    #[test]
    fn straight_line_lowering() {
        let f = lower_src("fn f(a, b) { let c = a + b; return c * 2; }");
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(
            f.block(BlockId(0)).term,
            Terminator::Return(Some(_))
        ));
        assert!(f.inst_count() >= 2);
    }

    #[test]
    fn constant_folding() {
        let f = lower_src("fn f() { return 2 + 3 * 4; }");
        assert_eq!(f.inst_count(), 0);
        assert_eq!(
            f.block(BlockId(0)).term,
            Terminator::Return(Some(Val::Const(14)))
        );
    }

    #[test]
    fn if_else_builds_diamond() {
        let f = lower_src("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        // entry + then + else + join.
        assert_eq!(f.blocks.len(), 4);
        match f.block(f.entry).term {
            Terminator::Branch {
                op,
                then_bb,
                else_bb,
                ..
            } => {
                assert_eq!(op, CmpOp::Gt);
                assert_ne!(then_bb, else_bb);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_builds_loop() {
        let f = lower_src("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }");
        // entry, head, body, exit.
        assert_eq!(f.blocks.len(), 4);
        let head = BlockId(1);
        match f.block(head).term {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                // Body loops back to head.
                assert_eq!(f.block(then_bb).term, Terminator::Goto(head));
                assert!(matches!(f.block(else_bb).term, Terminator::Return(_)));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mem_access_lowering() {
        let f = lower_src("fn f(i) { mem[100 + i] = mem[200 + i] + 1; return 0; }");
        let block = f.block(f.entry);
        assert!(block.insts.iter().any(|i| matches!(i, Inst::Load { .. })));
        assert!(block.insts.iter().any(|i| matches!(i, Inst::Store { .. })));
    }

    #[test]
    fn undefined_variable_is_semantic_error() {
        let err = lower(&parse("fn f() { return zig; }").unwrap().fns[0]).unwrap_err();
        assert!(matches!(err, CompileError::Semantic(_)));
    }

    #[test]
    fn inner_scopes_shadow_and_expire() {
        // `let` inside the if-body creates a new variable; the outer one is
        // unchanged after the block.
        let f = lower_src("fn f(a) { let x = 1; if (a > 0) { let x = 2; mem[0] = x; } return x; }");
        // The return must reference the outer x's vreg (the Copy of 1).
        let outer_copy = f
            .block(f.entry)
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Copy {
                    a: Val::Const(1),
                    d,
                } => Some(*d),
                _ => None,
            })
            .expect("outer let");
        let join = f
            .blocks
            .iter()
            .find(|b| matches!(b.term, Terminator::Return(Some(_))))
            .unwrap();
        assert_eq!(join.term, Terminator::Return(Some(Val::Reg(outer_copy))));
    }

    #[test]
    fn code_after_return_is_dropped() {
        let f = lower_src("fn f() { return 1; mem[0] = 2; }");
        assert_eq!(f.inst_count(), 0);
    }

    #[test]
    fn missing_return_falls_through_to_void() {
        let f = lower_src("fn f(a) { mem[0] = a; }");
        assert_eq!(f.block(f.entry).term, Terminator::Return(None));
    }
}
