//! Upward code motion — a restricted Percolation Scheduling.
//!
//! Two transformations, iterated to a fixed point:
//!
//! 1. **Block merging** (non-speculative): a block whose single predecessor
//!    falls through to it unconditionally is absorbed into that
//!    predecessor, eliminating a branch cycle.
//! 2. **Speculative hoisting**: the leading instruction of a block with a
//!    single, branching predecessor moves up into the predecessor when it
//!    is pure (no memory access, no faulting divide), its destination is
//!    dead on the branch's other path and unread by the branch itself. The
//!    scheduler can then pack the hoisted op into the predecessor's unused
//!    issue slots — the core idea of Percolation Scheduling's move-op
//!    transformation.
//!
//! Unreachable blocks left behind by merging are deleted and block ids
//! remapped.

use std::collections::HashSet;

use ximd_isa::AluOp;

use crate::cfg::Cfg;
use crate::ir::{Block, BlockId, Function, Inst, Terminator};
use crate::liveness::Liveness;

fn is_speculable(inst: &Inst) -> bool {
    match inst {
        // Integer divide/modulo can machine-check on zero: never speculate.
        Inst::Bin { op, .. } => !matches!(op, AluOp::Idiv | AluOp::Imod),
        Inst::Un { .. } | Inst::Copy { .. } => true,
        Inst::Load { .. } | Inst::Store { .. } => false,
    }
}

/// Where a speculatively hoisted instruction ended up after percolation.
///
/// The scheduler later packs the instruction wherever it likes inside
/// `block`; the record pins down *which* instruction was speculated (by its
/// final block/index) and the control-flow paths it was hoisted above, so
/// certificate emission can claim — and the certifier independently verify
/// — that its destination is dead along every `others` path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRecord {
    /// The block now holding the hoisted instruction.
    pub block: BlockId,
    /// Index of the instruction within `block.insts`.
    pub idx: usize,
    /// Successor blocks on whose paths the instruction's destination must
    /// be dead (one entry per hoist the instruction underwent).
    pub others: Vec<BlockId>,
}

/// Runs the code-motion pass in place. Returns the number of instructions
/// moved (merged blocks count their whole body).
pub fn percolate(func: &mut Function) -> usize {
    percolate_with_info(func).0
}

/// Like [`percolate`], but also reports where every speculatively hoisted
/// instruction ended up and which paths it was hoisted above.
pub fn percolate_with_info(func: &mut Function) -> (usize, Vec<SpecRecord>) {
    let mut moved = 0;
    let mut records: Vec<SpecRecord> = Vec::new();
    loop {
        let step = merge_pass(func, &mut records) + hoist_pass(func, &mut records);
        if step == 0 {
            break;
        }
        moved += step;
    }
    remove_unreachable(func, &mut records);
    (moved, records)
}

fn merge_pass(func: &mut Function, records: &mut [SpecRecord]) -> usize {
    let cfg = Cfg::build(func);
    let mut moved = 0;
    // Find P -> B where P ends Goto(B) and B's only predecessor is P.
    for p in 0..func.blocks.len() {
        let pid = BlockId(p);
        if !cfg.rpo().contains(&pid) {
            continue;
        }
        if let Terminator::Goto(b) = func.blocks[p].term {
            if b != pid && cfg.preds(b).len() == 1 && b != func.entry {
                let offset = func.blocks[p].insts.len();
                let body = std::mem::take(&mut func.blocks[b.0].insts);
                let term = func.blocks[b.0].term;
                moved += body.len() + 1;
                func.blocks[p].insts.extend(body);
                func.blocks[p].term = term;
                // B becomes an unreachable self-loop placeholder.
                func.blocks[b.0].term = Terminator::Return(None);
                for r in records.iter_mut().filter(|r| r.block == b) {
                    r.block = pid;
                    r.idx += offset;
                }
                // Only one merge per pass: CFG facts are stale afterwards.
                return moved;
            }
        }
    }
    moved
}

fn hoist_pass(func: &mut Function, records: &mut Vec<SpecRecord>) -> usize {
    let mut moved = 0;
    // Each hoist changes liveness (removing a definition from B *grows*
    // B's live-in), so the analyses are recomputed after every move.
    loop {
        let cfg = Cfg::build(func);
        let live = Liveness::compute(func, &cfg);
        let mut hoisted = false;
        for b in cfg.rpo().to_vec() {
            if b == func.entry || cfg.preds(b).len() != 1 {
                continue;
            }
            let p = cfg.preds(b)[0];
            let Terminator::Branch {
                then_bb, else_bb, ..
            } = func.blocks[p.0].term
            else {
                continue;
            };
            let other = if then_bb == b { else_bb } else { then_bb };
            if other == b {
                continue;
            }
            let Some(first) = func.blocks[b.0].insts.first().copied() else {
                continue;
            };
            if !is_speculable(&first) {
                continue;
            }
            let Some(d) = first.dest() else { continue };
            if live.live_in(other).contains(&d) {
                continue;
            }
            if func.blocks[p.0].term.sources().contains(&d) {
                continue;
            }
            func.blocks[b.0].insts.remove(0);
            func.blocks[p.0].insts.push(first);
            let new_idx = func.blocks[p.0].insts.len() - 1;
            // Re-home the moved instruction's record (a repeatedly hoisted
            // op accumulates one guard path per hop) and shift the records
            // of the instructions left behind in B.
            let mut covered = false;
            for r in records.iter_mut().filter(|r| r.block == b) {
                if r.idx == 0 {
                    r.block = p;
                    r.idx = new_idx;
                    r.others.push(other);
                    covered = true;
                } else {
                    r.idx -= 1;
                }
            }
            if !covered {
                records.push(SpecRecord {
                    block: p,
                    idx: new_idx,
                    others: vec![other],
                });
            }
            moved += 1;
            hoisted = true;
            break; // analyses are stale now
        }
        if !hoisted {
            return moved;
        }
    }
}

/// Deletes unreachable blocks and compacts ids.
fn remove_unreachable(func: &mut Function, records: &mut Vec<SpecRecord>) {
    let cfg = Cfg::build(func);
    let reachable: HashSet<BlockId> = cfg.rpo().iter().copied().collect();
    if reachable.len() == func.blocks.len() {
        return;
    }
    let mut remap = vec![None; func.blocks.len()];
    let mut new_blocks: Vec<Block> = Vec::with_capacity(reachable.len());
    for (i, block) in func.blocks.iter().enumerate() {
        if reachable.contains(&BlockId(i)) {
            remap[i] = Some(BlockId(new_blocks.len()));
            new_blocks.push(block.clone());
        }
    }
    records.retain_mut(|r| match remap[r.block.0] {
        Some(nb) => {
            r.block = nb;
            r.others.retain_mut(|o| match remap[o.0] {
                Some(no) => {
                    *o = no;
                    true
                }
                None => false,
            });
            true
        }
        None => false,
    });
    for block in &mut new_blocks {
        block.term = match block.term {
            Terminator::Goto(t) => Terminator::Goto(remap[t.0].expect("reachable target")),
            Terminator::Branch {
                op,
                a,
                b,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                op,
                a,
                b,
                then_bb: remap[then_bb.0].expect("reachable target"),
                else_bb: remap[else_bb.0].expect("reachable target"),
            },
            t @ Terminator::Return(_) => t,
        };
    }
    func.entry = remap[func.entry.0].expect("entry reachable");
    func.blocks = new_blocks;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Val;
    use crate::lang::parse;
    use crate::lower::lower;

    fn lowered(src: &str) -> Function {
        lower(&parse(src).unwrap().fns[0]).unwrap()
    }

    #[test]
    fn merges_goto_chains() {
        // if/else produces then/else blocks that Goto a join block; after
        // the join is merged into whichever predecessor allows it, chains
        // collapse. A straight-line function with an if yields 4 blocks;
        // the join has 2 preds (not mergeable) but then/else are mergeable
        // only from the branch side (branch, not Goto). Build an explicit
        // chain instead:
        let mut f = lowered("fn f(a) { let x = a + 1; return x; }");
        // Split manually: entry Goto(1), block1 has the return.
        let insts = std::mem::take(&mut f.blocks[0].insts);
        let term = f.blocks[0].term;
        f.blocks.push(Block { insts, term });
        f.blocks[0].term = Terminator::Goto(BlockId(1));
        assert_eq!(f.blocks.len(), 2);

        percolate(&mut f);
        assert_eq!(f.blocks.len(), 1, "chain should merge into one block");
        assert!(matches!(f.blocks[0].term, Terminator::Return(_)));
    }

    #[test]
    fn hoists_pure_ops_from_single_pred_branch_targets() {
        // r = a * 2 inside the then-branch: dest is dead in the else path
        // (else assigns r before use), so the multiply may be hoisted.
        let mut f =
            lowered("fn f(a) { let r = 0; if (a > 0) { r = a * 2; } else { r = 5; } return r; }");
        let before: usize = f.blocks[1].insts.len();
        let moved = percolate(&mut f);
        assert!(moved > 0, "expected at least one hoist/merge");
        // The then-block (or its merged remnant) shrank.
        let cfg = Cfg::build(&f);
        let _ = cfg;
        let after: usize = f.blocks.get(1).map_or(0, |b| b.insts.len());
        assert!(after <= before);
    }

    #[test]
    fn never_hoists_loads_or_stores() {
        let mut f =
            lowered("fn f(a) { let r = 0; if (a > 0) { r = mem[10]; } else { r = 1; } return r; }");
        percolate(&mut f);
        // Entry block must not contain a load.
        assert!(
            !f.blocks[f.entry.0].insts.iter().any(|i| i.touches_memory()),
            "loads must not be speculated"
        );
    }

    #[test]
    fn never_hoists_divides() {
        let mut f = lowered(
            "fn f(a, b) { let r = 0; if (b != 0) { r = a / b; } else { r = 0; } return r; }",
        );
        percolate(&mut f);
        assert!(
            !f.blocks[f.entry.0].insts.iter().any(|i| matches!(
                i,
                Inst::Bin {
                    op: AluOp::Idiv,
                    ..
                }
            )),
            "divides must not be speculated above their zero guard"
        );
    }

    #[test]
    fn respects_liveness_on_other_path() {
        // r is live into the else path (used there before redefinition), so
        // the then-path write of r must NOT be hoisted.
        let mut f =
            lowered("fn f(a) { let r = 7; if (a > 0) { r = 1; } else { mem[0] = r; } return r; }");
        let entry_insts_before = f.blocks[f.entry.0].insts.clone();
        percolate(&mut f);
        // The Copy{1 -> r} must not appear in the entry block.
        let hoisted_write_of_one = f.blocks[f.entry.0]
            .insts
            .iter()
            .skip(entry_insts_before.len())
            .any(|i| {
                matches!(
                    i,
                    Inst::Copy {
                        a: Val::Const(1),
                        ..
                    }
                )
            });
        assert!(!hoisted_write_of_one, "clobbers r on the else path");
    }

    #[test]
    fn semantics_preserved_end_to_end() {
        // Percolation runs inside compile(); verify behaviour unchanged on
        // a branchy function for many inputs.
        let src = r"
fn f(a) {
    let r = 0;
    if (a > 4) {
        r = a * 3 - 1;
    } else {
        r = a + 100;
    }
    if (r % 2 == 0) {
        r = r + 1;
    }
    return r;
}
";
        let oracle = |a: i32| {
            let mut r = if a > 4 { a * 3 - 1 } else { a + 100 };
            if r % 2 == 0 {
                r += 1;
            }
            r
        };
        let compiled = crate::compile(src, 4).unwrap();
        for a in -3..12 {
            assert_eq!(compiled.run_vliw(&[a]).unwrap(), Some(oracle(a)), "a = {a}");
        }
    }

    #[test]
    fn hoist_records_name_the_guarded_path() {
        let mut f =
            lowered("fn f(a) { let r = 0; if (a > 0) { r = a * 2; } else { r = 5; } return r; }");
        let (moved, records) = percolate_with_info(&mut f);
        assert!(moved > 0);
        assert!(!records.is_empty(), "the multiply hoist must be recorded");
        for r in &records {
            let inst = f.blocks[r.block.0]
                .insts
                .get(r.idx)
                .expect("record points at a real instruction");
            assert!(is_speculable(inst));
            assert!(!r.others.is_empty());
            for o in &r.others {
                assert!(o.0 < f.blocks.len(), "guard path remapped into range");
            }
        }
    }

    #[test]
    fn unreachable_blocks_removed() {
        let mut f = lowered("fn f(a) { return a; }");
        f.blocks.push(Block {
            insts: vec![],
            term: Terminator::Return(None),
        });
        assert_eq!(f.blocks.len(), 2);
        percolate(&mut f);
        assert_eq!(f.blocks.len(), 1);
    }
}
