//! Automatic software pipelining of mini-C `while` loops.
//!
//! Connects the frontend to the modulo scheduler: [`compile_pipelined`]
//! detects *counted loops* in the lowered IR —
//!
//! ```text
//! while (i < n) {      // or <=; i and n untouched except the increment
//!     ...straight-line body...
//!     i = i + 1;
//! }
//! ```
//!
//! — modulo-schedules the body, and splices the pipelined region into the
//! compiled function behind a **runtime trip-count guard**: when
//! `n − i ≥ stages` control enters the pipelined region (initiation
//! interval II per iteration), otherwise it falls back to the original
//! scheduled loop, which remains in the program unchanged. Exit state
//! (induction value, body-defined registers, memory) is identical on both
//! paths, so downstream code cannot tell which one ran.
//!
//! Restrictions (conservative, checked): the loop is exactly a
//! condition-header plus one straight-line latch; step is `+1`; each body
//! register is defined once; the condition compares the induction register
//! against a loop-invariant value with `<` or `<=`. Loops that do not match
//! compile exactly as [`compile`](crate::compile) would.

use std::collections::HashMap;

use ximd_isa::cert::{CmpClaim, OpClaim, Region, ScheduleCertificate, TermClaim};
use ximd_isa::{Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Reg};
use ximd_sim::{VliwInstruction, VliwProgram};

use crate::cfg::Cfg;
use crate::codegen::{compile_function, CompiledFunction};
use crate::error::CompileError;
use crate::ir::{BlockId, Function, Inst, Terminator, VReg, Val};
use crate::lang;
use crate::lower;
use crate::pipeline::{emit_rows, solve, CountedLoop, EmitOpts};
use crate::regalloc::allocate;
use crate::schedule::schedule_block;

/// A detected pipelinable loop.
#[derive(Debug, Clone)]
struct LoopPlan {
    header: BlockId,
    latch: BlockId,
    exit: BlockId,
    induction: VReg,
    bound: Val,
    le: bool, // `<=` (else `<`)
    body: Vec<Inst>,
}

fn detect(func: &Function, cfg: &Cfg) -> Option<LoopPlan> {
    for l in cfg.loops() {
        if l.body.len() != 2 {
            continue;
        }
        let header = l.header;
        let latch = l.latch;
        let hblock = func.block(header);
        if !hblock.insts.is_empty() {
            continue; // condition needs computation: not the simple shape
        }
        let Terminator::Branch {
            op,
            a,
            b,
            then_bb,
            else_bb,
        } = hblock.term
        else {
            continue;
        };
        if then_bb != latch || else_bb == header || l.body.contains(&else_bb) {
            continue;
        }
        let le = match op {
            CmpOp::Lt => false,
            CmpOp::Le => true,
            _ => continue,
        };
        let Val::Reg(induction) = a else { continue };
        let lblock = func.block(latch);
        if lblock.term != Terminator::Goto(header) {
            continue;
        }
        // The frontend lowers `i = i + 1;` to `t = i + 1; …; i = t` with a
        // fresh temp, so the increment is a Bin/Copy pair: find `t = i + 1`
        // and a final `Copy { t -> i }`, with `i` written nowhere else, the
        // temp used nowhere else in the function, and the bound invariant.
        let mut ok = true;
        let mut inc_bin: Option<(usize, VReg)> = None;
        let mut inc_copy: Option<usize> = None;
        for (idx, inst) in lblock.insts.iter().enumerate() {
            match *inst {
                Inst::Bin {
                    op: AluOp::Iadd,
                    a: Val::Reg(r),
                    b: Val::Const(1),
                    d,
                } if r == induction && d != induction => {
                    if inc_bin.is_some() {
                        // Ambiguous: a second i+1 temp; be conservative.
                        ok = false;
                        break;
                    }
                    inc_bin = Some((idx, d));
                }
                Inst::Copy { a: Val::Reg(t), d } if d == induction => {
                    if inc_copy.is_some() || inc_bin.is_none_or(|(_, tv)| tv != t) {
                        ok = false;
                        break;
                    }
                    inc_copy = Some(idx);
                }
                _ => {
                    if inst.dest() == Some(induction) {
                        ok = false;
                        break;
                    }
                }
            }
            if let Val::Reg(n) = b {
                if inst.dest() == Some(n) {
                    ok = false;
                    break;
                }
            }
        }
        let (Some((bin_at, temp)), Some(copy_at)) = (inc_bin, inc_copy) else {
            continue;
        };
        // The copy must be the last instruction (later reads of i would see
        // the incremented value, which CountedLoop semantics do not model).
        if !ok || copy_at != lblock.insts.len() - 1 {
            continue;
        }
        // The temp must have no other uses anywhere in the function.
        let temp_uses: usize = func
            .blocks
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .map(|inst| inst.sources().iter().filter(|&&r| r == temp).count())
            .sum::<usize>()
            + func
                .blocks
                .iter()
                .map(|blk| blk.term.sources().iter().filter(|&&r| r == temp).count())
                .sum::<usize>();
        if temp_uses != 1 {
            continue;
        }
        let mut body = lblock.insts.clone();
        body.remove(copy_at);
        body.remove(bin_at);
        return Some(LoopPlan {
            header,
            latch,
            exit: else_bb,
            induction,
            bound: b,
            le,
            body,
        });
    }
    None
}

/// Compiles `func` with automatic software pipelining. Returns the compiled
/// function and the achieved II (`None` if no loop qualified or no schedule
/// beat the budget — the output then equals plain scheduling without the
/// percolation pass).
///
/// # Errors
///
/// Propagates backend errors; detection failures are not errors.
pub fn compile_function_pipelined(
    func: &Function,
    width: usize,
) -> Result<(CompiledFunction, Option<u32>), CompileError> {
    // Detect on the raw IR; the fallback path hands the *unmodified*
    // function to the ordinary pipeline (which performs its own return
    // normalization and percolation).
    let cfg = Cfg::build(func);
    let Some(plan) = detect(func, &cfg) else {
        return Ok((compile_function(func, width)?, None));
    };

    let pristine = func.clone();
    let mut func = func.clone();
    // Return normalization (same as codegen::compile_function).
    let mut ret_vreg = None;
    for b in 0..func.blocks.len() {
        if let Terminator::Return(Some(v)) = func.blocks[b].term {
            let rv = *ret_vreg.get_or_insert_with(|| func.new_vreg());
            func.blocks[b].insts.push(Inst::Copy { a: v, d: rv });
            func.blocks[b].term = Terminator::Return(None);
        }
    }

    // Fresh registers for the trip count and the kernel counter.
    let trips_v = func.new_vreg();
    let kc_v = func.new_vreg();

    let counted = CountedLoop {
        body: plan.body.clone(),
        induction: plan.induction,
        start: 0, // unused: the live induction value carries in
        step: 1,
        trips: trips_v,
        assume_no_alias: false, // conservative: no alias facts from mini-C
    };
    let Ok(solved) = solve(&counted, width) else {
        // The modulo scheduler declined (e.g. an unschedulable body):
        // compile the untouched function through the plain path.
        return Ok((compile_function(&pristine, width)?, None));
    };
    let stages = solved.stages();

    let alloc = allocate(&func, ximd_isa::XIMD1_NUM_REGS)?;
    let reg_map: HashMap<VReg, Reg> = (0..func.vreg_count)
        .map(|i| (VReg(i), alloc.reg(VReg(i))))
        .collect();
    let ind_reg = alloc.reg(plan.induction);
    let trips_reg = alloc.reg(trips_v);
    let kc_reg = alloc.reg(kc_v);

    // Schedule every original block (the fallback loop stays intact).
    let scheds: Vec<_> = func
        .blocks
        .iter()
        .map(|b| schedule_block(b, width))
        .collect();
    let mut base = Vec::with_capacity(scheds.len());
    let mut next = 0u32;
    for s in &scheds {
        base.push(Addr(next));
        next += s.len() as u32;
    }
    let guard_base = next;

    // Guard rows: trips = bound − i (+1 for `<=`); if trips ≥ stages enter
    // the pipelined region, else the original header.
    let bound_operand = match plan.bound {
        Val::Reg(r) => Operand::Reg(alloc.reg(r)),
        Val::Const(c) => Operand::imm_i32(c),
    };
    let mut guard_rows: Vec<VliwInstruction> = Vec::new();
    let mut row = vec![DataOp::Nop; width];
    row[0] = DataOp::Alu {
        op: AluOp::Isub,
        a: bound_operand,
        b: Operand::Reg(ind_reg),
        d: trips_reg,
    };
    guard_rows.push(VliwInstruction {
        ops: row,
        ctrl: ControlOp::Goto(Addr(0)), /* fixed below */
    });
    if plan.le {
        let mut row = vec![DataOp::Nop; width];
        row[0] = DataOp::Alu {
            op: AluOp::Iadd,
            a: Operand::Reg(trips_reg),
            b: Operand::imm_i32(1),
            d: trips_reg,
        };
        guard_rows.push(VliwInstruction {
            ops: row,
            ctrl: ControlOp::Goto(Addr(0)),
        });
    }
    let mut row = vec![DataOp::Nop; width];
    row[0] = DataOp::Cmp {
        op: CmpOp::Ge,
        a: Operand::Reg(trips_reg),
        b: Operand::imm_i32(stages as i32),
    };
    guard_rows.push(VliwInstruction {
        ops: row,
        ctrl: ControlOp::Goto(Addr(0)),
    });
    let pipe_base = guard_base + guard_rows.len() as u32 + 1;
    // Sequential gotos inside the guard, then the decision branch.
    let rows_n = guard_rows.len();
    for (i, row) in guard_rows.iter_mut().enumerate() {
        row.ctrl = ControlOp::Goto(Addr(guard_base + i as u32 + 1));
    }
    let _ = rows_n;
    guard_rows.push(VliwInstruction {
        ops: vec![DataOp::Nop; width],
        ctrl: ControlOp::Branch {
            cond: CondSource::Cc(FuId(0)),
            taken: Addr(pipe_base),
            not_taken: base[plan.header.0],
        },
    });
    debug_assert_eq!(guard_base + guard_rows.len() as u32, pipe_base);

    // The pipelined region, spliced after the guard; exits to the loop's
    // exit block.
    let pipe_rows = emit_rows(
        &counted,
        &solved,
        width,
        &reg_map,
        kc_reg,
        &EmitOpts {
            base: pipe_base,
            exit_to: Some(base[plan.exit.0]),
            init_induction: false,
        },
    );

    // Emit the original blocks, redirecting non-latch entries to the guard.
    let header_addr = base[plan.header.0];
    let guard_addr = Addr(guard_base);
    let mut vliw = VliwProgram::new(width);
    for (bi, (block, sched)) in func.blocks.iter().zip(&scheds).enumerate() {
        let redirect = bi != plan.latch.0 && bi != plan.header.0;
        let map_target = |a: Addr| {
            if redirect && a == header_addr {
                guard_addr
            } else {
                a
            }
        };
        let last = sched.len() - 1;
        for (c, srow) in sched.slots.iter().enumerate() {
            let ops: Vec<DataOp> = srow
                .iter()
                .map(|slot| match slot {
                    None => DataOp::Nop,
                    Some(crate::dag::Node::Inst(i)) => {
                        crate::codegen::lower_inst(&block.insts[*i], &alloc)
                    }
                    Some(crate::dag::Node::Cmp { op, a, b }) => DataOp::Cmp {
                        op: *op,
                        a: val_operand(*a, &alloc),
                        b: val_operand(*b, &alloc),
                    },
                })
                .collect();
            let ctrl = if c < last {
                ControlOp::Goto(Addr(base[bi].0 + c as u32 + 1))
            } else {
                match block.term {
                    Terminator::Goto(t) => ControlOp::Goto(map_target(base[t.0])),
                    Terminator::Branch {
                        then_bb, else_bb, ..
                    } => {
                        let (_, fu) = sched.cmp_slot.expect("branch blocks have a compare");
                        ControlOp::Branch {
                            cond: CondSource::Cc(FuId(fu as u8)),
                            taken: map_target(base[then_bb.0]),
                            not_taken: map_target(base[else_bb.0]),
                        }
                    }
                    Terminator::Return(_) => ControlOp::Halt,
                }
            };
            vliw.push(VliwInstruction { ops, ctrl });
        }
    }
    let guard_len = guard_rows.len() as u32; // init rows + decision branch
    for row in guard_rows.into_iter().chain(pipe_rows) {
        vliw.push(row);
    }

    // Certificate: one block region per original block (branch targets as
    // actually redirected), the guard block, and the pipelined region. The
    // pipelined path never percolates, so no op carries speculation guards.
    let mut regions = Vec::with_capacity(func.blocks.len() + 2);
    for (bi, (block, sched)) in func.blocks.iter().zip(&scheds).enumerate() {
        let redirect = bi != plan.latch.0 && bi != plan.header.0;
        let map_target = |a: Addr| {
            if redirect && a == header_addr {
                guard_addr
            } else {
                a
            }
        };
        let mut placement = vec![(0u32, 0u32); block.insts.len()];
        let mut cmp_claim = None;
        for (c, srow) in sched.slots.iter().enumerate() {
            for (f, slot) in srow.iter().enumerate() {
                match slot {
                    Some(crate::dag::Node::Inst(i)) => placement[*i] = (c as u32, f as u32),
                    Some(crate::dag::Node::Cmp { op, a, b }) => {
                        cmp_claim = Some(CmpClaim {
                            op: DataOp::Cmp {
                                op: *op,
                                a: val_operand(*a, &alloc),
                                b: val_operand(*b, &alloc),
                            },
                            row: c as u32,
                            fu: f as u32,
                        });
                    }
                    None => {}
                }
            }
        }
        let ops = block
            .insts
            .iter()
            .enumerate()
            .map(|(i, inst)| OpClaim {
                op: crate::codegen::lower_inst(inst, &alloc),
                row: placement[i].0,
                fu: placement[i].1,
                spec: Vec::new(),
            })
            .collect();
        let term = match block.term {
            Terminator::Goto(t) => TermClaim::Goto(map_target(base[t.0]).0),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                let (_, fu) = sched.cmp_slot.expect("branch blocks have a compare");
                TermClaim::Branch {
                    fu: fu as u32,
                    taken: map_target(base[then_bb.0]).0,
                    not_taken: map_target(base[else_bb.0]).0,
                }
            }
            Terminator::Return(_) => TermClaim::Halt,
        };
        regions.push(Region::Block {
            base: base[bi].0,
            rows: sched.len() as u32,
            ops,
            cmp: cmp_claim,
            term,
        });
    }
    // The guard block (trip-count computation + decision branch).
    let mut guard_ops = vec![OpClaim {
        op: DataOp::Alu {
            op: AluOp::Isub,
            a: bound_operand,
            b: Operand::Reg(ind_reg),
            d: trips_reg,
        },
        row: 0,
        fu: 0,
        spec: Vec::new(),
    }];
    if plan.le {
        guard_ops.push(OpClaim {
            op: DataOp::Alu {
                op: AluOp::Iadd,
                a: Operand::Reg(trips_reg),
                b: Operand::imm_i32(1),
                d: trips_reg,
            },
            row: 1,
            fu: 0,
            spec: Vec::new(),
        });
    }
    regions.push(Region::Block {
        base: guard_base,
        rows: guard_len,
        ops: guard_ops,
        cmp: Some(CmpClaim {
            op: DataOp::Cmp {
                op: CmpOp::Ge,
                a: Operand::Reg(trips_reg),
                b: Operand::imm_i32(stages as i32),
            },
            row: guard_len - 2,
            fu: 0,
        }),
        term: TermClaim::Branch {
            fu: 0,
            taken: pipe_base,
            not_taken: header_addr.0,
        },
    });
    // The pipelined region itself: body ops in source order with solved
    // issue times, plus the bookkeeping nodes and register roles.
    let body_len = counted.body.len();
    regions.push(Region::Pipelined {
        base: pipe_base,
        ii: solved.ii as u32,
        stages,
        init_rows: 1, // kc = trips − (stages − 1), no induction init
        exit: base[plan.exit.0].0,
        assume_no_alias: counted.assume_no_alias,
        nodes: (0..body_len)
            .map(|i| {
                (
                    solved.time[i] as u32,
                    crate::codegen::lower_inst(&counted.body[i], &alloc),
                )
            })
            .collect(),
        inc: (
            solved.time[body_len] as u32,
            DataOp::Alu {
                op: AluOp::Iadd,
                a: Operand::Reg(ind_reg),
                b: Operand::imm_i32(counted.step),
                d: ind_reg,
            },
        ),
        dec: (
            solved.time[solved.dec_idx] as u32,
            DataOp::Alu {
                op: AluOp::Isub,
                a: Operand::Reg(kc_reg),
                b: Operand::imm_i32(1),
                d: kc_reg,
            },
        ),
        cmp: (
            solved.time[solved.cmp_idx] as u32,
            DataOp::Cmp {
                op: CmpOp::Gt,
                a: Operand::Reg(kc_reg),
                b: Operand::imm_i32(1),
            },
        ),
        induction: ind_reg.0,
        trips: trips_reg.0,
        kc: kc_reg.0,
    });

    let compiled = CompiledFunction {
        name: func.name.clone(),
        width,
        vliw,
        param_regs: func.params.iter().map(|&p| alloc.reg(p)).collect(),
        ret_reg: ret_vreg.map(|r| alloc.reg(r)),
        cert: Some(ScheduleCertificate {
            width: width as u32,
            regions,
        }),
    };
    Ok((compiled, Some(solved.ii as u32)))
}

fn val_operand(v: Val, alloc: &crate::regalloc::Allocation) -> Operand {
    match v {
        Val::Reg(r) => Operand::Reg(alloc.reg(r)),
        Val::Const(c) => Operand::imm_i32(c),
    }
}

/// Parses mini-C and compiles the first function with automatic software
/// pipelining. Returns the compiled function and the achieved II, if a
/// loop was pipelined.
///
/// # Errors
///
/// Returns frontend or backend errors; see [`CompileError`].
///
/// # Example
///
/// ```
/// let src = r"
/// fn scale(n) {
///     let i = 0;
///     while (i < n) {
///         mem[4000 + i] = mem[2000 + i] * 3;
///         i = i + 1;
///     }
///     return 0;
/// }
/// ";
/// let (f, ii) = ximd_compiler::autopipeline::compile_pipelined(src, 8)?;
/// assert!(ii.is_some(), "the loop should pipeline");
/// let _ = f;
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
pub fn compile_pipelined(
    source: &str,
    width: usize,
) -> Result<(CompiledFunction, Option<u32>), CompileError> {
    let ast = lang::parse(source)?;
    let def = ast
        .fns
        .first()
        .ok_or_else(|| CompileError::Semantic("source defines no functions".into()))?;
    let func = lower::lower(def)?;
    compile_function_pipelined(&func, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use ximd_isa::Value;
    use ximd_sim::{MachineConfig, Vsim};

    const COPY3: &str = r"
fn scale(n) {
    let i = 0;
    while (i < n) {
        mem[4000 + i] = mem[2000 + i] * 3;
        i = i + 1;
    }
    return 0;
}
";

    fn run(f: &CompiledFunction, n: i32, input: &[i32]) -> (Vec<i32>, u64) {
        let mut sim = Vsim::new(f.vliw.clone(), MachineConfig::with_width(f.width)).unwrap();
        sim.write_reg(f.param_regs[0], Value::I32(n));
        sim.mem_mut().poke_slice(2000, input).unwrap();
        let cycles = sim.run(1_000_000).unwrap().cycles;
        let out = sim.mem().peek_slice(4000, input.len()).unwrap();
        (out, cycles)
    }

    #[test]
    fn pipelined_loop_is_correct_at_all_sizes() {
        let (f, ii) = compile_pipelined(COPY3, 8).unwrap();
        let ii = ii.expect("loop qualifies");
        assert!(ii >= 2);
        // Sizes below, at, and above the pipeline depth (fallback + both
        // paths must agree with the oracle).
        for n in 0usize..24 {
            let input: Vec<i32> = (0..n as i32).map(|i| i * 7 - 3).collect();
            let (out, _) = run(&f, n as i32, &input);
            let expect: Vec<i32> = input.iter().map(|v| v * 3).collect();
            assert_eq!(out, expect, "n = {n}");
        }
    }

    #[test]
    fn pipelining_beats_plain_compilation_on_long_loops() {
        let (piped, ii) = compile_pipelined(COPY3, 8).unwrap();
        assert!(ii.is_some());
        let plain = compile(COPY3, 8).unwrap();
        let input: Vec<i32> = (0..256).collect();
        let (pout, pc) = run(&piped, 256, &input);
        let (qout, qc) = run(&plain, 256, &input);
        assert_eq!(pout, qout);
        assert!(
            pc * 3 < qc * 2,
            "pipelined {} cycles should clearly beat plain {}",
            pc,
            qc
        );
    }

    #[test]
    fn le_condition_trip_count() {
        let src = r"
fn f(n) {
    let i = 1;
    while (i <= n) {
        mem[600 + i] = i * i;
        i = i + 1;
    }
    return 0;
}
";
        let (f, ii) = compile_pipelined(src, 8).unwrap();
        assert!(ii.is_some());
        for n in [0i32, 1, 2, 7, 20] {
            let mut sim = Vsim::new(f.vliw.clone(), MachineConfig::with_width(f.width)).unwrap();
            sim.write_reg(f.param_regs[0], Value::I32(n));
            sim.run(1_000_000).unwrap();
            let out = sim.mem().peek_slice(601, n.max(0) as usize).unwrap();
            let expect: Vec<i32> = (1..=n).map(|i| i * i).collect();
            assert_eq!(out, expect, "n = {n}");
        }
    }

    #[test]
    fn induction_value_after_loop_matches_fallback() {
        // The function returns i after the loop: both paths must leave the
        // same induction value.
        let src = r"
fn f(n) {
    let i = 0;
    while (i < n) {
        mem[700 + i] = i;
        i = i + 1;
    }
    return i;
}
";
        let (f, ii) = compile_pipelined(src, 8).unwrap();
        assert!(ii.is_some());
        for n in [0i32, 1, 3, 9, 50] {
            let mut sim = Vsim::new(f.vliw.clone(), MachineConfig::with_width(f.width)).unwrap();
            sim.write_reg(f.param_regs[0], Value::I32(n));
            sim.run(1_000_000).unwrap();
            assert_eq!(sim.reg(f.ret_reg.unwrap()).as_i32(), n.max(0), "n = {n}");
        }
    }

    #[test]
    fn reductions_are_not_eligible_but_still_compile() {
        // `s = s + …` violates single-assignment? No — single def per
        // iteration is fine; but the loop-carried dependence is legal too.
        // This one pipelines. A loop with a conditional body does NOT:
        let src = r"
fn f(n) {
    let s = 0;
    let i = 0;
    while (i < n) {
        if (mem[500 + i] > 0) { s = s + 1; }
        i = i + 1;
    }
    return s;
}
";
        let (f, ii) = compile_pipelined(src, 8).unwrap();
        assert!(
            ii.is_none(),
            "branchy bodies must fall back to plain compilation"
        );
        let input = [3, -1, 4, -1, 5];
        let mut sim = Vsim::new(f.vliw.clone(), MachineConfig::with_width(f.width)).unwrap();
        sim.write_reg(f.param_regs[0], Value::I32(5));
        sim.mem_mut().poke_slice(500, &input).unwrap();
        sim.run(1_000_000).unwrap();
        assert_eq!(sim.reg(f.ret_reg.unwrap()).as_i32(), 3);
    }

    #[test]
    fn xsim_lowering_agrees() {
        use ximd_sim::Xsim;
        let (f, _) = compile_pipelined(COPY3, 8).unwrap();
        let input: Vec<i32> = (0..40).map(|i| i - 20).collect();
        let mut xs = Xsim::new(f.ximd_program(), MachineConfig::with_width(f.width)).unwrap();
        xs.write_reg(f.param_regs[0], Value::I32(40));
        xs.mem_mut().poke_slice(2000, &input).unwrap();
        xs.run(1_000_000).unwrap();
        let out = xs.mem().peek_slice(4000, 40).unwrap();
        let expect: Vec<i32> = input.iter().map(|v| v * 3).collect();
        assert_eq!(out, expect);
    }
}
