//! Compiler errors.

use std::fmt;

/// Errors from any stage of the compilation pipeline.
///
/// # Example
///
/// ```
/// let err = ximd_compiler::compile("fn f( {", 4).unwrap_err();
/// assert!(err.to_string().contains("line"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// A lexical error at a 1-based line.
    Lex {
        /// Source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A parse error at a 1-based line.
    Parse {
        /// Source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A semantic error (undefined variable, duplicate function, …).
    Semantic(String),
    /// The program needs more architectural registers than the machine has.
    OutOfRegisters {
        /// Registers required.
        needed: usize,
        /// Registers available.
        available: usize,
    },
    /// Scheduling failed (e.g. no modulo schedule within the II budget).
    Schedule(String),
    /// A simulation performed through a compiled artifact failed.
    Sim(ximd_sim::SimError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            CompileError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CompileError::Semantic(m) => write!(f, "semantic error: {m}"),
            CompileError::OutOfRegisters { needed, available } => {
                write!(f, "needs {needed} registers, machine has {available}")
            }
            CompileError::Schedule(m) => write!(f, "scheduling failed: {m}"),
            CompileError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ximd_sim::SimError> for CompileError {
    fn from(value: ximd_sim::SimError) -> Self {
        CompileError::Sim(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let cases = vec![
            CompileError::Lex {
                line: 3,
                message: "bad char".into(),
            },
            CompileError::Parse {
                line: 9,
                message: "expected )".into(),
            },
            CompileError::Semantic("undefined variable x".into()),
            CompileError::OutOfRegisters {
                needed: 300,
                available: 256,
            },
            CompileError::Schedule("no II <= 64".into()),
        ];
        for err in cases {
            assert!(!err.to_string().is_empty());
        }
    }
}
