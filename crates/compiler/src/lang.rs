//! Mini-C frontend: lexer, AST and recursive-descent parser.
//!
//! The language is the smallest C subset that expresses the paper's
//! workloads (stand-in for the GNU-C frontend of the Breternitz compiler):
//!
//! ```text
//! program   := fn*
//! fn        := "fn" IDENT "(" params? ")" block
//! block     := "{" stmt* "}"
//! stmt      := "let" IDENT "=" expr ";"
//!            | IDENT "=" expr ";"
//!            | "mem" "[" expr "]" "=" expr ";"
//!            | "if" "(" cond ")" block ("else" block)?
//!            | "while" "(" cond ")" block
//!            | "return" expr? ";"
//! cond      := expr (("<"|"<="|">"|">="|"=="|"!=") expr)?   // bare expr means != 0
//! expr      := arithmetic over + - * / % & | ^ << >> with C precedence,
//!              unary "-", integers, variables, "mem" "[" expr "]", parens
//! ```
//!
//! Comparisons appear only as conditions — XIMD-1 compares set condition
//! codes, not registers, so the frontend keeps them fused with branches.

use std::fmt;

use ximd_isa::{AluOp, CmpOp};

use crate::error::CompileError;

/// A binary arithmetic operator (maps 1:1 to an ALU opcode).
pub type BinOp = AluOp;

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i32),
    /// Variable reference.
    Var(String),
    /// `mem[addr]`.
    Mem(Box<Expr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
}

/// A branch condition: comparison or truthiness test.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// The comparison operator.
    pub op: CmpOp,
    /// Left side.
    pub a: Expr,
    /// Right side.
    pub b: Expr,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;` — declares and initializes.
    Let(String, Expr),
    /// `x = e;`.
    Assign(String, Expr),
    /// `mem[a] = e;`.
    MemStore(Expr, Expr),
    /// `if (c) { .. } else { .. }`.
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`.
    While(Cond, Vec<Stmt>),
    /// `return e?;`.
    Return(Option<Expr>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    /// Functions in source order.
    pub fns: Vec<FnDef>,
}

impl Ast {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i32),
    Kw(&'static str),
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Kw(k) => write!(f, "keyword {k:?}"),
            Tok::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

const KEYWORDS: [&str; 7] = ["fn", "let", "if", "else", "while", "return", "mem"];
const SYMBOLS: [&str; 22] = [
    "<<", ">>", "<=", ">=", "==", "!=", "(", ")", "{", "}", "[", "]", ",", ";", "=", "<", ">", "+",
    "-", "*", "/", "%",
];
const SYMBOLS_EXTRA: [&str; 3] = ["&", "|", "^"];

fn lex(source: &str) -> Result<Vec<(usize, Tok)>, CompileError> {
    let mut toks = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = match raw.find("//") {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut rest = text.trim_start();
        'outer: while !rest.is_empty() {
            for sym in SYMBOLS.iter().chain(SYMBOLS_EXTRA.iter()) {
                if let Some(after) = rest.strip_prefix(sym) {
                    toks.push((line, Tok::Sym(sym)));
                    rest = after.trim_start();
                    continue 'outer;
                }
            }
            let c = rest.chars().next().expect("non-empty");
            if c.is_ascii_digit() {
                let end = rest
                    .find(|ch: char| !ch.is_ascii_digit())
                    .unwrap_or(rest.len());
                let value: i64 = rest[..end].parse().map_err(|_| CompileError::Lex {
                    line,
                    message: format!("integer {} out of range", &rest[..end]),
                })?;
                if value > i32::MAX as i64 + 1 {
                    return Err(CompileError::Lex {
                        line,
                        message: format!("integer {value} out of range"),
                    });
                }
                toks.push((line, Tok::Int(value as i32)));
                rest = rest[end..].trim_start();
            } else if c.is_ascii_alphabetic() || c == '_' {
                let end = rest
                    .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                    .unwrap_or(rest.len());
                let word = &rest[..end];
                match KEYWORDS.iter().find(|&&k| k == word) {
                    Some(&k) => toks.push((line, Tok::Kw(k))),
                    None => toks.push((line, Tok::Ident(word.to_owned()))),
                }
                rest = rest[end..].trim_start();
            } else {
                return Err(CompileError::Lex {
                    line,
                    message: format!("unexpected character {c:?}"),
                });
            }
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |(l, _)| *l)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), CompileError> {
        match self.peek() {
            Some(Tok::Sym(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            other => {
                let found = other.map_or("end of input".to_owned(), |t| t.to_string());
                self.err(format!("expected {sym:?}, found {found}"))
            }
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn try_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => {
                let found = other.map_or("end of input".to_owned(), |t| t.to_string());
                self.err(format!("expected identifier, found {found}"))
            }
        }
    }

    fn program(&mut self) -> Result<Ast, CompileError> {
        let mut ast = Ast::default();
        while self.peek().is_some() {
            if !self.try_kw("fn") {
                return self.err("expected `fn`");
            }
            let name = self.ident()?;
            self.eat_sym("(")?;
            let mut params = Vec::new();
            if !self.try_sym(")") {
                loop {
                    params.push(self.ident()?);
                    if self.try_sym(")") {
                        break;
                    }
                    self.eat_sym(",")?;
                }
            }
            let body = self.block()?;
            if ast.function(&name).is_some() {
                return Err(CompileError::Semantic(format!(
                    "duplicate function {name:?}"
                )));
            }
            ast.fns.push(FnDef { name, params, body });
        }
        Ok(ast)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat_sym("{")?;
        let mut stmts = Vec::new();
        while !self.try_sym("}") {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        if self.try_kw("let") {
            let name = self.ident()?;
            self.eat_sym("=")?;
            let e = self.expr()?;
            self.eat_sym(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.try_kw("if") {
            self.eat_sym("(")?;
            let cond = self.cond()?;
            self.eat_sym(")")?;
            let then = self.block()?;
            let els = if self.try_kw("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.try_kw("while") {
            self.eat_sym("(")?;
            let cond = self.cond()?;
            self.eat_sym(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.try_kw("return") {
            if self.try_sym(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.eat_sym(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.try_kw("mem") {
            self.eat_sym("[")?;
            let addr = self.expr()?;
            self.eat_sym("]")?;
            self.eat_sym("=")?;
            let value = self.expr()?;
            self.eat_sym(";")?;
            return Ok(Stmt::MemStore(addr, value));
        }
        let name = self.ident()?;
        self.eat_sym("=")?;
        let e = self.expr()?;
        self.eat_sym(";")?;
        Ok(Stmt::Assign(name, e))
    }

    fn cond(&mut self) -> Result<Cond, CompileError> {
        let a = self.expr()?;
        let op = match self.peek() {
            Some(Tok::Sym(s)) => match *s {
                "<" => Some(CmpOp::Lt),
                "<=" => Some(CmpOp::Le),
                ">" => Some(CmpOp::Gt),
                ">=" => Some(CmpOp::Ge),
                "==" => Some(CmpOp::Eq),
                "!=" => Some(CmpOp::Ne),
                _ => None,
            },
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let b = self.expr()?;
                Ok(Cond { op, a, b })
            }
            // Bare expression: truthiness test.
            None => Ok(Cond {
                op: CmpOp::Ne,
                a,
                b: Expr::Int(0),
            }),
        }
    }

    /// Precedence climbing: | ^ & then << >> then + - then * / %.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_level(0)
    }

    fn bin_level(&mut self, level: usize) -> Result<Expr, CompileError> {
        const LEVELS: [&[(&str, BinOp)]; 5] = [
            &[("|", AluOp::Or), ("^", AluOp::Xor)],
            &[("&", AluOp::And)],
            &[("<<", AluOp::Shl), (">>", AluOp::Shr)],
            &[("+", AluOp::Iadd), ("-", AluOp::Isub)],
            &[("*", AluOp::Imult), ("/", AluOp::Idiv), ("%", AluOp::Imod)],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.bin_level(level + 1)?;
        loop {
            let hit = match self.peek() {
                Some(Tok::Sym(s)) => LEVELS[level]
                    .iter()
                    .find(|(sym, _)| sym == s)
                    .map(|&(_, op)| op),
                _ => None,
            };
            match hit {
                Some(op) => {
                    self.pos += 1;
                    let rhs = self.bin_level(level + 1)?;
                    lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.try_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        if self.try_sym("(") {
            let e = self.expr()?;
            self.eat_sym(")")?;
            return Ok(e);
        }
        if self.try_kw("mem") {
            self.eat_sym("[")?;
            let addr = self.expr()?;
            self.eat_sym("]")?;
            return Ok(Expr::Mem(Box::new(addr)));
        }
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Ident(name)) => Ok(Expr::Var(name)),
            other => {
                self.pos -= 1;
                let found = other.map_or("end of input".to_owned(), |t| t.to_string());
                self.err(format!("expected expression, found {found}"))
            }
        }
    }
}

/// Parses mini-C source into an AST.
///
/// # Errors
///
/// Returns lexical, parse or duplicate-definition errors with line numbers.
///
/// # Example
///
/// ```
/// let ast = ximd_compiler::lang::parse("fn id(x) { return x; }")?;
/// assert_eq!(ast.fns.len(), 1);
/// assert_eq!(ast.fns[0].params, vec!["x".to_owned()]);
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
pub fn parse(source: &str) -> Result<Ast, CompileError> {
    let toks = lex(source)?;
    Parser { toks, pos: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let ast = parse("fn f() { return 1; }").unwrap();
        assert_eq!(ast.fns[0].name, "f");
        assert_eq!(ast.fns[0].body, vec![Stmt::Return(Some(Expr::Int(1)))]);
    }

    #[test]
    fn precedence_is_c_like() {
        let ast = parse("fn f(a, b) { return a + b * 2; }").unwrap();
        match &ast.fns[0].body[0] {
            Stmt::Return(Some(Expr::Bin(AluOp::Iadd, l, r))) => {
                assert_eq!(**l, Expr::Var("a".into()));
                assert!(matches!(**r, Expr::Bin(AluOp::Imult, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let ast = parse("fn f(a, b) { return (a + b) * 2; }").unwrap();
        assert!(matches!(
            &ast.fns[0].body[0],
            Stmt::Return(Some(Expr::Bin(AluOp::Imult, _, _)))
        ));
    }

    #[test]
    fn shift_and_bitwise_levels() {
        // `a | b & c << 1` parses as `a | (b & (c << 1))`.
        let ast = parse("fn f(a, b, c) { return a | b & c << 1; }").unwrap();
        assert!(matches!(
            &ast.fns[0].body[0],
            Stmt::Return(Some(Expr::Bin(AluOp::Or, _, _)))
        ));
    }

    #[test]
    fn full_statement_forms() {
        let src = r"
fn g(n) {
    let s = 0;
    let i = 0;
    while (i < n) {
        if (mem[100 + i] > 0) {
            s = s + mem[100 + i];
        } else {
            s = s - 1;
        }
        i = i + 1;
    }
    mem[50] = s;
    return s;
}
";
        let ast = parse(src).unwrap();
        assert_eq!(ast.fns[0].params, vec!["n".to_owned()]);
        assert_eq!(ast.fns[0].body.len(), 5);
    }

    #[test]
    fn bare_condition_means_nonzero() {
        let ast = parse("fn f(a) { while (a) { a = a - 1; } return a; }").unwrap();
        match &ast.fns[0].body[0] {
            Stmt::While(c, _) => {
                assert_eq!(c.op, CmpOp::Ne);
                assert_eq!(c.b, Expr::Int(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let ast = parse("fn f() { return -5 - -3; }").unwrap();
        assert!(matches!(
            &ast.fns[0].body[0],
            Stmt::Return(Some(Expr::Bin(AluOp::Isub, _, _)))
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("fn f() {\n  let x = ;\n}").unwrap_err();
        assert!(
            matches!(err, CompileError::Parse { line: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_duplicate_functions() {
        let err = parse("fn f() { return 0; } fn f() { return 1; }").unwrap_err();
        assert!(matches!(err, CompileError::Semantic(_)));
    }

    #[test]
    fn rejects_garbage_characters() {
        let err = parse("fn f() { let x = 1 @ 2; }").unwrap_err();
        assert!(matches!(err, CompileError::Lex { .. }));
    }

    #[test]
    fn min_int_literal() {
        let ast = parse("fn f() { return -2147483648; }").unwrap();
        assert!(matches!(
            &ast.fns[0].body[0],
            Stmt::Return(Some(Expr::Neg(_)))
        ));
    }

    #[test]
    fn comments_ignored() {
        let ast = parse("fn f() { // comment\n return 2; // more\n}").unwrap();
        assert_eq!(ast.fns.len(), 1);
    }
}
