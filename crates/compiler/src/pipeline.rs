//! Software pipelining by modulo scheduling.
//!
//! The paper lists Software Pipelining [Ebcioglu87, Lam88] among the
//! compilation techniques XIMD inherits from VLIW, and uses it both for
//! Livermore Loop 12 (§3.1) and for the store sequence of BITCOUNT1. This
//! module implements modulo scheduling for *counted loops*: a straight-line
//! body executed `N` times (`N` in a register at run time), with an
//! induction variable advancing by a constant step.
//!
//! The scheduler searches initiation intervals upward from the
//! resource/recurrence lower bound. For each candidate II it solves the
//! standard system of modulo constraints — for a dependence `(D → U)` with
//! iteration distance δ and latency `l`, `t_U ≥ t_D + l − δ·II` — plus this
//! machine's *register lifetime* rule: because iterations share registers
//! (XIMD-1 has no rotating register file), the value defined by `D` must be
//! consumed before `D`'s next-iteration instance overwrites it, i.e.
//! `t_U ≤ t_D + (1 − δ)·II` — equality allowed thanks to the machine's
//! read-old-value semantics. Failing lifetimes bump the II instead of
//! spilling.
//!
//! Emission produces a complete runnable [`VliwProgram`]: init code,
//! prologue (filling `S − 1` stages), a kernel of exactly II wide
//! instructions with the loop-back branch, an epilogue draining the final
//! iterations, and a halt. The loop-count bookkeeping (`kc`) lives only in
//! the kernel, so the program requires `N ≥ stages` at run time
//! ([`Pipelined::min_trips`]).

use std::collections::HashMap;

use ximd_isa::{Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Reg, UnOp};
use ximd_sim::{VliwInstruction, VliwProgram};

use crate::error::CompileError;
use crate::ir::{Inst, VReg, Val};

/// A counted loop to be pipelined.
#[derive(Debug, Clone)]
pub struct CountedLoop {
    /// One iteration's straight-line body. Each virtual register may be
    /// defined at most once (single-assignment per iteration); the
    /// induction variable is read-only here.
    pub body: Vec<Inst>,
    /// The induction variable.
    pub induction: VReg,
    /// Initial induction value.
    pub start: i32,
    /// Per-iteration induction step.
    pub step: i32,
    /// Register holding the trip count `N` at entry.
    pub trips: VReg,
    /// Assert that loads and stores in the body never alias across (or
    /// within) iterations, removing all memory dependences. This is the
    /// static stand-in for the "run-time disambiguation" the paper's
    /// compiler performs; without it, a store feeding the next iteration's
    /// loads is assumed and the II grows accordingly.
    pub assume_no_alias: bool,
}

/// A pipelined loop ready to run.
#[derive(Debug, Clone)]
pub struct Pipelined {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Number of pipeline stages.
    pub stages: u32,
    /// The complete program (init / prologue / kernel / epilogue / halt).
    pub vliw: VliwProgram,
    /// Virtual-to-architectural register map (inputs are seeded through
    /// this).
    pub reg_of: HashMap<VReg, Reg>,
    /// Minimum trip count the program supports (`N ≥ stages`).
    pub min_trips: u32,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum PNode {
    Body(usize),
    Inc,
    Dec,
    Cmp,
}

/// One linear constraint `t_to − t_from ≥ base − coeff·II`.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    from: usize,
    to: usize,
    base: i64,
    coeff: i64,
}

/// Modulo-schedules `l` for a machine of `width` FUs.
///
/// # Errors
///
/// Returns [`CompileError::Schedule`] if the body multiply-defines a
/// register, writes the induction/trip registers, or no schedule exists
/// with II ≤ 64.
pub fn modulo_schedule(l: &CountedLoop, width: usize) -> Result<Pipelined, CompileError> {
    let solved = solve(l, width)?;
    emit(l, &solved, width)
}

/// A feasible modulo schedule, before emission.
#[derive(Debug, Clone)]
pub(crate) struct Solved {
    pub(crate) nodes: Vec<PNode>,
    pub(crate) time: Vec<i64>,
    pub(crate) ii: i64,
    pub(crate) dec_idx: usize,
    pub(crate) cmp_idx: usize,
}

impl Solved {
    /// Number of pipeline stages.
    pub(crate) fn stages(&self) -> u32 {
        let max_t = self.time.iter().copied().max().unwrap_or(0);
        (max_t / self.ii + 1) as u32
    }
}

/// Finds the schedule (II search + iterative modulo scheduling).
pub(crate) fn solve(l: &CountedLoop, width: usize) -> Result<Solved, CompileError> {
    if width == 0 {
        return Err(CompileError::Schedule("width must be positive".into()));
    }
    // Validate single assignment and protected registers.
    let mut def_of: HashMap<VReg, usize> = HashMap::new();
    for (i, inst) in l.body.iter().enumerate() {
        if let Some(d) = inst.dest() {
            if d == l.induction || d == l.trips {
                return Err(CompileError::Schedule(format!(
                    "body writes protected register {d}"
                )));
            }
            if def_of.insert(d, i).is_some() {
                return Err(CompileError::Schedule(format!(
                    "{d} defined twice in loop body"
                )));
            }
        }
    }

    // Node list: body ops, then induction increment, then kc decrement and
    // the exit compare.
    let mut nodes: Vec<PNode> = (0..l.body.len()).map(PNode::Body).collect();
    let inc_idx = nodes.len();
    nodes.push(PNode::Inc);
    let dec_idx = nodes.len();
    nodes.push(PNode::Dec);
    let cmp_idx = nodes.len();
    nodes.push(PNode::Cmp);
    let n = nodes.len();

    let reads = |node: PNode| -> Vec<VReg> {
        match node {
            PNode::Body(i) => l.body[i].sources(),
            PNode::Inc => vec![l.induction],
            PNode::Dec | PNode::Cmp => vec![], // kc handled explicitly below
        }
    };

    let mut cons: Vec<Constraint> = Vec::new();
    fn dep_into(cons: &mut Vec<Constraint>, from: usize, to: usize, lat: i64, delta: i64) {
        cons.push(Constraint {
            from,
            to,
            base: lat,
            coeff: delta,
        });
    }

    // Register dependences. Definer of each vreg: body def, or Inc for the
    // induction variable.
    for (u, &node) in nodes.iter().enumerate() {
        for r in reads(node) {
            let (d, delta) = if r == l.induction {
                (inc_idx, 1) // this iteration's value was written by the
                             // previous iteration's increment
            } else if let Some(&di) = def_of.get(&r) {
                let delta = i64::from(di >= u); // def later in body order ⇒ carried
                (di, delta)
            } else {
                continue; // loop-invariant input
            };
            // RAW: t_u ≥ t_d + 1 − δ·II.
            dep_into(&mut cons, d, u, 1, delta);
            // Lifetime: t_d ≥ t_u − (1 − δ)·II  ⇔  t_u ≤ t_d + (1−δ)·II.
            cons.push(Constraint {
                from: u,
                to: d,
                base: 0,
                coeff: 1 - delta,
            });
        }
    }
    // kc: Cmp reads kc before Dec writes it (same-cycle OK), Dec feeds the
    // next iteration's Cmp.
    dep_into(&mut cons, cmp_idx, dec_idx, 0, 0); // WAR: dec no earlier than cmp
    dep_into(&mut cons, dec_idx, cmp_idx, 1, 1); // carried RAW
    cons.push(Constraint {
        from: cmp_idx,
        to: dec_idx,
        base: 0,
        coeff: 0,
    }); // lifetime (δ=1): t_cmp ≤ t_dec

    // Memory dependences, conservative unless disambiguated away.
    let mem_nodes: Vec<(usize, bool)> = if l.assume_no_alias {
        Vec::new()
    } else {
        l.body
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.touches_memory())
            .map(|(i, inst)| (i, inst.is_store()))
            .collect()
    };
    for (ai, &(a, a_store)) in mem_nodes.iter().enumerate() {
        for &(b, b_store) in &mem_nodes[ai + 1..] {
            // a before b in body order (δ=0) and b before a across
            // iterations (δ=1).
            match (a_store, b_store) {
                (false, false) => {}
                (true, _) | (_, true) => {
                    let lat = i64::from(a_store); // store→X: 1; load→store: 0
                    dep_into(&mut cons, a, b, lat, 0);
                    let lat_back = i64::from(b_store);
                    dep_into(&mut cons, b, a, lat_back, 1);
                }
            }
        }
    }

    // Resource + recurrence lower bound.
    let res_mii = n.div_ceil(width) as i64;
    let ii_min = res_mii.max(2); // the exit compare needs a slot ≤ II−2
    const II_MAX: i64 = 64;

    'ii: for ii in ii_min..=II_MAX {
        // Longest-path earliest starts (Bellman–Ford; positive cycle ⇒
        // recurrence exceeds II).
        let mut est = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for c in &cons {
                let need = est[c.from] + c.base - c.coeff * ii;
                if est[c.to] < need {
                    est[c.to] = need;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == n {
                continue 'ii; // still relaxing: infeasible recurrence
            }
        }
        if est[cmp_idx] > ii - 2 {
            continue 'ii;
        }

        // Iterative modulo scheduling (Rau): place nodes by priority; when
        // a node has no legal slot, force-place it at its earliest start
        // and evict whatever conflicts, within a budget.
        //
        // Priority: the exit compare first (its window [0, II-2] is the
        // tightest), then critical-path height over intra-iteration edges.
        let mut height = vec![0i64; n];
        for _ in 0..n {
            for c in &cons {
                if c.coeff == 0 && c.base > 0 {
                    height[c.from] = height[c.from].max(c.base + height[c.to]);
                }
            }
        }
        let prio = |i: usize| -> (i64, i64, usize) {
            (if i == cmp_idx { i64::MIN } else { 0 }, -height[i], i)
        };

        let mut time = vec![-1i64; n];
        let mut slot_used = vec![0usize; ii as usize];
        let mut budget = 20 * n as i64;
        let mut feasible = true;
        while let Some(node) = (0..n).filter(|&i| time[i] < 0).min_by_key(|&i| prio(i)) {
            budget -= 1;
            if budget < 0 {
                feasible = false;
                break;
            }
            // Earliest start against currently-scheduled predecessors.
            let mut lo = est[node].max(0);
            for c in &cons {
                if c.to == node && time[c.from] >= 0 {
                    lo = lo.max(time[c.from] + c.base - c.coeff * ii);
                }
            }
            let hi_abs = if node == cmp_idx { ii - 2 } else { i64::MAX };
            if lo > hi_abs {
                feasible = false;
                break;
            }
            let hi = hi_abs.min(lo + ii - 1);
            // Try every slot in the window for a conflict-free placement.
            let mut placed = false;
            't: for t in lo..=hi {
                if slot_used[(t % ii) as usize] >= width {
                    continue;
                }
                for c in &cons {
                    let ok = if c.to == node && time[c.from] >= 0 {
                        t >= time[c.from] + c.base - c.coeff * ii
                    } else if c.from == node && time[c.to] >= 0 {
                        time[c.to] >= t + c.base - c.coeff * ii
                    } else {
                        true
                    };
                    if !ok {
                        continue 't;
                    }
                }
                time[node] = t;
                slot_used[(t % ii) as usize] += 1;
                placed = true;
                break;
            }
            if placed {
                continue;
            }
            // Force-place at `lo`, evicting dependence violators and, if the
            // congruence class is full, its lowest-priority member.
            let t = lo;
            for m in 0..n {
                if m == node || time[m] < 0 {
                    continue;
                }
                let violates = cons.iter().any(|c| {
                    (c.to == node && c.from == m && t < time[m] + c.base - c.coeff * ii)
                        || (c.from == node && c.to == m && time[m] < t + c.base - c.coeff * ii)
                });
                if violates {
                    slot_used[(time[m] % ii) as usize] -= 1;
                    time[m] = -1;
                }
            }
            if slot_used[(t % ii) as usize] >= width {
                let victim = (0..n)
                    .filter(|&m| m != node && time[m] >= 0 && time[m] % ii == t % ii)
                    .max_by_key(|&m| prio(m));
                match victim {
                    Some(v) => {
                        slot_used[(time[v] % ii) as usize] -= 1;
                        time[v] = -1;
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            time[node] = t;
            slot_used[(t % ii) as usize] += 1;
        }
        if !feasible || time.iter().any(|&t| t < 0) {
            continue 'ii;
        }
        // Final validation: every constraint must hold.
        let valid = cons
            .iter()
            .all(|c| time[c.to] >= time[c.from] + c.base - c.coeff * ii)
            && time[cmp_idx] <= ii - 2
            && (0..ii).all(|c| (0..n).filter(|&i| time[i] % ii == c).count() <= width);
        if !valid {
            continue 'ii;
        }

        let _ = inc_idx;
        return Ok(Solved {
            nodes,
            time,
            ii,
            dec_idx,
            cmp_idx,
        });
    }
    Err(CompileError::Schedule(format!(
        "no modulo schedule with II <= {II_MAX}"
    )))
}

/// Emission options for splicing a pipelined region into a larger program.
#[derive(Debug, Clone)]
pub(crate) struct EmitOpts {
    /// Address of the region's first row inside the enclosing program.
    pub(crate) base: u32,
    /// Where control goes after the epilogue (`None` appends a halt row).
    pub(crate) exit_to: Option<Addr>,
    /// Emit `induction = start` in the init rows (standalone loops); when
    /// splicing, the induction register already holds the live value.
    pub(crate) init_induction: bool,
}

/// Emits the region's rows with local addresses rebased to `opts.base`.
/// Targets one-past-the-end become `opts.exit_to` (or a final halt row).
pub(crate) fn emit_rows(
    l: &CountedLoop,
    s: &Solved,
    width: usize,
    reg_of: &HashMap<VReg, Reg>,
    kc: Reg,
    opts: &EmitOpts,
) -> Vec<VliwInstruction> {
    let (nodes, time, ii) = (&s.nodes, &s.time, s.ii);
    let (dec_idx, cmp_idx) = (s.dec_idx, s.cmp_idx);
    let operand = |v: Val| -> Operand {
        match v {
            Val::Reg(r) => Operand::Reg(reg_of[&r]),
            Val::Const(c) => Operand::imm_i32(c),
        }
    };
    let lower_node = |node: PNode| -> DataOp {
        match node {
            PNode::Body(i) => match l.body[i] {
                Inst::Bin { op, a, b, d } => DataOp::Alu {
                    op,
                    a: operand(a),
                    b: operand(b),
                    d: reg_of[&d],
                },
                Inst::Un { op, a, d } => DataOp::Un {
                    op,
                    a: operand(a),
                    d: reg_of[&d],
                },
                Inst::Copy { a, d } => DataOp::Un {
                    op: UnOp::Mov,
                    a: operand(a),
                    d: reg_of[&d],
                },
                Inst::Load { base, off, d } => DataOp::Load {
                    a: operand(base),
                    b: operand(off),
                    d: reg_of[&d],
                },
                Inst::Store { val, addr } => DataOp::Store {
                    a: operand(val),
                    b: operand(addr),
                },
            },
            PNode::Inc => DataOp::Alu {
                op: AluOp::Iadd,
                a: Operand::Reg(reg_of[&l.induction]),
                b: Operand::imm_i32(l.step),
                d: reg_of[&l.induction],
            },
            PNode::Dec => DataOp::Alu {
                op: AluOp::Isub,
                a: Operand::Reg(kc),
                b: Operand::imm_i32(1),
                d: kc,
            },
            PNode::Cmp => DataOp::Cmp {
                op: CmpOp::Gt,
                a: Operand::Reg(kc),
                b: Operand::imm_i32(1),
            },
        }
    };

    let stages = s.stages();
    let prologue_len = (i64::from(stages) - 1) * ii;

    // Rows are built with *local* addresses; rebasing happens at the end.
    let mut rows: Vec<VliwInstruction> = Vec::new();
    let push_row = |ops: Vec<(usize, DataOp)>, rows: &mut Vec<VliwInstruction>| {
        let mut row = vec![DataOp::Nop; width];
        for (slot, (_, op)) in ops.into_iter().enumerate() {
            row[slot] = op;
        }
        let next = Addr(rows.len() as u32 + 1);
        rows.push(VliwInstruction {
            ops: row,
            ctrl: ControlOp::Goto(next),
        });
    };

    // --- init: (induction = start;) kc = trips − (stages − 1).
    {
        let mut init_ops = Vec::new();
        if opts.init_induction {
            init_ops.push(DataOp::Un {
                op: UnOp::Mov,
                a: Operand::imm_i32(l.start),
                d: reg_of[&l.induction],
            });
        }
        init_ops.push(DataOp::Alu {
            op: AluOp::Isub,
            a: Operand::Reg(reg_of[&l.trips]),
            b: Operand::imm_i32(i64::from(stages) as i32 - 1),
            d: kc,
        });
        let mut pending = init_ops;
        while !pending.is_empty() {
            let take: Vec<(usize, DataOp)> = pending
                .drain(..pending.len().min(width))
                .enumerate()
                .collect();
            push_row(take, &mut rows);
        }
    }

    // --- prologue (dec/cmp are kernel-only bookkeeping).
    for p in 0..prologue_len {
        let mut ops = Vec::new();
        for (idx, &node) in nodes.iter().enumerate() {
            if idx == dec_idx || idx == cmp_idx {
                continue;
            }
            if time[idx] <= p && (p - time[idx]) % ii == 0 {
                ops.push((idx, lower_node(node)));
            }
        }
        debug_assert!(ops.len() <= width);
        push_row(ops, &mut rows);
    }

    // --- kernel.
    let kernel_start = rows.len() as u32;
    let epilogue_start = kernel_start + ii as u32;
    let mut cmp_fu = 0usize;
    for c in 0..ii {
        let mut ops = Vec::new();
        for (idx, &node) in nodes.iter().enumerate() {
            if time[idx] % ii == c {
                ops.push((idx, lower_node(node)));
            }
        }
        debug_assert!(ops.len() <= width);
        let mut row = vec![DataOp::Nop; width];
        for (slot, (idx, op)) in ops.into_iter().enumerate() {
            if idx == cmp_idx {
                cmp_fu = slot;
            }
            row[slot] = op;
        }
        let ctrl = if c == ii - 1 {
            ControlOp::Branch {
                cond: CondSource::Cc(FuId(cmp_fu as u8)),
                taken: Addr(kernel_start),
                not_taken: Addr(epilogue_start),
            }
        } else {
            ControlOp::Goto(Addr(rows.len() as u32 + 1))
        };
        rows.push(VliwInstruction { ops: row, ctrl });
    }

    // --- epilogue: drain the last S−1 iterations.
    for e in 0..prologue_len {
        let mut ops = Vec::new();
        for (idx, &node) in nodes.iter().enumerate() {
            if idx == dec_idx || idx == cmp_idx {
                continue;
            }
            for d in 0..i64::from(stages) {
                if time[idx] - (d + 1) * ii == e {
                    ops.push((idx, lower_node(node)));
                }
            }
        }
        debug_assert!(ops.len() <= width);
        push_row(ops, &mut rows);
    }

    // --- rebase local addresses; one-past-the-end becomes the exit.
    let total = rows.len() as u32;
    let exit_addr = match opts.exit_to {
        Some(a) => a,
        None => Addr(opts.base + total), // the halt row appended below
    };
    let rebase = |a: Addr| {
        if a.0 >= total {
            exit_addr
        } else {
            Addr(opts.base + a.0)
        }
    };
    for row in &mut rows {
        row.ctrl = match row.ctrl {
            ControlOp::Goto(t) => ControlOp::Goto(rebase(t)),
            ControlOp::Branch {
                cond,
                taken,
                not_taken,
            } => ControlOp::Branch {
                cond,
                taken: rebase(taken),
                not_taken: rebase(not_taken),
            },
            ControlOp::Halt => ControlOp::Halt,
        };
    }
    if opts.exit_to.is_none() {
        rows.push(VliwInstruction::halt(width));
    }
    rows
}

/// Allocates registers and emits a standalone pipelined program.
fn emit(l: &CountedLoop, s: &Solved, width: usize) -> Result<Pipelined, CompileError> {
    // Register allocation: collect every vreg in play.
    let mut reg_of: HashMap<VReg, Reg> = HashMap::new();
    let alloc = |r: VReg, reg_of: &mut HashMap<VReg, Reg>| {
        let next = reg_of.len() as u16;
        *reg_of.entry(r).or_insert(Reg(next))
    };
    for inst in &l.body {
        for r in inst.sources() {
            alloc(r, &mut reg_of);
        }
        if let Some(d) = inst.dest() {
            alloc(d, &mut reg_of);
        }
    }
    alloc(l.induction, &mut reg_of);
    alloc(l.trips, &mut reg_of);
    let kc = Reg(reg_of.len() as u16); // loop-count register, outside the map
    if reg_of.len() + 1 > ximd_isa::XIMD1_NUM_REGS {
        return Err(CompileError::OutOfRegisters {
            needed: reg_of.len() + 1,
            available: ximd_isa::XIMD1_NUM_REGS,
        });
    }

    let rows = emit_rows(
        l,
        s,
        width,
        &reg_of,
        kc,
        &EmitOpts {
            base: 0,
            exit_to: None,
            init_induction: true,
        },
    );
    let mut vliw = VliwProgram::new(width);
    for row in rows {
        vliw.push(row);
    }
    let stages = s.stages();
    Ok(Pipelined {
        ii: s.ii as u32,
        stages,
        vliw,
        reg_of,
        min_trips: stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::Value;
    use ximd_sim::{MachineConfig, Vsim};

    /// Livermore Loop 12 as a counted loop: X[k] = Y[k+1] − Y[k].
    fn loop12() -> CountedLoop {
        let ind = VReg(0);
        let trips = VReg(1);
        let a = VReg(2);
        let b = VReg(3);
        let x = VReg(4);
        CountedLoop {
            body: vec![
                Inst::Bin {
                    op: AluOp::Iadd,
                    a: ind.into(),
                    b: Val::Const(4999),
                    d: VReg(5),
                },
                Inst::Load {
                    base: Val::Const(2999),
                    off: ind.into(),
                    d: a,
                },
                Inst::Load {
                    base: Val::Const(3000),
                    off: ind.into(),
                    d: b,
                },
                Inst::Bin {
                    op: AluOp::Isub,
                    a: b.into(),
                    b: a.into(),
                    d: x,
                },
                Inst::Store {
                    val: x.into(),
                    addr: VReg(5).into(),
                },
            ],
            induction: ind,
            start: 1,
            step: 1,
            trips,
            assume_no_alias: true,
        }
    }

    fn run_loop12(n: usize) -> (Vec<i32>, u64, Pipelined) {
        let pipe = modulo_schedule(&loop12(), 4).unwrap();
        let y: Vec<i32> = (0..=n as i32).map(|i| i * i - 3 * i).collect();
        let mut sim = Vsim::new(pipe.vliw.clone(), MachineConfig::with_width(4)).unwrap();
        sim.mem_mut().poke_slice(3000, &y).unwrap();
        sim.write_reg(pipe.reg_of[&VReg(1)], Value::I32(n as i32));
        let summary = sim.run(100 + 10 * n as u64).unwrap();
        let x = sim.mem().peek_slice(5000, n).unwrap();
        (x, summary.cycles, pipe)
    }

    #[test]
    fn loop12_pipelines_correctly() {
        for n in [4usize, 5, 8, 33] {
            let (x, _, pipe) = run_loop12(n);
            assert!(n as u32 >= pipe.min_trips, "test precondition");
            let y: Vec<i32> = (0..=n as i32).map(|i| i * i - 3 * i).collect();
            let expect: Vec<i32> = y.windows(2).map(|w| w[1] - w[0]).collect();
            assert_eq!(x, expect, "n = {n}, ii = {}", pipe.ii);
        }
    }

    #[test]
    fn loop12_achieves_ii_2() {
        let pipe = modulo_schedule(&loop12(), 4).unwrap();
        assert_eq!(pipe.ii, 2, "7 ops on 4 FUs");
        let (_, c8, _) = run_loop12(8);
        let (_, c9, _) = run_loop12(9);
        assert_eq!(c9 - c8, 2, "steady-state cost per iteration is II");
    }

    #[test]
    fn narrow_machine_raises_ii() {
        let pipe = modulo_schedule(&loop12(), 2).unwrap();
        assert!(pipe.ii >= 4, "7 ops on 2 FUs need II >= 4, got {}", pipe.ii);
        // Still correct.
        let n = 10;
        let y: Vec<i32> = (0..=n as i32).map(|i| 2 * i + 1).collect();
        let mut sim = Vsim::new(pipe.vliw.clone(), MachineConfig::with_width(2)).unwrap();
        sim.mem_mut().poke_slice(3000, &y).unwrap();
        sim.write_reg(pipe.reg_of[&VReg(1)], Value::I32(n as i32));
        sim.run(10_000).unwrap();
        assert_eq!(sim.mem().peek_slice(5000, n).unwrap(), vec![2; n]);
    }

    #[test]
    fn reduction_recurrence_bounds_ii() {
        // s = s + M[k]: the loop-carried add forms a 1-cycle recurrence; II
        // stays small but the sum must come out right.
        let ind = VReg(0);
        let trips = VReg(1);
        let v = VReg(2);
        let s = VReg(3);
        let l = CountedLoop {
            body: vec![
                Inst::Load {
                    base: Val::Const(99),
                    off: ind.into(),
                    d: v,
                },
                Inst::Bin {
                    op: AluOp::Iadd,
                    a: s.into(),
                    b: v.into(),
                    d: s,
                },
            ],
            induction: ind,
            start: 1,
            step: 1,
            trips,
            assume_no_alias: false,
        };
        let pipe = modulo_schedule(&l, 4).unwrap();
        let n = 12;
        let data: Vec<i32> = (1..=n).collect();
        let mut sim = Vsim::new(pipe.vliw.clone(), MachineConfig::with_width(4)).unwrap();
        sim.mem_mut().poke_slice(100, &data).unwrap();
        sim.write_reg(pipe.reg_of[&trips], Value::I32(n));
        sim.run(10_000).unwrap();
        assert_eq!(sim.reg(pipe.reg_of[&s]).as_i32(), (1..=n).sum::<i32>());
    }

    #[test]
    fn rejects_double_definition() {
        let ind = VReg(0);
        let l = CountedLoop {
            body: vec![
                Inst::Copy {
                    a: Val::Const(1),
                    d: VReg(2),
                },
                Inst::Copy {
                    a: Val::Const(2),
                    d: VReg(2),
                },
            ],
            induction: ind,
            start: 0,
            step: 1,
            trips: VReg(1),
            assume_no_alias: false,
        };
        assert!(matches!(
            modulo_schedule(&l, 4),
            Err(CompileError::Schedule(_))
        ));
    }

    #[test]
    fn rejects_writes_to_induction() {
        let ind = VReg(0);
        let l = CountedLoop {
            body: vec![Inst::Copy {
                a: Val::Const(1),
                d: ind,
            }],
            induction: ind,
            start: 0,
            step: 1,
            trips: VReg(1),
            assume_no_alias: false,
        };
        assert!(matches!(
            modulo_schedule(&l, 4),
            Err(CompileError::Schedule(_))
        ));
    }

    #[test]
    fn wider_machines_never_increase_ii() {
        let mut last = u32::MAX;
        for width in [1usize, 2, 4, 8] {
            match modulo_schedule(&loop12(), width) {
                Ok(p) => {
                    assert!(p.ii <= last, "width {width}");
                    last = p.ii;
                }
                Err(_) => assert_eq!(width, 1, "only width 1 may fail (cmp needs II-2 slot)"),
            }
        }
    }
}
