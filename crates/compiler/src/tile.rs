//! Tile generation — the first half of the paper's Figure 13 flow.
//!
//! "Each thread is compiled several times with varying resource
//! constraints, for example, the compiler allows use of a different number
//! of functional units. … Each can be modeled as a rectangle or tile whose
//! width is the required number of functional units and whose length is the
//! static code size."

use crate::codegen::compile_function;
use crate::error::CompileError;
use crate::ir::Function;
use crate::lang;
use crate::lower;

/// One compilation of one thread at one width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Thread index (position in the menu list).
    pub thread: usize,
    /// Functional units the code was compiled for.
    pub width: usize,
    /// Static code size in wide instructions.
    pub height: usize,
    /// Non-nop data operations (static).
    pub ops: usize,
}

impl Tile {
    /// Instruction-memory area the tile occupies.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// Fraction of the tile's slots holding useful operations.
    pub fn density(&self) -> f64 {
        if self.area() == 0 {
            0.0
        } else {
            self.ops as f64 / self.area() as f64
        }
    }
}

/// All width options generated for one thread.
#[derive(Debug, Clone)]
pub struct TileMenu {
    /// Thread index.
    pub thread: usize,
    /// The thread's name (function name).
    pub name: String,
    /// One tile per compiled width, ascending by width.
    pub options: Vec<Tile>,
}

impl TileMenu {
    /// The option with the given width.
    pub fn at_width(&self, width: usize) -> Option<&Tile> {
        self.options.iter().find(|t| t.width == width)
    }

    /// The option with the smallest area (the static-density optimum the
    /// Figure 13 example targets).
    ///
    /// # Panics
    ///
    /// Panics if the menu has no options.
    pub fn min_area(&self) -> &Tile {
        self.options
            .iter()
            .min_by_key(|t| (t.area(), t.width))
            .expect("non-empty menu")
    }

    /// The widest option (the latency-optimal choice a time-oriented packer
    /// would pick).
    ///
    /// # Panics
    ///
    /// Panics if the menu has no options.
    pub fn widest(&self) -> &Tile {
        self.options
            .iter()
            .max_by_key(|t| t.width)
            .expect("non-empty menu")
    }
}

/// Compiles an IR function at each width in `widths`, producing its tile
/// menu.
///
/// # Errors
///
/// Propagates compilation errors from any width.
pub fn tiles_for_function(
    thread: usize,
    func: &Function,
    widths: &[usize],
) -> Result<TileMenu, CompileError> {
    let mut options = Vec::with_capacity(widths.len());
    for &w in widths {
        let compiled = compile_function(func, w)?;
        options.push(Tile {
            thread,
            width: w,
            height: compiled.vliw.len(),
            ops: compiled.vliw.static_ops(),
        });
    }
    options.sort_by_key(|t| t.width);
    Ok(TileMenu {
        thread,
        name: func.name.clone(),
        options,
    })
}

/// Parses a mini-C program and builds one tile menu per function, in
/// source order — the "separated into individual program threads" step of
/// Figure 13.
///
/// # Errors
///
/// Propagates frontend and backend errors.
///
/// # Example
///
/// ```
/// let menus = ximd_compiler::tile::menus(
///     "fn a(x) { return x + 1; } fn b(x) { return x * x - x; }",
///     &[1, 2, 4],
/// )?;
/// assert_eq!(menus.len(), 2);
/// assert_eq!(menus[0].options.len(), 3);
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
pub fn menus(source: &str, widths: &[usize]) -> Result<Vec<TileMenu>, CompileError> {
    let ast = lang::parse(source)?;
    ast.fns
        .iter()
        .enumerate()
        .map(|(i, def)| tiles_for_function(i, &lower::lower(def)?, widths))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r"
fn narrow(a) {
    let s = 0;
    let i = 0;
    while (i < a) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
fn wide(a, b, c, d) {
    let e = a + b;
    let f = c + d;
    let g = a - b;
    let h = c - d;
    return (e + f) * (g + h);
}
";

    #[test]
    fn heights_shrink_or_hold_with_width() {
        let menus = menus(SRC, &[1, 2, 4, 8]).unwrap();
        for menu in &menus {
            let heights: Vec<usize> = menu.options.iter().map(|t| t.height).collect();
            for pair in heights.windows(2) {
                assert!(pair[1] <= pair[0], "{}: heights {heights:?}", menu.name);
            }
        }
    }

    #[test]
    fn ops_are_width_invariant() {
        // The same operations get scheduled regardless of width.
        let menus = menus(SRC, &[1, 2, 8]).unwrap();
        for menu in &menus {
            let ops: Vec<usize> = menu.options.iter().map(|t| t.ops).collect();
            assert!(
                ops.windows(2).all(|w| w[0] == w[1]),
                "{}: {ops:?}",
                menu.name
            );
        }
    }

    #[test]
    fn min_area_prefers_narrow_tiles_for_serial_code() {
        let menus = menus(SRC, &[1, 2, 4, 8]).unwrap();
        // `narrow` is a serial loop: wider machines waste slots, so the
        // min-area tile is narrow.
        let narrow = &menus[0];
        assert!(narrow.min_area().width <= 2, "{:?}", narrow.options);
    }

    #[test]
    fn density_bounded_by_one() {
        for menu in menus(SRC, &[1, 2, 4]).unwrap() {
            for t in &menu.options {
                assert!(t.density() <= 1.0 && t.density() > 0.0);
            }
        }
    }

    #[test]
    fn at_width_and_widest() {
        let menus = menus(SRC, &[2, 4]).unwrap();
        assert_eq!(menus[1].at_width(4).unwrap().width, 4);
        assert!(menus[1].at_width(3).is_none());
        assert_eq!(menus[1].widest().width, 4);
    }
}
