//! Per-block dependence DAGs.
//!
//! Edge latencies encode the machine's timing model:
//!
//! * **RAW** (true dependence): the consumer must issue at least one cycle
//!   after the producer — register writes commit at end of cycle.
//! * **WAR** (anti dependence): latency 0 — a write may share the reader's
//!   cycle because reads observe start-of-cycle state.
//! * **WAW** (output dependence): latency 1 — two same-cycle writes to one
//!   register are a machine check.
//! * Memory edges are conservative (no alias analysis): load-after-store
//!   and store-after-store are latency 1; store-after-load is latency 0.
//!
//! The block terminator's comparison (if any) is a DAG node like any other;
//! the *branch* itself is handled by the scheduler, which places it one
//! cycle after the compare (condition codes are latched).

use ximd_isa::CmpOp;

use crate::ir::{Block, Terminator, VReg, Val};

/// A schedulable node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Node {
    /// A block instruction (by index into `block.insts`).
    Inst(usize),
    /// The terminator's comparison.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
}

/// A dependence DAG over one block.
#[derive(Debug, Clone)]
pub struct Dag {
    /// The nodes; the `Cmp` node (if present) is last.
    pub nodes: Vec<Node>,
    /// `succs[i]` = `(j, latency)`: node `j` must issue ≥ `latency` cycles
    /// after node `i`.
    pub succs: Vec<Vec<(usize, u32)>>,
    /// Transposed edges.
    pub preds: Vec<Vec<(usize, u32)>>,
}

impl Dag {
    /// Builds the DAG for `block`, taking `insts` from it in order.
    pub fn build(block: &Block) -> Dag {
        let mut nodes: Vec<Node> = (0..block.insts.len()).map(Node::Inst).collect();
        if let Terminator::Branch { op, a, b, .. } = block.term {
            nodes.push(Node::Cmp { op, a, b });
        }
        let n = nodes.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];

        let reads = |node: &Node| -> Vec<VReg> {
            match node {
                Node::Inst(i) => block.insts[*i].sources(),
                Node::Cmp { a, b, .. } => [a, b].iter().filter_map(|v| v.reg()).collect(),
            }
        };
        let writes = |node: &Node| -> Option<VReg> {
            match node {
                Node::Inst(i) => block.insts[*i].dest(),
                Node::Cmp { .. } => None,
            }
        };
        let mem_kind = |node: &Node| -> Option<bool /* is_store */> {
            match node {
                Node::Inst(i) => {
                    let inst = &block.insts[*i];
                    inst.touches_memory().then(|| inst.is_store())
                }
                Node::Cmp { .. } => None,
            }
        };

        let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>,
                        preds: &mut Vec<Vec<(usize, u32)>>,
                        from: usize,
                        to: usize,
                        lat: u32| {
            // Keep only the strongest constraint per pair.
            if let Some(e) = succs[from].iter_mut().find(|(t, _)| *t == to) {
                e.1 = e.1.max(lat);
                if let Some(p) = preds[to].iter_mut().find(|(s, _)| *s == from) {
                    p.1 = p.1.max(lat);
                }
                return;
            }
            succs[from].push((to, lat));
            preds[to].push((from, lat));
        };

        for i in 0..n {
            for j in (i + 1)..n {
                let mut lat: Option<u32> = None;
                // RAW: j reads what i writes.
                if let Some(d) = writes(&nodes[i]) {
                    if reads(&nodes[j]).contains(&d) {
                        lat = Some(lat.map_or(1, |l: u32| l.max(1)));
                    }
                    // WAW.
                    if writes(&nodes[j]) == Some(d) {
                        lat = Some(lat.map_or(1, |l: u32| l.max(1)));
                    }
                }
                // WAR: j writes what i reads.
                if let Some(dj) = writes(&nodes[j]) {
                    if reads(&nodes[i]).contains(&dj) {
                        lat = Some(lat.unwrap_or(0));
                    }
                }
                // Memory (conservative).
                if let (Some(si), Some(sj)) = (mem_kind(&nodes[i]), mem_kind(&nodes[j])) {
                    match (si, sj) {
                        (true, false) => lat = Some(lat.map_or(1, |l: u32| l.max(1))), // load after store
                        (true, true) => lat = Some(lat.map_or(1, |l: u32| l.max(1))), // store after store
                        (false, true) => lat = Some(lat.unwrap_or(0)), // store after load
                        (false, false) => {}                           // loads commute
                    }
                }
                if let Some(lat) = lat {
                    add_edge(&mut succs, &mut preds, i, j, lat);
                }
            }
        }
        Dag {
            nodes,
            succs,
            preds,
        }
    }

    /// Critical-path height of each node (longest latency path to any
    /// sink), used as list-scheduling priority.
    pub fn heights(&self) -> Vec<u32> {
        let n = self.nodes.len();
        let mut h = vec![0u32; n];
        // Nodes are in topological order by construction (edges go forward).
        for i in (0..n).rev() {
            for &(j, lat) in &self.succs[i] {
                h[i] = h[i].max(lat + h[j]);
            }
        }
        h
    }

    /// The index of the `Cmp` node, if the block ends in a branch.
    pub fn cmp_node(&self) -> Option<usize> {
        match self.nodes.last() {
            Some(Node::Cmp { .. }) => Some(self.nodes.len() - 1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BlockId, Inst};
    use ximd_isa::AluOp;

    fn v(i: u32) -> VReg {
        VReg(i)
    }

    fn bin(a: Val, b: Val, d: VReg) -> Inst {
        Inst::Bin {
            op: AluOp::Iadd,
            a,
            b,
            d,
        }
    }

    #[test]
    fn raw_edge_has_latency_one() {
        let block = Block {
            insts: vec![
                bin(v(0).into(), Val::Const(1), v(1)),
                bin(v(1).into(), Val::Const(2), v(2)),
            ],
            term: Terminator::Return(None),
        };
        let dag = Dag::build(&block);
        assert_eq!(dag.succs[0], vec![(1, 1)]);
    }

    #[test]
    fn war_edge_has_latency_zero() {
        // i0 reads v1; i1 writes v1 — may share a cycle.
        let block = Block {
            insts: vec![
                bin(v(1).into(), Val::Const(1), v(2)),
                bin(v(0).into(), Val::Const(2), v(1)),
            ],
            term: Terminator::Return(None),
        };
        let dag = Dag::build(&block);
        assert_eq!(dag.succs[0], vec![(1, 0)]);
    }

    #[test]
    fn waw_edge_has_latency_one() {
        let block = Block {
            insts: vec![
                bin(v(0).into(), Val::Const(1), v(1)),
                bin(v(0).into(), Val::Const(2), v(1)),
            ],
            term: Terminator::Return(None),
        };
        let dag = Dag::build(&block);
        assert_eq!(dag.succs[0], vec![(1, 1)]);
    }

    #[test]
    fn memory_edges_are_conservative() {
        let block = Block {
            insts: vec![
                Inst::Store {
                    val: v(0).into(),
                    addr: Val::Const(10),
                },
                Inst::Load {
                    base: Val::Const(20),
                    off: Val::Const(0),
                    d: v(1),
                },
                Inst::Store {
                    val: v(0).into(),
                    addr: Val::Const(30),
                },
            ],
            term: Terminator::Return(None),
        };
        let dag = Dag::build(&block);
        // store -> load latency 1 (even though addresses differ: no alias
        // analysis), store -> store latency 1, load -> store latency 0.
        assert!(dag.succs[0].contains(&(1, 1)));
        assert!(dag.succs[0].contains(&(2, 1)));
        assert!(dag.succs[1].contains(&(2, 0)));
    }

    #[test]
    fn independent_loads_commute() {
        let block = Block {
            insts: vec![
                Inst::Load {
                    base: Val::Const(10),
                    off: Val::Const(0),
                    d: v(0),
                },
                Inst::Load {
                    base: Val::Const(20),
                    off: Val::Const(0),
                    d: v(1),
                },
            ],
            term: Terminator::Return(None),
        };
        let dag = Dag::build(&block);
        assert!(dag.succs[0].is_empty());
    }

    #[test]
    fn cmp_node_depends_on_operand_defs() {
        let block = Block {
            insts: vec![bin(v(0).into(), Val::Const(1), v(1))],
            term: Terminator::Branch {
                op: CmpOp::Lt,
                a: v(1).into(),
                b: Val::Const(5),
                then_bb: BlockId(0),
                else_bb: BlockId(0),
            },
        };
        let dag = Dag::build(&block);
        let cmp = dag.cmp_node().unwrap();
        assert_eq!(cmp, 1);
        assert!(dag.succs[0].contains(&(cmp, 1)));
    }

    #[test]
    fn heights_reflect_critical_path() {
        // Chain of three RAW deps: heights 2, 1, 0.
        let block = Block {
            insts: vec![
                bin(v(0).into(), Val::Const(1), v(1)),
                bin(v(1).into(), Val::Const(1), v(2)),
                bin(v(2).into(), Val::Const(1), v(3)),
            ],
            term: Terminator::Return(None),
        };
        let dag = Dag::build(&block);
        assert_eq!(dag.heights(), vec![2, 1, 0]);
    }
}
