//! Compiler substrate for the XIMD workspace.
//!
//! The paper's evaluation relies on "a retargetable VLIW compiler … based on
//! GNU C, \[incorporating\] an expanded version of Percolation Scheduling,
//! Software Pipelining, and run-time disambiguation", which compiles each
//! program thread "several times with varying resource constraints" to
//! produce *tiles* that a packing algorithm then places into instruction
//! memory (Figure 13). That compiler was never released; this crate is the
//! workspace's substitute, built from scratch:
//!
//! * [`lang`] — a mini-C frontend (functions, integers, `mem[...]` accesses,
//!   `if`/`while`, comparisons as branch conditions);
//! * [`ir`] — a three-address IR over virtual registers with explicit
//!   basic-block terminators;
//! * [`cfg`](mod@cfg) — control-flow analysis (predecessors, reverse postorder,
//!   dominators, natural loops);
//! * [`liveness`] — backward live-variable analysis;
//! * [`dag`] — per-block dependence DAGs with the machine's same-cycle
//!   read-old-value semantics encoded as edge latencies;
//! * [`schedule`] — critical-path list scheduling into wide instructions for
//!   any functional-unit width;
//! * [`percolate`] — upward code motion into empty predecessor slots
//!   (a restricted Percolation Scheduling);
//! * [`pipeline`] — modulo scheduling (software pipelining) for
//!   single-block loops;
//! * [`regalloc`] — virtual-to-architectural register assignment;
//! * [`codegen`] — end-to-end compilation to [`ximd_sim::VliwProgram`]
//!   (which lowers to XIMD form via `to_ximd`);
//! * [`tile`] / [`pack`] — per-width tile generation and the instruction-
//!   memory packing experiment of Figure 13;
//! * [`ximdgen`] — multi-thread XIMD code generation: separately compiled
//!   threads on disjoint FU columns, joined by an `ALL-SS` barrier.
//!
//! # Example
//!
//! ```
//! use ximd_compiler::compile;
//!
//! let source = r"
//! fn triple(x) {
//!     return x + x + x;
//! }
//! ";
//! let compiled = compile(source, 4)?;
//! assert_eq!(compiled.run_vliw(&[14])?, Some(42));
//! # Ok::<(), ximd_compiler::CompileError>(())
//! ```

pub mod autopipeline;
pub mod cfg;
pub mod codegen;
pub mod dag;
pub mod error;
pub mod forkjoin;
pub mod ir;
pub mod lang;
pub mod liveness;
pub mod lower;
pub mod pack;
pub mod percolate;
pub mod pipeline;
pub mod regalloc;
pub mod schedule;
pub mod suite;
pub mod tile;
pub mod ximdgen;

pub use codegen::{compile, compile_function, compile_named, CompiledFunction};
pub use error::CompileError;
