//! Control-flow graph analyses: predecessors, reverse postorder,
//! dominators (Cooper–Harvey–Kennedy) and natural loops.

use std::collections::HashSet;

use crate::ir::{BlockId, Function};

/// Derived CFG facts for one function.
///
/// # Example
///
/// ```
/// use ximd_compiler::{cfg::Cfg, lang, lower};
///
/// let ast = lang::parse("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }")?;
/// let func = lower::lower(&ast.fns[0])?;
/// let cfg = Cfg::build(&func);
/// assert_eq!(cfg.loops().len(), 1);
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    /// Immediate dominator per block (`None` for entry and unreachable).
    idom: Vec<Option<BlockId>>,
    loops: Vec<NaturalLoop>,
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// The source of the back edge (the latch).
    pub latch: BlockId,
    /// All blocks in the loop body, header included.
    pub body: Vec<BlockId>,
}

impl Cfg {
    /// Builds all CFG facts for `func`.
    pub fn build(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, block) in func.blocks.iter().enumerate() {
            for s in block.term.successors() {
                succs[i].push(s);
                preds[s.0].push(BlockId(i));
            }
        }

        // Postorder DFS from entry.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        fn dfs(b: BlockId, succs: &[Vec<BlockId>], visited: &mut [bool], out: &mut Vec<BlockId>) {
            visited[b.0] = true;
            for &s in &succs[b.0] {
                if !visited[s.0] {
                    dfs(s, succs, visited, out);
                }
            }
            out.push(b);
        }
        dfs(func.entry, &succs, &mut visited, &mut postorder);
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();

        // Dominators (Cooper-Harvey-Kennedy over RPO).
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[func.entry.0] = Some(func.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0] {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &rpo_index),
                    });
                }
                if let Some(nd) = new_idom {
                    if idom[b.0] != Some(nd) {
                        idom[b.0] = Some(nd);
                        changed = true;
                    }
                }
            }
        }
        fn intersect(
            mut a: BlockId,
            mut b: BlockId,
            idom: &[Option<BlockId>],
            rpo_index: &[usize],
        ) -> BlockId {
            while a != b {
                while rpo_index[a.0] > rpo_index[b.0] {
                    a = idom[a.0].expect("processed");
                }
                while rpo_index[b.0] > rpo_index[a.0] {
                    b = idom[b.0].expect("processed");
                }
            }
            a
        }
        // Entry's idom is conventionally itself internally; expose None.
        let mut exposed_idom = idom.clone();
        exposed_idom[func.entry.0] = None;

        // Natural loops: back edge latch -> header where header dominates
        // latch.
        let dominates = |a: BlockId, mut b: BlockId| -> bool {
            loop {
                if a == b {
                    return true;
                }
                match idom[b.0] {
                    Some(d) if d != b => b = d,
                    _ => return false,
                }
            }
        };
        let mut loops = Vec::new();
        for (i, ss) in succs.iter().enumerate() {
            let latch = BlockId(i);
            if !visited[i] {
                continue;
            }
            for &header in ss {
                if dominates(header, latch) {
                    // Collect body by backward walk from latch to header.
                    let mut body: HashSet<BlockId> = [header, latch].into_iter().collect();
                    let mut stack = vec![latch];
                    while let Some(b) = stack.pop() {
                        for &p in &preds[b.0] {
                            if b != header && body.insert(p) {
                                stack.push(p);
                            }
                        }
                    }
                    let mut body: Vec<BlockId> = body.into_iter().collect();
                    body.sort();
                    loops.push(NaturalLoop {
                        header,
                        latch,
                        body,
                    });
                }
            }
        }
        loops.sort_by_key(|l| (l.header, l.latch));

        Cfg {
            preds,
            succs,
            rpo,
            idom: exposed_idom,
            loops,
        }
    }

    /// Predecessors of a block.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0]
    }

    /// Successors of a block.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0]
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Immediate dominator (`None` for the entry and unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0]
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, mut b: BlockId) -> bool {
        loop {
            if a == b {
                return true;
            }
            match self.idom(b) {
                Some(d) => b = d,
                None => return false,
            }
        }
    }

    /// Natural loops sorted by (header, latch).
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Function;
    use crate::lang::parse;
    use crate::lower::lower;

    fn build(src: &str) -> (Function, Cfg) {
        let func = lower(&parse(src).unwrap().fns[0]).unwrap();
        let cfg = Cfg::build(&func);
        (func, cfg)
    }

    #[test]
    fn straight_line_has_one_block() {
        let (_, cfg) = build("fn f(a) { return a; }");
        assert_eq!(cfg.rpo().len(), 1);
        assert!(cfg.loops().is_empty());
        assert_eq!(cfg.idom(BlockId(0)), None);
    }

    #[test]
    fn diamond_dominators() {
        let (f, cfg) =
            build("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        let entry = f.entry;
        // All blocks dominated by entry; join's idom is entry.
        for b in cfg.rpo() {
            assert!(cfg.dominates(entry, *b));
        }
        let join = BlockId(3);
        assert_eq!(cfg.idom(join), Some(entry));
        assert_eq!(cfg.preds(join).len(), 2);
    }

    #[test]
    fn while_loop_discovered() {
        let (_, cfg) = build("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }");
        assert_eq!(cfg.loops().len(), 1);
        let l = &cfg.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(2));
        assert_eq!(l.body, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn nested_loops_discovered() {
        let (_, cfg) = build(
            "fn f(n) { let i = 0; while (i < n) { let j = 0; while (j < n) { j = j + 1; } i = i + 1; } return i; }",
        );
        assert_eq!(cfg.loops().len(), 2);
        // One loop body contains the other's header.
        let bodies: Vec<&Vec<BlockId>> = cfg.loops().iter().map(|l| &l.body).collect();
        let (small, big) = if bodies[0].len() < bodies[1].len() {
            (bodies[0], bodies[1])
        } else {
            (bodies[1], bodies[0])
        };
        assert!(small.iter().all(|b| big.contains(b)));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (f, cfg) = build("fn f(a) { if (a > 0) { mem[0] = 1; } return a; }");
        assert_eq!(cfg.rpo()[0], f.entry);
    }
}
