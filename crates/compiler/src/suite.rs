//! Canonical compiler-emitted workload suite.
//!
//! Five small mini-C programs exercised end-to-end across the workspace:
//! emitted as assembly with schedule certificates (`compile_and_tile`),
//! certified in CI (`xlint --certify`), and measured for schedule quality
//! in xbench. Two pipeline through the modulo scheduler; three keep the
//! plain block-scheduled shape (branchy control flow does not pipeline).

use crate::autopipeline::compile_pipelined;
use crate::codegen::{compile, CompiledFunction};
use crate::error::CompileError;

/// One named workload of the suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteWorkload {
    /// Short name used for emitted file stems and table rows.
    pub name: &'static str,
    /// Mini-C source (single function).
    pub source: &'static str,
    /// Whether the workload is compiled through the software pipeliner.
    pub pipelined: bool,
}

impl SuiteWorkload {
    /// Compiles at the given width, returning the achieved initiation
    /// interval for pipelined workloads.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] on frontend or backend failure.
    pub fn compile(&self, width: usize) -> Result<(CompiledFunction, Option<u32>), CompileError> {
        if self.pipelined {
            compile_pipelined(self.source, width)
        } else {
            compile(self.source, width).map(|f| (f, None))
        }
    }
}

/// SAXPY inner loop: `y[i] = a * x[i] + y[i]` (Livermore-style streams).
pub const SAXPY: SuiteWorkload = SuiteWorkload {
    name: "saxpy",
    source: r"
fn saxpy(a, n) {
    let i = 0;
    while (i < n) {
        mem[3000 + i] = a * mem[1000 + i] + mem[2000 + i];
        i = i + 1;
    }
    return 0;
}
",
    pipelined: true,
};

/// Livermore Loop 12: first difference, `x[i] = y[i+1] - y[i]`.
pub const LIVERMORE: SuiteWorkload = SuiteWorkload {
    name: "livermore",
    source: r"
fn ll12(n) {
    let i = 1;
    while (i <= n) {
        mem[4999 + i] = mem[3000 + i] - mem[2999 + i];
        i = i + 1;
    }
    return 0;
}
",
    pipelined: true,
};

/// Running min/max over a memory window (branchy loop body).
pub const MINMAX: SuiteWorkload = SuiteWorkload {
    name: "minmax",
    source: r"
fn minmax(n) {
    let i = 0;
    let lo = mem[1000];
    let hi = mem[1000];
    while (i < n) {
        let v = mem[1000 + i];
        if (v < lo) { lo = v; }
        if (v > hi) { hi = v; }
        i = i + 1;
    }
    mem[2000] = lo;
    mem[2001] = hi;
    return hi - lo;
}
",
    pipelined: false,
};

/// Population count via shift-and-mask (nested while).
pub const BITCOUNT: SuiteWorkload = SuiteWorkload {
    name: "bitcount",
    source: r"
fn bitcount(n) {
    let i = 0;
    let total = 0;
    while (i < n) {
        let w = mem[1000 + i];
        let c = 0;
        while (w != 0) {
            c = c + (w & 1);
            w = w >> 1;
        }
        mem[2000 + i] = c;
        total = total + c;
        i = i + 1;
    }
    return total;
}
",
    pipelined: false,
};

/// Text transform: uppercase ASCII letters, copy everything else.
pub const TPROC: SuiteWorkload = SuiteWorkload {
    name: "tproc",
    source: r"
fn tproc(n) {
    let i = 0;
    let changed = 0;
    while (i < n) {
        let c = mem[1000 + i];
        if (c >= 97) {
            if (c <= 122) {
                c = c - 32;
                changed = changed + 1;
            }
        }
        mem[2000 + i] = c;
        i = i + 1;
    }
    return changed;
}
",
    pipelined: false,
};

/// All suite workloads, in canonical order.
pub const SUITE: [SuiteWorkload; 5] = [MINMAX, LIVERMORE, SAXPY, BITCOUNT, TPROC];

/// A diamond whose arms the percolator hoists speculatively — exercises
/// the certificate's speculation guards (`spec=` op annotations).
pub const HOISTED: SuiteWorkload = SuiteWorkload {
    name: "hoisted",
    source: r"
fn f(a) {
    let r = 0;
    if (a > 0) { r = a * 2; } else { r = 5; }
    return r;
}
",
    pipelined: false,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_compiles_and_pipelines_as_annotated() {
        for w in SUITE {
            let (f, ii) = w.compile(4).unwrap();
            assert!(f.cert.is_some(), "{} must carry a certificate", w.name);
            assert_eq!(
                ii.is_some(),
                w.pipelined,
                "{} pipelining annotation",
                w.name
            );
        }
    }

    #[test]
    fn suite_workloads_run_correctly() {
        let (f, _) = SAXPY.compile(4).unwrap();
        let (ret, _) = f
            .run_vliw_with(&[3, 4], 100_000, |sim| {
                sim.mem_mut().poke_slice(1000, &[1, 2, 3, 4]).unwrap();
                sim.mem_mut().poke_slice(2000, &[10, 10, 10, 10]).unwrap();
            })
            .unwrap();
        assert_eq!(ret, Some(0));

        let (f, _) = MINMAX.compile(4).unwrap();
        let (ret, _) = f
            .run_vliw_with(&[5], 100_000, |sim| {
                sim.mem_mut().poke_slice(1000, &[3, -7, 12, 0, 5]).unwrap();
            })
            .unwrap();
        assert_eq!(ret, Some(19));

        let (f, _) = BITCOUNT.compile(4).unwrap();
        let (ret, _) = f
            .run_vliw_with(&[3], 100_000, |sim| {
                sim.mem_mut().poke_slice(1000, &[7, 0, 255]).unwrap();
            })
            .unwrap();
        assert_eq!(ret, Some(11));

        let (f, _) = TPROC.compile(4).unwrap();
        let (ret, _) = f
            .run_vliw_with(&[3], 100_000, |sim| {
                // 'a', 'A', 'z'
                sim.mem_mut().poke_slice(1000, &[97, 65, 122]).unwrap();
            })
            .unwrap();
        assert_eq!(ret, Some(2));
    }
}
