//! XIMD multi-thread code generation.
//!
//! The paper's compilation strategy (Figure 13 and §1.4) splits a program
//! into threads, compiles each thread for some number of functional units,
//! and runs them *concurrently* as separate instruction streams — "XIMD can
//! potentially exploit medium-grained and coarse-grained parallelism as
//! well". This module performs the runtime half of that plan:
//! [`combine_threads`] takes separately compiled functions and emits one
//! XIMD program in which thread *t* owns a contiguous range of FU columns
//! and a private block of architectural registers, all threads launch from
//! a shared dispatch word at `00:`, and (optionally) re-join at a final
//! `ALL-SS` barrier before halting together.
//!
//! The result is directly comparable against running the same threads
//! back-to-back on a VLIW machine — the coarse-grain ablation in the
//! benchmark harness.

use ximd_isa::{
    Addr, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Program, Reg, SyncSignal,
};

use crate::codegen::CompiledFunction;
use crate::error::CompileError;

/// How the combined threads terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Join {
    /// Each thread halts its own FUs when done (MIMD-style).
    Halt,
    /// Threads spin at a shared `ALL-SS` barrier and halt together
    /// (fork/join-style, the paper's §3.3 mechanism).
    #[default]
    Barrier,
}

/// One thread of a combined program: where it lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadLayout {
    /// First FU column the thread owns.
    pub fu_base: usize,
    /// Number of FU columns.
    pub width: usize,
    /// First instruction address of the thread's code.
    pub entry: Addr,
    /// Architectural-register offset added to the thread's registers.
    pub reg_base: u16,
    /// The thread's parameter registers, post-offset.
    pub param_regs: Vec<Reg>,
    /// The thread's return register, post-offset.
    pub ret_reg: Option<Reg>,
}

/// A combined multi-thread XIMD program.
#[derive(Debug, Clone)]
pub struct CombinedProgram {
    /// The executable program.
    pub program: Program,
    /// Per-thread layout (same order as the input functions).
    pub threads: Vec<ThreadLayout>,
    /// Total machine width used.
    pub width: usize,
}

fn offset_reg(r: Reg, base: u16) -> Reg {
    Reg(r.0 + base)
}

fn offset_operand(o: Operand, base: u16) -> Operand {
    match o {
        Operand::Reg(r) => Operand::Reg(offset_reg(r, base)),
        imm @ Operand::Imm(_) => imm,
    }
}

fn offset_data(op: &DataOp, base: u16) -> DataOp {
    match *op {
        DataOp::Nop => DataOp::Nop,
        DataOp::Alu { op, a, b, d } => DataOp::Alu {
            op,
            a: offset_operand(a, base),
            b: offset_operand(b, base),
            d: offset_reg(d, base),
        },
        DataOp::Un { op, a, d } => DataOp::Un {
            op,
            a: offset_operand(a, base),
            d: offset_reg(d, base),
        },
        DataOp::Cmp { op, a, b } => DataOp::Cmp {
            op,
            a: offset_operand(a, base),
            b: offset_operand(b, base),
        },
        DataOp::Load { a, b, d } => DataOp::Load {
            a: offset_operand(a, base),
            b: offset_operand(b, base),
            d: offset_reg(d, base),
        },
        DataOp::Store { a, b } => DataOp::Store {
            a: offset_operand(a, base),
            b: offset_operand(b, base),
        },
        DataOp::PortIn { port, d } => DataOp::PortIn {
            port,
            d: offset_reg(d, base),
        },
        DataOp::PortOut { port, a } => DataOp::PortOut {
            port,
            a: offset_operand(a, base),
        },
    }
}

/// Combines separately compiled threads into one XIMD program.
///
/// Thread *t* occupies FU columns `[fu_base_t, fu_base_t + width_t)` (packed
/// left to right in input order) and registers offset so that no two
/// threads share architectural state. Address `00:` is a dispatch word
/// sending every column to its thread's entry; each thread's internal
/// branch targets and condition-code references are rebased accordingly.
///
/// Memory is *shared and not remapped* — as on the real machine, threads
/// that write memory must use disjoint regions (or intentional sharing).
///
/// # Errors
///
/// Returns [`CompileError::Schedule`] if the threads need more FU columns
/// than `machine_width`, or [`CompileError::OutOfRegisters`] if their
/// register blocks exceed the register file.
pub fn combine_threads(
    threads: &[&CompiledFunction],
    machine_width: usize,
    join: Join,
) -> Result<CombinedProgram, CompileError> {
    let total_width: usize = threads.iter().map(|t| t.width).sum();
    if total_width > machine_width {
        return Err(CompileError::Schedule(format!(
            "threads need {total_width} functional units, machine has {machine_width}"
        )));
    }

    // Register blocks.
    let mut reg_bases: Vec<u16> = Vec::with_capacity(threads.len());
    let mut next_reg: u32 = 0;
    for t in threads {
        reg_bases.push(next_reg as u16);
        let used = t
            .vliw
            .iter()
            .flat_map(|(_, i)| i.ops.iter())
            .flat_map(|op| {
                op.sources()
                    .into_iter()
                    .chain(op.dest())
                    .map(|r| r.0 as u32 + 1)
            })
            .max()
            .unwrap_or(0);
        next_reg += used;
    }
    if next_reg as usize > ximd_isa::XIMD1_NUM_REGS {
        return Err(CompileError::OutOfRegisters {
            needed: next_reg as usize,
            available: ximd_isa::XIMD1_NUM_REGS,
        });
    }

    // Address layout: dispatch word at 0, then thread bodies, then the
    // optional barrier + halt words.
    let mut entries: Vec<Addr> = Vec::with_capacity(threads.len());
    let mut next_addr = 1u32;
    for t in threads {
        entries.push(Addr(next_addr));
        next_addr += t.vliw.len() as u32;
    }
    let barrier_addr = Addr(next_addr);
    let end_addr = Addr(next_addr + 1);
    let len = match join {
        Join::Halt => next_addr,
        Join::Barrier => next_addr + 2,
    };

    // Build instruction memory filled with inert parcels.
    let mut words: Vec<Vec<Parcel>> = vec![vec![Parcel::halt(); machine_width]; len as usize];

    // Dispatch word: every owned column jumps to its thread's entry.
    let mut fu_base = 0usize;
    let mut layouts = Vec::with_capacity(threads.len());
    for (ti, t) in threads.iter().enumerate() {
        let entry = entries[ti];
        words[0][fu_base..fu_base + t.width].fill(Parcel::goto(entry));

        // Thread body.
        for (addr, instr) in t.vliw.iter() {
            let row = (entry.0 + addr.0) as usize;
            let rebase_target = |a: Addr| Addr(entry.0 + a.0);
            let ctrl = match instr.ctrl {
                ControlOp::Goto(a) => ControlOp::Goto(rebase_target(a)),
                ControlOp::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    let cond = match cond {
                        CondSource::Cc(f) => CondSource::Cc(FuId(f.0 + fu_base as u8)),
                        other => other,
                    };
                    ControlOp::Branch {
                        cond,
                        taken: rebase_target(taken),
                        not_taken: rebase_target(not_taken),
                    }
                }
                ControlOp::Halt => match join {
                    Join::Halt => ControlOp::Halt,
                    Join::Barrier => ControlOp::Goto(barrier_addr),
                },
            };
            for (i, op) in instr.ops.iter().enumerate() {
                words[row][fu_base + i] = Parcel {
                    data: offset_data(op, reg_bases[ti]),
                    ctrl,
                    sync: SyncSignal::Busy,
                };
            }
        }

        layouts.push(ThreadLayout {
            fu_base,
            width: t.width,
            entry,
            reg_base: reg_bases[ti],
            param_regs: t
                .param_regs
                .iter()
                .map(|&r| offset_reg(r, reg_bases[ti]))
                .collect(),
            ret_reg: t.ret_reg.map(|r| offset_reg(r, reg_bases[ti])),
        });
        fu_base += t.width;
    }

    if join == Join::Barrier {
        // Barrier word: owned columns spin exporting DONE; unowned columns
        // are already DONE-by-halt... a halted FU holds its last sync value,
        // which defaults to BUSY — so unowned columns must halt *exporting
        // DONE* at dispatch or the barrier never opens.
        words[0][total_width..machine_width].fill(Parcel::halt().done());
        let spin = Parcel {
            data: DataOp::Nop,
            ctrl: ControlOp::branch(CondSource::AllSync, end_addr, barrier_addr),
            sync: SyncSignal::Done,
        };
        words[barrier_addr.index()][..total_width].fill(spin);
        // End word: halt everyone, still exporting DONE (halted FUs hold
        // their last value, keeping the release condition stable).
        words[end_addr.index()][..total_width].fill(Parcel::halt().done());
    }

    let mut program = Program::new(machine_width);
    for word in words {
        program.push(word);
    }
    program
        .validate(ximd_isa::XIMD1_NUM_REGS)
        .map_err(|e| CompileError::Schedule(format!("combined program invalid: {e}")))?;

    Ok(CombinedProgram {
        program,
        threads: layouts,
        width: machine_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile_named;
    use ximd_sim::{MachineConfig, Vsim, Xsim};

    const SRC: &str = r"
fn sum(n) {
    let s = 0;
    let i = 1;
    while (i <= n) { s = s + i; i = i + 1; }
    return s;
}
fn fib(n) {
    let a = 0;
    let b = 1;
    let i = 0;
    while (i < n) { let t = a + b; a = b; b = t; i = i + 1; }
    return a;
}
fn doubler(n) {
    let i = 0;
    while (i < n) { mem[900 + i] = mem[800 + i] * 2; i = i + 1; }
    return 0;
}
";

    fn compiled(name: &str, width: usize) -> CompiledFunction {
        compile_named(SRC, name, width).unwrap()
    }

    #[test]
    fn two_threads_run_concurrently_with_barrier() {
        let sum = compiled("sum", 2);
        let fib = compiled("fib", 2);
        let combined = combine_threads(&[&sum, &fib], 4, Join::Barrier).unwrap();

        let mut sim = Xsim::new(combined.program.clone(), MachineConfig::with_width(4)).unwrap();
        sim.write_reg(combined.threads[0].param_regs[0], 10i32.into());
        sim.write_reg(combined.threads[1].param_regs[0], 11i32.into());
        sim.enable_trace();
        let summary = sim.run(100_000).unwrap();

        assert_eq!(sim.reg(combined.threads[0].ret_reg.unwrap()).as_i32(), 55);
        assert_eq!(sim.reg(combined.threads[1].ret_reg.unwrap()).as_i32(), 89);
        // Concurrency: the two threads form distinct streams.
        assert!(sim.trace().unwrap().max_streams() >= 2);
        assert!(sim.all_halted());

        // Cost is near max of the two, not the sum.
        let solo = |f: &CompiledFunction, arg: i32| {
            let mut s = Vsim::new(f.vliw.clone(), MachineConfig::with_width(f.width)).unwrap();
            s.write_reg(f.param_regs[0], arg.into());
            s.run(100_000).unwrap().cycles
        };
        let (c1, c2) = (solo(&sum, 10), solo(&fib, 11));
        assert!(
            summary.cycles < c1 + c2,
            "combined {} should beat sequential {}",
            summary.cycles,
            c1 + c2
        );
        // Dispatch + barrier overhead is small.
        assert!(
            summary.cycles <= c1.max(c2) + 4,
            "combined {} vs max {}",
            summary.cycles,
            c1.max(c2)
        );
    }

    #[test]
    fn halt_join_leaves_threads_independent() {
        let sum = compiled("sum", 1);
        let fib = compiled("fib", 1);
        let combined = combine_threads(&[&sum, &fib], 2, Join::Halt).unwrap();
        let mut sim = Xsim::new(combined.program.clone(), MachineConfig::with_width(2)).unwrap();
        sim.write_reg(combined.threads[0].param_regs[0], 4i32.into());
        sim.write_reg(combined.threads[1].param_regs[0], 7i32.into());
        sim.run(100_000).unwrap();
        assert_eq!(sim.reg(combined.threads[0].ret_reg.unwrap()).as_i32(), 10);
        assert_eq!(sim.reg(combined.threads[1].ret_reg.unwrap()).as_i32(), 13);
    }

    #[test]
    fn three_threads_with_memory_regions() {
        let sum = compiled("sum", 2);
        let fib = compiled("fib", 2);
        let dbl = compiled("doubler", 2);
        let combined = combine_threads(&[&sum, &fib, &dbl], 8, Join::Barrier).unwrap();
        let mut sim = Xsim::new(combined.program.clone(), MachineConfig::ximd1()).unwrap();
        sim.write_reg(combined.threads[0].param_regs[0], 100i32.into());
        sim.write_reg(combined.threads[1].param_regs[0], 20i32.into());
        sim.write_reg(combined.threads[2].param_regs[0], 5i32.into());
        sim.mem_mut().poke_slice(800, &[1, 2, 3, 4, 5]).unwrap();
        sim.run(1_000_000).unwrap();
        assert_eq!(sim.reg(combined.threads[0].ret_reg.unwrap()).as_i32(), 5050);
        assert_eq!(sim.reg(combined.threads[1].ret_reg.unwrap()).as_i32(), 6765);
        assert_eq!(sim.mem().peek_slice(900, 5).unwrap(), vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn register_blocks_do_not_collide() {
        let a = compiled("sum", 1);
        let b = compiled("sum", 1);
        let combined = combine_threads(&[&a, &b], 2, Join::Barrier).unwrap();
        assert_ne!(
            combined.threads[0].param_regs[0],
            combined.threads[1].param_regs[0]
        );
        let mut sim = Xsim::new(combined.program.clone(), MachineConfig::with_width(2)).unwrap();
        sim.write_reg(combined.threads[0].param_regs[0], 3i32.into());
        sim.write_reg(combined.threads[1].param_regs[0], 4i32.into());
        sim.run(100_000).unwrap();
        assert_eq!(sim.reg(combined.threads[0].ret_reg.unwrap()).as_i32(), 6);
        assert_eq!(sim.reg(combined.threads[1].ret_reg.unwrap()).as_i32(), 10);
    }

    #[test]
    fn too_wide_is_rejected() {
        let a = compiled("sum", 4);
        let b = compiled("fib", 8);
        assert!(matches!(
            combine_threads(&[&a, &b], 8, Join::Barrier),
            Err(CompileError::Schedule(_))
        ));
    }

    #[test]
    fn unused_columns_do_not_block_the_barrier() {
        // 3 columns used of 8: the 5 unowned columns must export DONE or
        // the ALL-SS barrier would hang.
        let a = compiled("sum", 3);
        let combined = combine_threads(&[&a], 8, Join::Barrier).unwrap();
        let mut sim = Xsim::new(combined.program.clone(), MachineConfig::ximd1()).unwrap();
        sim.write_reg(combined.threads[0].param_regs[0], 6i32.into());
        sim.run(100_000).unwrap();
        assert!(sim.all_halted());
        assert_eq!(sim.reg(combined.threads[0].ret_reg.unwrap()).as_i32(), 21);
    }
}
