//! Backward live-variable analysis.
//!
//! Used by percolation (an op may only be hoisted above a branch if its
//! destination is dead on the branch's other path) and by register
//! assignment diagnostics.

use std::collections::HashSet;

use crate::cfg::Cfg;
use crate::ir::{BlockId, Function, VReg};

/// Per-block live-in / live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<VReg>>,
    live_out: Vec<HashSet<VReg>>,
}

impl Liveness {
    /// Computes liveness to a fixed point.
    ///
    /// # Example
    ///
    /// ```
    /// use ximd_compiler::{cfg::Cfg, lang, liveness::Liveness, lower};
    ///
    /// let ast = lang::parse("fn f(a) { let b = a + 1; return b; }")?;
    /// let func = lower::lower(&ast.fns[0])?;
    /// let cfg = Cfg::build(&func);
    /// let live = Liveness::compute(&func, &cfg);
    /// assert!(live.live_in(func.entry).contains(&func.params[0]));
    /// # Ok::<(), ximd_compiler::CompileError>(())
    /// ```
    pub fn compute(func: &Function, cfg: &Cfg) -> Liveness {
        let n = func.blocks.len();
        // Per-block use/def.
        let mut uses = vec![HashSet::new(); n];
        let mut defs = vec![HashSet::new(); n];
        for (i, block) in func.blocks.iter().enumerate() {
            for inst in &block.insts {
                for s in inst.sources() {
                    if !defs[i].contains(&s) {
                        uses[i].insert(s);
                    }
                }
                if let Some(d) = inst.dest() {
                    defs[i].insert(d);
                }
            }
            for s in block.term.sources() {
                if !defs[i].contains(&s) {
                    uses[i].insert(s);
                }
            }
        }

        let mut live_in = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse RPO for fast convergence.
            for &b in cfg.rpo().iter().rev() {
                let i = b.0;
                let mut out: HashSet<VReg> = HashSet::new();
                for &s in cfg.succs(b) {
                    out.extend(live_in[s.0].iter().copied());
                }
                let mut inn: HashSet<VReg> = uses[i].clone();
                inn.extend(out.difference(&defs[i]).copied());
                if inn != live_in[i] || out != live_out[i] {
                    live_in[i] = inn;
                    live_out[i] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live at block entry.
    pub fn live_in(&self, b: BlockId) -> &HashSet<VReg> {
        &self.live_in[b.0]
    }

    /// Registers live at block exit.
    pub fn live_out(&self, b: BlockId) -> &HashSet<VReg> {
        &self.live_out[b.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use crate::lower::lower;

    fn analyze(src: &str) -> (crate::ir::Function, Cfg, Liveness) {
        let func = lower(&parse(src).unwrap().fns[0]).unwrap();
        let cfg = Cfg::build(&func);
        let live = Liveness::compute(&func, &cfg);
        (func, cfg, live)
    }

    #[test]
    fn param_live_at_entry_when_used() {
        let (f, _, live) = analyze("fn f(a) { return a + 1; }");
        assert!(live.live_in(f.entry).contains(&f.params[0]));
    }

    #[test]
    fn unused_param_not_live() {
        let (f, _, live) = analyze("fn f(a, b) { return a; }");
        assert!(live.live_in(f.entry).contains(&f.params[0]));
        assert!(!live.live_in(f.entry).contains(&f.params[1]));
    }

    #[test]
    fn loop_carried_variable_live_around_loop() {
        let (f, cfg, live) =
            analyze("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }");
        // The register holding i is live-in at the loop header.
        let header = cfg.loops()[0].header;
        // i's vreg: the Copy dest in the entry block.
        let i_reg = f
            .block(f.entry)
            .insts
            .iter()
            .find_map(|x| x.dest())
            .unwrap();
        assert!(live.live_in(header).contains(&i_reg));
        assert!(live.live_out(cfg.loops()[0].latch).contains(&i_reg));
    }

    #[test]
    fn branch_sources_are_live() {
        let (f, _, live) = analyze("fn f(a, b) { if (a < b) { mem[0] = 1; } return 0; }");
        let ins = live.live_in(f.entry);
        assert!(ins.contains(&f.params[0]));
        assert!(ins.contains(&f.params[1]));
    }

    #[test]
    fn dead_after_last_use() {
        let (f, cfg, live) = analyze("fn f(a) { let t = a * 2; mem[0] = t; return 0; }");
        // Nothing is live out of the (single, returning) entry block.
        assert!(live.live_out(f.entry).is_empty());
        let _ = cfg;
    }
}
