//! Virtual-to-architectural register assignment.
//!
//! XIMD-1's 256-entry global register file dwarfs the register pressure of
//! the paper's workloads, so the allocator is a direct map: virtual register
//! `vN` → architectural `rN`, with a capacity check. (A colouring allocator
//! would only matter for functions with >256 simultaneously-live values,
//! which the mini-C frontend cannot produce at realistic sizes.)

use std::collections::HashMap;

use ximd_isa::Reg;

use crate::error::CompileError;
use crate::ir::{Function, VReg};

/// The assignment produced by [`allocate`].
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    map: HashMap<VReg, Reg>,
}

impl Allocation {
    /// Builds an allocation from an explicit map (used by code generators
    /// that assign registers themselves, e.g. fork/join lowering).
    pub fn from_map(map: HashMap<VReg, Reg>) -> Allocation {
        Allocation { map }
    }

    /// The architectural register for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not part of the allocated function.
    pub fn reg(&self, v: VReg) -> Reg {
        self.map[&v]
    }

    /// Number of architectural registers in use.
    pub fn used(&self) -> usize {
        self.map.len()
    }
}

/// Assigns architectural registers for every virtual register of `func`.
///
/// # Errors
///
/// Returns [`CompileError::OutOfRegisters`] if the function needs more than
/// `available` registers.
///
/// # Example
///
/// ```
/// use ximd_compiler::{lang, lower, regalloc};
///
/// let ast = lang::parse("fn f(a, b) { return a + b; }")?;
/// let func = lower::lower(&ast.fns[0])?;
/// let alloc = regalloc::allocate(&func, 256)?;
/// assert!(alloc.used() >= 2);
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
pub fn allocate(func: &Function, available: usize) -> Result<Allocation, CompileError> {
    let needed = func.vreg_count as usize;
    if needed > available {
        return Err(CompileError::OutOfRegisters { needed, available });
    }
    let map = (0..func.vreg_count)
        .map(|i| (VReg(i), Reg(i as u16)))
        .collect();
    Ok(Allocation { map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use crate::lower::lower;

    #[test]
    fn direct_mapping() {
        let func = lower(&parse("fn f(a) { return a + 1; }").unwrap().fns[0]).unwrap();
        let alloc = allocate(&func, 256).unwrap();
        assert_eq!(alloc.reg(VReg(0)), Reg(0));
        assert_eq!(alloc.used(), func.vreg_count as usize);
    }

    #[test]
    fn capacity_enforced() {
        let func = lower(&parse("fn f(a, b, c) { return a + b + c; }").unwrap().fns[0]).unwrap();
        let err = allocate(&func, 2).unwrap_err();
        assert!(matches!(
            err,
            CompileError::OutOfRegisters { available: 2, .. }
        ));
    }
}
