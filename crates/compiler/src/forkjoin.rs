//! Fork/join XIMD code generation — the paper's §3.2 technique,
//! generalized.
//!
//! MINMAX (Example 2) is the paper's template: a loop whose body contains
//! several *independent guarded updates* (`IF (cond_i) THEN update_i`).
//! A VLIW machine executes the guards' branches one per cycle; XIMD
//! dedicates one functional unit per guard, forks into `G` streams for the
//! update, and re-joins by *implicit barrier synchronization* — every path
//! is padded to the same length, so the streams re-converge without any
//! explicit synchronization.
//!
//! [`GuardedLoop`] describes such a loop (a lock-step prologue computing
//! shared values, plus the guards); [`compile_forkjoin`] emits the XIMD
//! program:
//!
//! ```text
//! init:  induction = start; kc = trips            (lock-step)
//! head:  prologue rows                            (lock-step, scheduled)
//! cmps:  guard compares, one per guard FU         (lock-step)
//! fork:  FU_i: if cc_i -> body | skip;  exit test on the counter FU
//! body:  guard bodies, column-per-guard, padded   (G streams)
//! skip:  nop rows of the same length              (…same partition)
//! join:  induction += step; kc -= 1; if cc_exit -> exit | head
//! exit:  halt
//! ```
//!
//! [`compile_forkjoin_vliw`] lowers the same loop to the best
//! single-control-stream form (guards serialized through the one
//! sequencer), giving the paired baseline for the §4.1-style comparison.

use ximd_isa::{Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Parcel, Program, Reg};

use crate::dag::Node;
use crate::error::CompileError;
use crate::ir::{Block, Inst, Terminator, VReg, Val};
use crate::regalloc::Allocation;
use crate::schedule::schedule_block;
use ximd_sim::{VliwInstruction, VliwProgram};

/// One guarded update.
#[derive(Debug, Clone)]
pub struct Guard {
    /// The guard condition.
    pub op: CmpOp,
    /// Left comparison operand.
    pub a: Val,
    /// Right comparison operand.
    pub b: Val,
    /// The update, executed serially on the guard's FU when the condition
    /// holds. May read prologue results and its own earlier defs.
    pub body: Vec<Inst>,
}

/// A counted loop of independent guarded updates.
#[derive(Debug, Clone)]
pub struct GuardedLoop {
    /// Lock-step per-iteration prologue (loads, shared arithmetic).
    pub prologue: Vec<Inst>,
    /// The independent guards (one FU each).
    pub guards: Vec<Guard>,
    /// Induction register (read-only in prologue/bodies).
    pub induction: VReg,
    /// Initial induction value.
    pub start: i32,
    /// Per-iteration step.
    pub step: i32,
    /// Register holding the trip count at entry.
    pub trips: VReg,
}

/// The compiled fork/join loop.
#[derive(Debug, Clone)]
pub struct ForkJoin {
    /// The XIMD program (multi-stream).
    pub program: Program,
    /// Machine width used (`guards + 1` at minimum; wider if the prologue
    /// needed more issue slots would not help — width is exactly
    /// `max(guards + 1, requested)`).
    pub width: usize,
    /// Architectural register of the induction variable.
    pub induction_reg: Reg,
    /// Architectural register holding the trip count at entry.
    pub trips_reg: Reg,
    /// Register lookup for every virtual register in the loop.
    pub reg_of: std::collections::HashMap<VReg, Reg>,
    /// Where the streams fork and re-join, and which FUs own which
    /// address range in between. `None` for the single-stream (VLIW)
    /// lowering, which never forks.
    pub region: Option<RegionSummary>,
}

/// The fork/join region structure the code generator *intended* — emitted
/// as an advisory `// ximd-sset:` comment so xlint's SSET-structure
/// inference can be cross-checked against it (`ximd_analysis` parses it
/// back with `parse_region_hints` / `crosscheck_hints`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSummary {
    /// Address of the fork word (all FUs still lockstep here).
    pub fork: Addr,
    /// Address of the join word (all FUs lockstep again here).
    pub join: Addr,
    /// Per-stream (member FUs, first address, last address), inclusive.
    pub streams: Vec<(Vec<FuId>, Addr, Addr)>,
}

impl RegionSummary {
    /// Renders the advisory assembly comment, e.g.
    /// `// ximd-sset: fork=04 join=07 stream=0:05-06 stream=2:05-06`.
    /// Addresses are bare hex; FU lists are decimal.
    pub fn comment(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "// ximd-sset: fork={:02x} join={:02x}",
            self.fork.0, self.join.0
        );
        for (members, lo, hi) in &self.streams {
            let fus = members
                .iter()
                .map(|f| f.0.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(s, " stream={fus}:{:02x}-{:02x}", lo.0, hi.0);
        }
        s
    }
}

fn validate(l: &GuardedLoop) -> Result<(), CompileError> {
    if l.guards.is_empty() {
        return Err(CompileError::Schedule(
            "fork/join loop needs at least one guard".into(),
        ));
    }
    // Guard bodies must have pairwise-disjoint write sets (independence),
    // must not write the prologue's defs, and nothing may write the
    // induction or trip registers.
    let mut prologue_defs = std::collections::HashSet::new();
    for inst in &l.prologue {
        if let Some(d) = inst.dest() {
            prologue_defs.insert(d);
        }
    }
    let mut seen_writes: std::collections::HashMap<VReg, usize> = std::collections::HashMap::new();
    for (gi, guard) in l.guards.iter().enumerate() {
        for inst in &guard.body {
            let Some(d) = inst.dest() else { continue };
            if d == l.induction || d == l.trips {
                return Err(CompileError::Schedule(format!(
                    "guard {gi} writes protected register {d}"
                )));
            }
            if prologue_defs.contains(&d) {
                return Err(CompileError::Schedule(format!(
                    "guard {gi} writes prologue-defined register {d} (would race the next \
                     iteration's prologue)"
                )));
            }
            if let Some(&other) = seen_writes.get(&d) {
                if other != gi {
                    return Err(CompileError::Schedule(format!(
                        "guards {other} and {gi} both write {d}: updates must be independent"
                    )));
                }
            }
            seen_writes.insert(d, gi);
        }
        // A guard body may not read another guard's writes (it would see
        // fork-order-dependent values).
        for inst in &guard.body {
            for s in inst.sources() {
                if let Some(&w) = seen_writes.get(&s) {
                    if w != gi {
                        return Err(CompileError::Schedule(format!(
                            "guard {gi} reads {s}, written by guard {w}: updates must be \
                             independent"
                        )));
                    }
                }
            }
        }
    }
    if l.prologue
        .iter()
        .any(|i| i.dest() == Some(l.induction) || i.dest() == Some(l.trips))
    {
        return Err(CompileError::Schedule(
            "prologue writes a protected register".into(),
        ));
    }
    Ok(())
}

fn collect_alloc(
    l: &GuardedLoop,
) -> Result<(std::collections::HashMap<VReg, Reg>, VReg), CompileError> {
    // Allocate registers for every vreg in play plus a fresh counter.
    fn touch(v: VReg, map: &mut std::collections::HashMap<VReg, Reg>) {
        let next = map.len() as u16;
        map.entry(v).or_insert(Reg(next));
    }
    let mut map = std::collections::HashMap::new();
    let mut max_v = 0u32;
    let mut all_vregs: Vec<VReg> = Vec::new();
    for inst in l
        .prologue
        .iter()
        .chain(l.guards.iter().flat_map(|g| g.body.iter()))
    {
        all_vregs.extend(inst.sources());
        all_vregs.extend(inst.dest());
    }
    for g in &l.guards {
        all_vregs.extend([g.a, g.b].iter().filter_map(|v| v.reg()));
    }
    all_vregs.push(l.induction);
    all_vregs.push(l.trips);
    for v in all_vregs {
        max_v = max_v.max(v.0);
        touch(v, &mut map);
    }
    let counter = VReg(max_v + 1);
    touch(counter, &mut map);
    if map.len() > ximd_isa::XIMD1_NUM_REGS {
        return Err(CompileError::OutOfRegisters {
            needed: map.len(),
            available: ximd_isa::XIMD1_NUM_REGS,
        });
    }
    Ok((map, counter))
}

use crate::codegen::lower_inst;

/// Compiles a guarded loop to multi-stream XIMD code.
///
/// The machine width is `max(guards + 1, min_width)`: one FU per guard plus
/// one for the loop counter, with any extra width accelerating the
/// prologue.
///
/// # Errors
///
/// Returns [`CompileError::Schedule`] for dependent guards or protected-
/// register writes, and [`CompileError::OutOfRegisters`] on register-file
/// overflow.
pub fn compile_forkjoin(l: &GuardedLoop, min_width: usize) -> Result<ForkJoin, CompileError> {
    validate(l)?;
    let guard_count = l.guards.len();
    let width = min_width.max(guard_count + 1);
    let counter_fu = guard_count; // FU used for the exit test / counter

    let (map, counter) = collect_alloc(l)?;
    let alloc = Allocation::from_map(map.clone());
    let ind = alloc.reg(l.induction);
    let trips = alloc.reg(l.trips);
    let kc = alloc.reg(counter);

    // Schedule the prologue as a basic block for the machine width.
    let prologue_block = Block {
        insts: l.prologue.clone(),
        term: Terminator::Return(None),
    };
    let sched = schedule_block(&prologue_block, width);
    let prologue_rows: Vec<Vec<DataOp>> = if l.prologue.is_empty() {
        Vec::new()
    } else {
        sched
            .slots
            .iter()
            .map(|row| {
                row.iter()
                    .map(|slot| match slot {
                        Some(Node::Inst(i)) => lower_inst(&l.prologue[*i], &alloc),
                        _ => DataOp::Nop,
                    })
                    .collect()
            })
            .collect()
    };

    let body_len = l
        .guards
        .iter()
        .map(|g| g.body.len())
        .max()
        .unwrap_or(0)
        .max(1);

    // Address layout.
    let init = 0u32;
    let head = 1u32;
    let cmps = head + prologue_rows.len() as u32;
    let fork = cmps + 1;
    let body0 = fork + 1;
    let skip0 = body0 + body_len as u32;
    let join = skip0 + body_len as u32;
    let exit = join + 1;
    let len = exit + 1;

    let mut words: Vec<Vec<Parcel>> = (0..len)
        .map(|row| {
            // Default: lock-step nop falling through to the next row.
            vec![Parcel::goto(Addr(row + 1)); width]
        })
        .collect();

    // init: induction = start; kc = trips.
    words[init as usize][0].data = DataOp::Un {
        op: ximd_isa::UnOp::Mov,
        a: ximd_isa::Operand::imm_i32(l.start),
        d: ind,
    };
    words[init as usize][1.min(width - 1)] = Parcel::data(
        DataOp::Un {
            op: ximd_isa::UnOp::Mov,
            a: ximd_isa::Operand::Reg(trips),
            d: kc,
        },
        ControlOp::Goto(Addr(head)),
    );

    // head: prologue rows.
    for (i, row) in prologue_rows.iter().enumerate() {
        for (fu, op) in row.iter().enumerate() {
            words[head as usize + i][fu].data = *op;
        }
    }

    // cmps row: guard compares on their FUs; exit compare on the counter FU.
    for (gi, guard) in l.guards.iter().enumerate() {
        words[cmps as usize][gi].data = DataOp::Cmp {
            op: guard.op,
            a: operand(guard.a, &alloc),
            b: operand(guard.b, &alloc),
        };
    }
    words[cmps as usize][counter_fu].data = DataOp::Cmp {
        op: CmpOp::Eq,
        a: ximd_isa::Operand::Reg(kc),
        b: ximd_isa::Operand::imm_i32(1),
    };

    // fork row: guard FUs branch on their own cc; everyone else to skip.
    for (fu, slot) in words[fork as usize].iter_mut().enumerate() {
        let ctrl = if fu < guard_count {
            ControlOp::branch(CondSource::Cc(FuId(fu as u8)), Addr(body0), Addr(skip0))
        } else {
            ControlOp::Goto(Addr(skip0))
        };
        *slot = Parcel::data(DataOp::Nop, ctrl);
    }

    // body region: guard bodies, column per guard; every row falls through,
    // last row jumps to join. The skip region mirrors the control shape.
    for row in 0..body_len {
        let next = if row + 1 == body_len {
            Addr(join)
        } else {
            Addr(body0 + row as u32 + 1)
        };
        let skip_next = if row + 1 == body_len {
            Addr(join)
        } else {
            Addr(skip0 + row as u32 + 1)
        };
        words[(body0 as usize) + row].fill(Parcel::goto(next));
        words[(skip0 as usize) + row].fill(Parcel::goto(skip_next));
        for (gi, guard) in l.guards.iter().enumerate() {
            if let Some(inst) = guard.body.get(row) {
                words[(body0 as usize) + row][gi].data = lower_inst(inst, &alloc);
            }
        }
    }

    // join row: induction += step on FU0's slot, kc -= 1 on the counter FU,
    // everyone branches on the exit cc.
    let join_ctrl = ControlOp::branch(
        CondSource::Cc(FuId(counter_fu as u8)),
        Addr(exit),
        Addr(head),
    );
    words[join as usize].fill(Parcel::data(DataOp::Nop, join_ctrl));
    words[join as usize][0].data = DataOp::Alu {
        op: AluOp::Iadd,
        a: ximd_isa::Operand::Reg(ind),
        b: ximd_isa::Operand::imm_i32(l.step),
        d: ind,
    };
    words[join as usize][counter_fu].data = DataOp::Alu {
        op: AluOp::Isub,
        a: ximd_isa::Operand::Reg(kc),
        b: ximd_isa::Operand::imm_i32(1),
        d: kc,
    };

    // exit: halt.
    words[exit as usize].fill(Parcel::halt());

    let mut program = Program::new(width);
    for word in words {
        program.push(word);
    }
    program
        .validate(ximd_isa::XIMD1_NUM_REGS)
        .map_err(|e| CompileError::Schedule(format!("fork/join program invalid: {e}")))?;

    // The generator's own account of the fork/join structure: each guard
    // FU runs alone between the fork and the join (its body column or the
    // mirroring skip column), while the counter FU and any spare width
    // stay together in the skip column.
    let mut streams: Vec<(Vec<FuId>, Addr, Addr)> = (0..guard_count)
        .map(|gi| (vec![FuId(gi as u8)], Addr(body0), Addr(join - 1)))
        .collect();
    streams.push((
        (counter_fu..width).map(|fu| FuId(fu as u8)).collect(),
        Addr(skip0),
        Addr(join - 1),
    ));
    let region = RegionSummary {
        fork: Addr(fork),
        join: Addr(join),
        streams,
    };

    Ok(ForkJoin {
        program,
        width,
        induction_reg: ind,
        trips_reg: trips,
        reg_of: map,
        region: Some(region),
    })
}

fn operand(v: Val, alloc: &Allocation) -> ximd_isa::Operand {
    match v {
        Val::Reg(r) => ximd_isa::Operand::Reg(alloc.reg(r)),
        Val::Const(c) => ximd_isa::Operand::imm_i32(c),
    }
}

/// Lowers the same guarded loop to the best single-control-stream (VLIW)
/// schedule: the prologue and compares are as wide as on XIMD, but the
/// guards' branches serialize through the one sequencer.
///
/// # Errors
///
/// Same conditions as [`compile_forkjoin`].
pub fn compile_forkjoin_vliw(l: &GuardedLoop, min_width: usize) -> Result<ForkJoin, CompileError> {
    validate(l)?;
    let guard_count = l.guards.len();
    let width = min_width.max(guard_count + 1);
    let counter_fu = guard_count;
    let (map, counter) = collect_alloc(l)?;
    let alloc = Allocation::from_map(map.clone());
    let ind = alloc.reg(l.induction);
    let trips = alloc.reg(l.trips);
    let kc = alloc.reg(counter);

    let prologue_block = Block {
        insts: l.prologue.clone(),
        term: Terminator::Return(None),
    };
    let sched = schedule_block(&prologue_block, width);

    let mut p = VliwProgram::new(width);
    let nops = || vec![DataOp::Nop; width];

    // init.
    let mut init_ops = nops();
    init_ops[0] = DataOp::Un {
        op: ximd_isa::UnOp::Mov,
        a: ximd_isa::Operand::imm_i32(l.start),
        d: ind,
    };
    init_ops[1.min(width - 1)] = DataOp::Un {
        op: ximd_isa::UnOp::Mov,
        a: ximd_isa::Operand::Reg(trips),
        d: kc,
    };
    p.push(VliwInstruction {
        ops: init_ops,
        ctrl: ControlOp::Goto(Addr(1)),
    });

    // head: prologue rows (addresses are assigned as we push).
    if !l.prologue.is_empty() {
        for row in &sched.slots {
            let ops = row
                .iter()
                .map(|slot| match slot {
                    Some(Node::Inst(i)) => lower_inst(&l.prologue[*i], &alloc),
                    _ => DataOp::Nop,
                })
                .collect();
            let next = Addr(p.len() as u32 + 1);
            p.push(VliwInstruction {
                ops,
                ctrl: ControlOp::Goto(next),
            });
        }
    }
    let head = 1u32;

    // cmp row: all compares fit one word (distinct FUs' ccs).
    let mut cmp_ops = nops();
    for (gi, guard) in l.guards.iter().enumerate() {
        cmp_ops[gi] = DataOp::Cmp {
            op: guard.op,
            a: operand(guard.a, &alloc),
            b: operand(guard.b, &alloc),
        };
    }
    cmp_ops[counter_fu] = DataOp::Cmp {
        op: CmpOp::Eq,
        a: ximd_isa::Operand::Reg(kc),
        b: ximd_isa::Operand::imm_i32(1),
    };
    let next = Addr(p.len() as u32 + 1);
    p.push(VliwInstruction {
        ops: cmp_ops,
        ctrl: ControlOp::Goto(next),
    });

    // Serialized guards: for each guard, branch on its cc, then the body
    // rows (scheduled on the full width — generous to the baseline).
    // Addresses are computed incrementally.
    for (gi, guard) in l.guards.iter().enumerate() {
        let body_block = Block {
            insts: guard.body.clone(),
            term: Terminator::Return(None),
        };
        let body_sched = schedule_block(&body_block, width);
        let body_rows = if guard.body.is_empty() {
            0
        } else {
            body_sched.len() as u32
        };
        let branch_addr = p.len() as u32;
        let body_start = branch_addr + 1;
        let after = body_start + body_rows;
        p.push(VliwInstruction {
            ops: nops(),
            ctrl: ControlOp::branch(
                CondSource::Cc(FuId(gi as u8)),
                Addr(body_start),
                Addr(after),
            ),
        });
        if !guard.body.is_empty() {
            for row in &body_sched.slots {
                let ops = row
                    .iter()
                    .map(|slot| match slot {
                        Some(Node::Inst(i)) => lower_inst(&guard.body[*i], &alloc),
                        _ => DataOp::Nop,
                    })
                    .collect();
                let next = Addr(p.len() as u32 + 1);
                p.push(VliwInstruction {
                    ops,
                    ctrl: ControlOp::Goto(next),
                });
            }
        }
    }

    // join: increment, decrement, loop.
    let exit = p.len() as u32 + 1;
    let mut join_ops = nops();
    join_ops[0] = DataOp::Alu {
        op: AluOp::Iadd,
        a: ximd_isa::Operand::Reg(ind),
        b: ximd_isa::Operand::imm_i32(l.step),
        d: ind,
    };
    join_ops[counter_fu] = DataOp::Alu {
        op: AluOp::Isub,
        a: ximd_isa::Operand::Reg(kc),
        b: ximd_isa::Operand::imm_i32(1),
        d: kc,
    };
    p.push(VliwInstruction {
        ops: join_ops,
        ctrl: ControlOp::branch(
            CondSource::Cc(FuId(counter_fu as u8)),
            Addr(exit),
            Addr(head),
        ),
    });
    p.push(VliwInstruction::halt(width));

    Ok(ForkJoin {
        program: p.to_ximd(),
        width,
        induction_reg: ind,
        trips_reg: trips,
        reg_of: map,
        region: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::Value;
    use ximd_sim::{MachineConfig, Xsim};

    /// MINMAX as a GuardedLoop: prologue loads IZ(k); guard 0 updates min,
    /// guard 1 updates max.
    fn minmax_loop() -> GuardedLoop {
        let ind = VReg(0);
        let trips = VReg(1);
        let v = VReg(2);
        let min = VReg(3);
        let max = VReg(4);
        GuardedLoop {
            prologue: vec![Inst::Load {
                base: Val::Const(99),
                off: ind.into(),
                d: v,
            }],
            guards: vec![
                Guard {
                    op: CmpOp::Lt,
                    a: v.into(),
                    b: min.into(),
                    body: vec![Inst::Copy {
                        a: v.into(),
                        d: min,
                    }],
                },
                Guard {
                    op: CmpOp::Gt,
                    a: v.into(),
                    b: max.into(),
                    body: vec![Inst::Copy {
                        a: v.into(),
                        d: max,
                    }],
                },
            ],
            induction: ind,
            start: 1,
            step: 1,
            trips,
        }
    }

    fn run(fj: &ForkJoin, data: &[i32], trips: i32, seed: &[(Reg, i32)]) -> Xsim {
        let mut sim = Xsim::new(fj.program.clone(), MachineConfig::with_width(fj.width)).unwrap();
        sim.mem_mut().poke_slice(100, data).unwrap();
        sim.write_reg(fj.trips_reg, Value::I32(trips));
        for &(r, v) in seed {
            sim.write_reg(r, Value::I32(v));
        }
        sim.run(1_000_000).unwrap();
        sim
    }

    #[test]
    fn minmax_forkjoin_is_correct() {
        let l = minmax_loop();
        let fj = compile_forkjoin(&l, 3).unwrap();
        let data = [5, 3, 4, 7, -2, 9, 0];
        let min_r = fj.reg_of[&VReg(3)];
        let max_r = fj.reg_of[&VReg(4)];
        let sim = run(
            &fj,
            &data,
            data.len() as i32,
            &[(min_r, i32::MAX), (max_r, i32::MIN)],
        );
        assert_eq!(sim.reg(min_r).as_i32(), -2);
        assert_eq!(sim.reg(max_r).as_i32(), 9);
    }

    #[test]
    fn forkjoin_actually_forks() {
        let l = minmax_loop();
        let fj = compile_forkjoin(&l, 3).unwrap();
        let data = [5, 3, 4, 7];
        let min_r = fj.reg_of[&VReg(3)];
        let max_r = fj.reg_of[&VReg(4)];
        let mut sim = Xsim::new(fj.program.clone(), MachineConfig::with_width(fj.width)).unwrap();
        sim.mem_mut().poke_slice(100, &data).unwrap();
        sim.write_reg(fj.trips_reg, Value::I32(4));
        sim.write_reg(min_r, Value::I32(i32::MAX));
        sim.write_reg(max_r, Value::I32(i32::MIN));
        sim.enable_trace();
        sim.run(100_000).unwrap();
        assert!(
            sim.trace().unwrap().max_streams() >= 3,
            "guards + counter streams"
        );
    }

    #[test]
    fn ximd_forkjoin_beats_vliw_serialization() {
        let l = minmax_loop();
        let fj = compile_forkjoin(&l, 3).unwrap();
        let vl = compile_forkjoin_vliw(&l, 3).unwrap();
        let data: Vec<i32> = (0..64).map(|i| (i * 37) % 101 - 50).collect();
        let seed = |fj: &ForkJoin| {
            vec![
                (fj.reg_of[&VReg(3)], i32::MAX),
                (fj.reg_of[&VReg(4)], i32::MIN),
            ]
        };
        let xs = run(&fj, &data, 64, &seed(&fj));
        let vs = run(&vl, &data, 64, &seed(&vl));
        // Same answers.
        assert_eq!(
            xs.reg(fj.reg_of[&VReg(3)]).as_i32(),
            vs.reg(vl.reg_of[&VReg(3)]).as_i32()
        );
        assert_eq!(
            xs.reg(fj.reg_of[&VReg(4)]).as_i32(),
            vs.reg(vl.reg_of[&VReg(4)]).as_i32()
        );
        // Fewer cycles by parallel control flow.
        assert!(
            xs.cycle() < vs.cycle(),
            "forkjoin {} vs serialized {}",
            xs.cycle(),
            vs.cycle()
        );
    }

    #[test]
    fn four_guards_with_multi_inst_bodies() {
        // Classify each element into one of four counters (ranges), with
        // two-instruction bodies (shift then add).
        let ind = VReg(0);
        let trips = VReg(1);
        let v = VReg(2);
        let counts = [VReg(3), VReg(4), VReg(5), VReg(6)];
        let scratch = [VReg(7), VReg(8), VReg(9), VReg(10)];
        let bounds = [0, 25, 50, 75];
        let guards = (0..4)
            .map(|i| Guard {
                op: CmpOp::Ge,
                a: v.into(),
                b: Val::Const(bounds[i]),
                body: vec![
                    Inst::Bin {
                        op: AluOp::Iadd,
                        a: v.into(),
                        b: Val::Const(1),
                        d: scratch[i],
                    },
                    Inst::Bin {
                        op: AluOp::Iadd,
                        a: counts[i].into(),
                        b: Val::Const(1),
                        d: counts[i],
                    },
                ],
            })
            .collect();
        let l = GuardedLoop {
            prologue: vec![Inst::Load {
                base: Val::Const(99),
                off: ind.into(),
                d: v,
            }],
            guards,
            induction: ind,
            start: 1,
            step: 1,
            trips,
        };
        let fj = compile_forkjoin(&l, 5).unwrap();
        let data: Vec<i32> = vec![10, 30, 60, 80, 90, 5, 55];
        let sim = run(&fj, &data, data.len() as i32, &[]);
        // Oracle: count elements >= each bound.
        for (i, &b) in bounds.iter().enumerate() {
            let expect = data.iter().filter(|&&x| x >= b).count() as i32;
            assert_eq!(
                sim.reg(fj.reg_of[&counts[i]]).as_i32(),
                expect,
                "counter {i} (>= {b})"
            );
        }
    }

    #[test]
    fn dependent_guards_are_rejected() {
        let ind = VReg(0);
        let trips = VReg(1);
        let x = VReg(2);
        let mk = |body_dest: VReg| Guard {
            op: CmpOp::Gt,
            a: Val::Const(1),
            b: Val::Const(0),
            body: vec![Inst::Copy {
                a: Val::Const(1),
                d: body_dest,
            }],
        };
        // Two guards writing the same register.
        let l = GuardedLoop {
            prologue: vec![],
            guards: vec![mk(x), mk(x)],
            induction: ind,
            start: 0,
            step: 1,
            trips,
        };
        assert!(matches!(
            compile_forkjoin(&l, 3),
            Err(CompileError::Schedule(_))
        ));
    }

    #[test]
    fn guard_reading_another_guards_write_is_rejected() {
        let ind = VReg(0);
        let trips = VReg(1);
        let (x, y) = (VReg(2), VReg(3));
        let l = GuardedLoop {
            prologue: vec![],
            guards: vec![
                Guard {
                    op: CmpOp::Gt,
                    a: Val::Const(1),
                    b: Val::Const(0),
                    body: vec![Inst::Copy {
                        a: Val::Const(1),
                        d: x,
                    }],
                },
                Guard {
                    op: CmpOp::Gt,
                    a: Val::Const(1),
                    b: Val::Const(0),
                    body: vec![Inst::Copy { a: x.into(), d: y }],
                },
            ],
            induction: ind,
            start: 0,
            step: 1,
            trips,
        };
        assert!(matches!(
            compile_forkjoin(&l, 3),
            Err(CompileError::Schedule(_))
        ));
    }

    #[test]
    fn empty_guard_list_rejected() {
        let l = GuardedLoop {
            prologue: vec![],
            guards: vec![],
            induction: VReg(0),
            start: 0,
            step: 1,
            trips: VReg(1),
        };
        assert!(compile_forkjoin(&l, 4).is_err());
    }
}
