//! End-to-end code generation: mini-C → scheduled VLIW program.

use ximd_isa::cert::{CmpClaim, OpClaim, Region, ScheduleCertificate, TermClaim};
use ximd_isa::{Addr, CondSource, ControlOp, DataOp, FuId, Operand, Program, Reg, UnOp};
use ximd_sim::{MachineConfig, VliwInstruction, VliwProgram, Vsim, Xsim};

use crate::dag::Node;
use crate::error::CompileError;
use crate::ir::{BlockId, Function, Inst, Terminator, Val};
use crate::lang;
use crate::lower;
use crate::percolate;
use crate::regalloc::{allocate, Allocation};
use crate::schedule::schedule_block;

/// A compiled function: a runnable VLIW program plus its calling
/// convention.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// The function's name.
    pub name: String,
    /// Functional-unit width the code was scheduled for.
    pub width: usize,
    /// The program (single control stream).
    pub vliw: VliwProgram,
    /// Architectural registers holding the parameters on entry.
    pub param_regs: Vec<Reg>,
    /// Architectural register holding the return value on halt, if any.
    pub ret_reg: Option<Reg>,
    /// The schedule certificate for translation validation (`None` only for
    /// hand-assembled combinations that bypass the scheduling pipeline).
    pub cert: Option<ScheduleCertificate>,
}

impl CompiledFunction {
    /// Lowers to XIMD form (control fields duplicated into every parcel).
    pub fn ximd_program(&self) -> Program {
        self.vliw.to_ximd()
    }

    /// Runs on vsim with the given arguments and a memory set-up hook.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Sim`] on machine checks or cycle-limit
    /// exhaustion.
    pub fn run_vliw_with(
        &self,
        args: &[i32],
        max_cycles: u64,
        setup: impl FnOnce(&mut Vsim),
    ) -> Result<(Option<i32>, u64), CompileError> {
        let mut sim = Vsim::new(self.vliw.clone(), MachineConfig::with_width(self.width))?;
        for (&reg, &value) in self.param_regs.iter().zip(args) {
            sim.write_reg(reg, value.into());
        }
        setup(&mut sim);
        let summary = sim.run(max_cycles)?;
        Ok((self.ret_reg.map(|r| sim.reg(r).as_i32()), summary.cycles))
    }

    /// Runs on vsim and returns the result register.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Sim`] on machine checks or cycle-limit
    /// exhaustion.
    pub fn run_vliw(&self, args: &[i32]) -> Result<Option<i32>, CompileError> {
        self.run_vliw_with(args, 1_000_000, |_| {}).map(|(r, _)| r)
    }

    /// Runs the XIMD lowering on xsim with a memory set-up hook.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Sim`] on machine checks or cycle-limit
    /// exhaustion.
    pub fn run_ximd_with(
        &self,
        args: &[i32],
        max_cycles: u64,
        setup: impl FnOnce(&mut Xsim),
    ) -> Result<(Option<i32>, u64), CompileError> {
        let mut sim = Xsim::new(self.ximd_program(), MachineConfig::with_width(self.width))?;
        for (&reg, &value) in self.param_regs.iter().zip(args) {
            sim.write_reg(reg, value.into());
        }
        setup(&mut sim);
        let summary = sim.run(max_cycles)?;
        Ok((self.ret_reg.map(|r| sim.reg(r).as_i32()), summary.cycles))
    }
}

fn operand(v: Val, alloc: &Allocation) -> Operand {
    match v {
        Val::Reg(r) => Operand::Reg(alloc.reg(r)),
        Val::Const(c) => Operand::imm_i32(c),
    }
}

pub(crate) fn lower_inst(inst: &Inst, alloc: &Allocation) -> DataOp {
    match *inst {
        Inst::Bin { op, a, b, d } => DataOp::Alu {
            op,
            a: operand(a, alloc),
            b: operand(b, alloc),
            d: alloc.reg(d),
        },
        Inst::Un { op, a, d } => DataOp::Un {
            op,
            a: operand(a, alloc),
            d: alloc.reg(d),
        },
        Inst::Copy { a, d } => DataOp::Un {
            op: UnOp::Mov,
            a: operand(a, alloc),
            d: alloc.reg(d),
        },
        Inst::Load { base, off, d } => DataOp::Load {
            a: operand(base, alloc),
            b: operand(off, alloc),
            d: alloc.reg(d),
        },
        Inst::Store { val, addr } => DataOp::Store {
            a: operand(val, alloc),
            b: operand(addr, alloc),
        },
    }
}

/// Compiles an IR function for a machine of `width` FUs.
///
/// Pipeline: return normalization → percolation (upward code motion) →
/// per-block list scheduling → register assignment → emission.
///
/// # Errors
///
/// Returns [`CompileError::OutOfRegisters`] if the function's values exceed
/// the register file.
pub fn compile_function(func: &Function, width: usize) -> Result<CompiledFunction, CompileError> {
    let mut func = func.clone();

    // Normalize returns: materialize the return value into one dedicated
    // vreg so the machine-level convention is a single register.
    let mut ret_vreg = None;
    for b in 0..func.blocks.len() {
        if let Terminator::Return(Some(v)) = func.blocks[b].term {
            let rv = *ret_vreg.get_or_insert_with(|| func.new_vreg());
            func.blocks[b].insts.push(Inst::Copy { a: v, d: rv });
            func.blocks[b].term = Terminator::Return(None);
        }
    }

    let (_, spec_records) = percolate::percolate_with_info(&mut func);

    let alloc = allocate(&func, ximd_isa::XIMD1_NUM_REGS)?;
    let scheds: Vec<_> = func
        .blocks
        .iter()
        .map(|b| schedule_block(b, width))
        .collect();

    // Block base addresses, in block order (entry is block 0).
    let mut base = Vec::with_capacity(scheds.len());
    let mut next = 0u32;
    for s in &scheds {
        base.push(Addr(next));
        next += s.len() as u32;
    }

    let mut vliw = VliwProgram::new(width);
    for (bi, (block, sched)) in func.blocks.iter().zip(&scheds).enumerate() {
        let last = sched.len() - 1;
        for (c, row) in sched.slots.iter().enumerate() {
            let ops: Vec<DataOp> = row
                .iter()
                .map(|slot| match slot {
                    None => DataOp::Nop,
                    Some(Node::Inst(i)) => lower_inst(&block.insts[*i], &alloc),
                    Some(Node::Cmp { op, a, b }) => DataOp::Cmp {
                        op: *op,
                        a: operand(*a, &alloc),
                        b: operand(*b, &alloc),
                    },
                })
                .collect();
            let ctrl = if c < last {
                ControlOp::Goto(Addr(base[bi].0 + c as u32 + 1))
            } else {
                match block.term {
                    Terminator::Goto(t) => ControlOp::Goto(base[t.0]),
                    Terminator::Branch {
                        then_bb, else_bb, ..
                    } => {
                        let (_, fu) = sched.cmp_slot.expect("branch blocks have a compare");
                        ControlOp::Branch {
                            cond: CondSource::Cc(FuId(fu as u8)),
                            taken: base[then_bb.0],
                            not_taken: base[else_bb.0],
                        }
                    }
                    Terminator::Return(_) => ControlOp::Halt,
                }
            };
            vliw.push(VliwInstruction { ops, ctrl });
        }
    }

    // The schedule certificate: the compiler's claim of where every source
    // op landed, in source order, with speculation guards from percolation.
    let mut regions = Vec::with_capacity(func.blocks.len());
    for (bi, (block, sched)) in func.blocks.iter().zip(&scheds).enumerate() {
        let mut placement = vec![(0u32, 0u32); block.insts.len()];
        let mut cmp_claim = None;
        for (c, row) in sched.slots.iter().enumerate() {
            for (f, slot) in row.iter().enumerate() {
                match slot {
                    Some(Node::Inst(i)) => placement[*i] = (c as u32, f as u32),
                    Some(Node::Cmp { op, a, b }) => {
                        cmp_claim = Some(CmpClaim {
                            op: DataOp::Cmp {
                                op: *op,
                                a: operand(*a, &alloc),
                                b: operand(*b, &alloc),
                            },
                            row: c as u32,
                            fu: f as u32,
                        });
                    }
                    None => {}
                }
            }
        }
        let ops = block
            .insts
            .iter()
            .enumerate()
            .map(|(i, inst)| OpClaim {
                op: lower_inst(inst, &alloc),
                row: placement[i].0,
                fu: placement[i].1,
                spec: spec_records
                    .iter()
                    .find(|r| r.block == BlockId(bi) && r.idx == i)
                    .map(|r| r.others.iter().map(|o| base[o.0].0).collect())
                    .unwrap_or_default(),
            })
            .collect();
        let term = match block.term {
            Terminator::Goto(t) => TermClaim::Goto(base[t.0].0),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                let (_, fu) = sched.cmp_slot.expect("branch blocks have a compare");
                TermClaim::Branch {
                    fu: fu as u32,
                    taken: base[then_bb.0].0,
                    not_taken: base[else_bb.0].0,
                }
            }
            Terminator::Return(_) => TermClaim::Halt,
        };
        regions.push(Region::Block {
            base: base[bi].0,
            rows: sched.len() as u32,
            ops,
            cmp: cmp_claim,
            term,
        });
    }

    Ok(CompiledFunction {
        name: func.name.clone(),
        width,
        vliw,
        param_regs: func.params.iter().map(|&p| alloc.reg(p)).collect(),
        ret_reg: ret_vreg.map(|r| alloc.reg(r)),
        cert: Some(ScheduleCertificate {
            width: width as u32,
            regions,
        }),
    })
}

/// Parses mini-C source and compiles its **first** function for `width`
/// functional units.
///
/// # Errors
///
/// Returns frontend or backend errors; see [`CompileError`].
///
/// # Example
///
/// ```
/// let f = ximd_compiler::compile("fn sq(x) { return x * x; }", 2)?;
/// assert_eq!(f.run_vliw(&[9])?, Some(81));
/// # Ok::<(), ximd_compiler::CompileError>(())
/// ```
pub fn compile(source: &str, width: usize) -> Result<CompiledFunction, CompileError> {
    let ast = lang::parse(source)?;
    let def = ast
        .fns
        .first()
        .ok_or_else(|| CompileError::Semantic("source defines no functions".into()))?;
    let func = lower::lower(def)?;
    compile_function(&func, width)
}

/// Parses mini-C source and compiles the named function.
///
/// # Errors
///
/// Returns frontend or backend errors; see [`CompileError`].
pub fn compile_named(
    source: &str,
    name: &str,
    width: usize,
) -> Result<CompiledFunction, CompileError> {
    let ast = lang::parse(source)?;
    let def = ast
        .function(name)
        .ok_or_else(|| CompileError::Semantic(format!("no function named {name:?}")))?;
    let func = lower::lower(def)?;
    compile_function(&func, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_expressions() {
        let f = compile("fn f(a, b) { return (a + b) * (a - b); }", 4).unwrap();
        assert_eq!(f.run_vliw(&[7, 3]).unwrap(), Some(40));
        assert_eq!(f.run_vliw(&[-2, 5]).unwrap(), Some(-21));
    }

    #[test]
    fn division_and_modulo() {
        let f = compile("fn f(a, b) { return a / b + a % b; }", 2).unwrap();
        assert_eq!(f.run_vliw(&[17, 5]).unwrap(), Some(3 + 2));
    }

    #[test]
    fn bitwise_and_shifts() {
        let f = compile("fn f(a) { return ((a << 4) | (a >> 2)) & 255; }", 2).unwrap();
        let a = 0b1011;
        assert_eq!(f.run_vliw(&[a]).unwrap(), Some(((a << 4) | (a >> 2)) & 255));
    }

    #[test]
    fn if_else_both_paths() {
        let src = "fn f(a) { let r = 0; if (a > 10) { r = 1; } else { r = 2; } return r; }";
        let f = compile(src, 4).unwrap();
        assert_eq!(f.run_vliw(&[11]).unwrap(), Some(1));
        assert_eq!(f.run_vliw(&[10]).unwrap(), Some(2));
    }

    #[test]
    fn while_loop_sums() {
        let src = r"
fn sum(n) {
    let s = 0;
    let i = 1;
    while (i <= n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
";
        let f = compile(src, 4).unwrap();
        assert_eq!(f.run_vliw(&[10]).unwrap(), Some(55));
        assert_eq!(f.run_vliw(&[0]).unwrap(), Some(0));
        assert_eq!(f.run_vliw(&[1]).unwrap(), Some(1));
    }

    #[test]
    fn memory_roundtrip() {
        let src = r"
fn f(n) {
    let i = 0;
    while (i < n) {
        mem[200 + i] = mem[100 + i] * 2;
        i = i + 1;
    }
    return 0;
}
";
        let f = compile(src, 4).unwrap();
        let (ret, _) = f
            .run_vliw_with(&[4], 10_000, |sim| {
                sim.mem_mut().poke_slice(100, &[5, -3, 8, 0]).unwrap();
            })
            .unwrap();
        assert_eq!(ret, Some(0));
        // Re-run keeping the sim to inspect memory.
        let mut sim = Vsim::new(f.vliw.clone(), MachineConfig::with_width(4)).unwrap();
        sim.write_reg(f.param_regs[0], 4i32.into());
        sim.mem_mut().poke_slice(100, &[5, -3, 8, 0]).unwrap();
        sim.run(10_000).unwrap();
        assert_eq!(sim.mem().peek_slice(200, 4).unwrap(), vec![10, -6, 16, 0]);
    }

    #[test]
    fn ximd_lowering_is_equivalent() {
        let src =
            "fn f(a) { let r = 1; let i = 0; while (i < a) { r = r * 2; i = i + 1; } return r; }";
        let f = compile(src, 2).unwrap();
        let (vliw_ret, vliw_cycles) = f.run_vliw_with(&[8], 100_000, |_| {}).unwrap();
        let (ximd_ret, ximd_cycles) = f.run_ximd_with(&[8], 100_000, |_| {}).unwrap();
        assert_eq!(vliw_ret, Some(256));
        assert_eq!(vliw_ret, ximd_ret);
        assert_eq!(vliw_cycles, ximd_cycles);
    }

    #[test]
    fn wider_machines_run_no_slower() {
        let src = r"
fn f(a, b, c, d) {
    let e = a + b;
    let f = e + c * a;
    let g = a - (b + c);
    let h = d - e;
    return (a + b + c) + d + h + (f + g);
}
";
        let mut last = u64::MAX;
        for width in [1usize, 2, 4, 8] {
            let f = compile(src, width).unwrap();
            let (ret, cycles) = f.run_vliw_with(&[1, 2, 3, 4], 1000, |_| {}).unwrap();
            assert_eq!(ret, Some(13), "width {width}");
            assert!(cycles <= last, "width {width}: {cycles} > {last}");
            last = cycles;
        }
    }

    #[test]
    fn compile_named_selects_function() {
        let src = "fn a() { return 1; } fn b() { return 2; }";
        assert_eq!(
            compile_named(src, "b", 1).unwrap().run_vliw(&[]).unwrap(),
            Some(2)
        );
        assert!(compile_named(src, "c", 1).is_err());
    }

    #[test]
    fn void_function_returns_none() {
        let f = compile("fn f(a) { mem[0] = a; }", 1).unwrap();
        assert_eq!(f.run_vliw(&[3]).unwrap(), None);
    }

    #[test]
    fn empty_source_is_error() {
        assert!(matches!(compile("", 4), Err(CompileError::Semantic(_))));
    }

    #[test]
    fn nested_control_flow() {
        let src = r"
fn collatz_steps(n) {
    let steps = 0;
    while (n != 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps = steps + 1;
    }
    return steps;
}
";
        let f = compile(src, 4).unwrap();
        assert_eq!(f.run_vliw(&[6]).unwrap(), Some(8));
        assert_eq!(f.run_vliw(&[27]).unwrap(), Some(111));
        assert_eq!(f.run_vliw(&[1]).unwrap(), Some(0));
    }
}
