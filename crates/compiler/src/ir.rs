//! Three-address intermediate representation.
//!
//! Functions are graphs of basic blocks over an unbounded set of virtual
//! registers. The IR mirrors the machine closely — its binary/unary opcodes
//! are the ISA's — but keeps comparisons fused into block terminators
//! (XIMD-1 compares write condition codes, not registers, so a comparison
//! is only meaningful as a branch condition).

use std::fmt;

use ximd_isa::{AluOp, CmpOp, UnOp};

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block identifier (index into [`Function::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An IR operand: virtual register or integer constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Val {
    /// A virtual register.
    Reg(VReg),
    /// An integer constant.
    Const(i32),
}

impl Val {
    /// Returns the register if this operand reads one.
    pub fn reg(self) -> Option<VReg> {
        match self {
            Val::Reg(r) => Some(r),
            Val::Const(_) => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Reg(r) => write!(f, "{r}"),
            Val::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<VReg> for Val {
    fn from(value: VReg) -> Self {
        Val::Reg(value)
    }
}

impl From<i32> for Val {
    fn from(value: i32) -> Self {
        Val::Const(value)
    }
}

/// A non-terminator IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `d = a op b`.
    Bin {
        /// The ALU opcode.
        op: AluOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
        /// Destination.
        d: VReg,
    },
    /// `d = op a`.
    Un {
        /// The unary opcode.
        op: UnOp,
        /// Operand.
        a: Val,
        /// Destination.
        d: VReg,
    },
    /// `d = a` (lowered to `mov`).
    Copy {
        /// Source.
        a: Val,
        /// Destination.
        d: VReg,
    },
    /// `d = M(base + off)`.
    Load {
        /// Base operand.
        base: Val,
        /// Offset operand.
        off: Val,
        /// Destination.
        d: VReg,
    },
    /// `M(addr) = val`.
    Store {
        /// The value stored.
        val: Val,
        /// The address.
        addr: Val,
    },
}

impl Inst {
    /// The destination register, if the instruction writes one.
    pub fn dest(&self) -> Option<VReg> {
        match *self {
            Inst::Bin { d, .. }
            | Inst::Un { d, .. }
            | Inst::Copy { d, .. }
            | Inst::Load { d, .. } => Some(d),
            Inst::Store { .. } => None,
        }
    }

    /// The registers read by the instruction.
    pub fn sources(&self) -> Vec<VReg> {
        let vals: &[Val] = match self {
            Inst::Bin { a, b, .. } => &[*a, *b],
            Inst::Un { a, .. } | Inst::Copy { a, .. } => &[*a],
            Inst::Load { base, off, .. } => &[*base, *off],
            Inst::Store { val, addr } => &[*val, *addr],
        };
        vals.iter().filter_map(|v| v.reg()).collect()
    }

    /// Returns `true` for loads and stores.
    pub fn touches_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Returns `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, a, b, d } => write!(f, "{d} = {op} {a}, {b}"),
            Inst::Un { op, a, d } => write!(f, "{d} = {op} {a}"),
            Inst::Copy { a, d } => write!(f, "{d} = {a}"),
            Inst::Load { base, off, d } => write!(f, "{d} = load {base}+{off}"),
            Inst::Store { val, addr } => write!(f, "store {val} -> [{addr}]"),
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Conditional branch on a comparison (the comparison is materialized
    /// at scheduling time as a machine compare feeding a condition code).
    Branch {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
        /// Successor when the comparison holds.
        then_bb: BlockId,
        /// Successor otherwise.
        else_bb: BlockId,
    },
    /// Function return with an optional value.
    Return(Option<Val>),
}

impl Terminator {
    /// Successor blocks (0, 1 or 2).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Goto(b) => vec![b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Return(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn sources(&self) -> Vec<VReg> {
        match *self {
            Terminator::Branch { a, b, .. } => [a, b].iter().filter_map(|v| v.reg()).collect(),
            Terminator::Return(Some(v)) => v.reg().into_iter().collect(),
            _ => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Goto(b) => write!(f, "goto {b}"),
            Terminator::Branch {
                op,
                a,
                b,
                then_bb,
                else_bb,
            } => {
                write!(f, "if {op} {a}, {b} then {then_bb} else {else_bb}")
            }
            Terminator::Return(Some(v)) => write!(f, "return {v}"),
            Terminator::Return(None) => write!(f, "return"),
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter registers, in declaration order.
    pub params: Vec<VReg>,
    /// Basic blocks; [`BlockId`] indexes this vector.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Number of virtual registers allocated (`v0..v(n-1)`).
    pub vreg_count: u32,
}

impl Function {
    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vreg_count);
        self.vreg_count += 1;
        r
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Mutable access to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0]
    }

    /// Total IR instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({:?}) entry {}",
            self.name, self.params, self.entry
        )?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Function {
        Function {
            name: "f".into(),
            params: vec![VReg(0)],
            blocks: vec![
                Block {
                    insts: vec![Inst::Bin {
                        op: AluOp::Iadd,
                        a: VReg(0).into(),
                        b: Val::Const(1),
                        d: VReg(1),
                    }],
                    term: Terminator::Branch {
                        op: CmpOp::Lt,
                        a: VReg(1).into(),
                        b: Val::Const(10),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Terminator::Goto(BlockId(2)),
                },
                Block {
                    insts: vec![],
                    term: Terminator::Return(Some(VReg(1).into())),
                },
            ],
            entry: BlockId(0),
            vreg_count: 2,
        }
    }

    #[test]
    fn inst_def_use() {
        let i = Inst::Bin {
            op: AluOp::Isub,
            a: VReg(3).into(),
            b: Val::Const(2),
            d: VReg(4),
        };
        assert_eq!(i.dest(), Some(VReg(4)));
        assert_eq!(i.sources(), vec![VReg(3)]);
        let s = Inst::Store {
            val: VReg(1).into(),
            addr: VReg(2).into(),
        };
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), vec![VReg(1), VReg(2)]);
        assert!(s.is_store());
        assert!(s.touches_memory());
    }

    #[test]
    fn terminator_successors_and_sources() {
        let f = sample();
        assert_eq!(
            f.block(BlockId(0)).term.successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert_eq!(f.block(BlockId(0)).term.sources(), vec![VReg(1)]);
        assert!(f.block(BlockId(2)).term.successors().is_empty());
    }

    #[test]
    fn new_vreg_is_fresh() {
        let mut f = sample();
        let v = f.new_vreg();
        assert_eq!(v, VReg(2));
        assert_eq!(f.new_vreg(), VReg(3));
    }

    #[test]
    fn display_is_readable() {
        let text = sample().to_string();
        assert!(text.contains("bb0:"));
        assert!(text.contains("v1 = iadd v0, 1"));
        assert!(text.contains("if lt v1, 10 then bb1 else bb2"));
    }

    #[test]
    fn inst_count_sums_blocks() {
        assert_eq!(sample().inst_count(), 1);
    }
}
