//! Critical-path list scheduling of basic blocks into wide instructions.

use crate::dag::{Dag, Node};
use crate::ir::Block;

/// The schedule of one basic block.
///
/// `slots[c][f]` holds the DAG node issued on FU `f` in the block's cycle
/// `c`. The block's terminator executes in the *last* cycle; if the
/// terminator is a branch, its comparison is placed at least one cycle
/// earlier (condition codes are latched end-of-cycle), with padding cycles
/// appended when necessary.
#[derive(Debug, Clone)]
pub struct ScheduledBlock {
    /// Issue slots: `slots[cycle][fu]`.
    pub slots: Vec<Vec<Option<Node>>>,
    /// Where the terminator's comparison landed (`cycle`, `fu`), if any.
    pub cmp_slot: Option<(usize, usize)>,
}

impl ScheduledBlock {
    /// Number of cycles (= wide instructions) the block occupies.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the block occupies no cycles (never happens: even
    /// an empty block needs one cycle to hold its terminator).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Count of non-empty issue slots.
    pub fn ops(&self) -> usize {
        self.slots.iter().flatten().filter(|s| s.is_some()).count()
    }
}

/// List-schedules `block` for a machine of `width` functional units.
///
/// Nodes are prioritized by critical-path height; each cycle greedily packs
/// the ready nodes into the available issue slots.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```
/// use ximd_compiler::{dag, ir, schedule};
/// use ximd_isa::AluOp;
///
/// // Two independent adds: width 2 packs them into one cycle.
/// let block = ir::Block {
///     insts: vec![
///         ir::Inst::Bin { op: AluOp::Iadd, a: ir::VReg(0).into(), b: ir::Val::Const(1), d: ir::VReg(1) },
///         ir::Inst::Bin { op: AluOp::Iadd, a: ir::VReg(0).into(), b: ir::Val::Const(2), d: ir::VReg(2) },
///     ],
///     term: ir::Terminator::Return(None),
/// };
/// assert_eq!(schedule::schedule_block(&block, 2).len(), 1);
/// assert_eq!(schedule::schedule_block(&block, 1).len(), 2);
/// ```
pub fn schedule_block(block: &Block, width: usize) -> ScheduledBlock {
    assert!(width > 0, "machine width must be positive");
    let dag = Dag::build(block);
    let heights = dag.heights();
    let n = dag.nodes.len();

    let mut issue_cycle: Vec<Option<usize>> = vec![None; n];
    let mut issue_fu: Vec<usize> = vec![0; n];
    let mut unscheduled = n;
    let mut slots: Vec<Vec<Option<Node>>> = Vec::new();
    let mut cycle = 0usize;

    while unscheduled > 0 {
        let mut row: Vec<Option<Node>> = vec![None; width];
        let mut used = 0;
        // Placing a node can make its latency-0 (WAR) successors ready in
        // the same cycle, so re-scan until the row stops filling.
        loop {
            let mut ready: Vec<usize> = (0..n)
                .filter(|&i| issue_cycle[i].is_none())
                .filter(|&i| {
                    dag.preds[i].iter().all(|&(p, lat)| {
                        issue_cycle[p].is_some_and(|pc| pc + lat as usize <= cycle)
                    })
                })
                .collect();
            if ready.is_empty() || used == width {
                break;
            }
            // Highest critical path first; stable on original order.
            ready.sort_by_key(|&i| (std::cmp::Reverse(heights[i]), i));
            let before = used;
            for &node in ready.iter().take(width - used) {
                row[used] = Some(dag.nodes[node]);
                issue_cycle[node] = Some(cycle);
                issue_fu[node] = used;
                used += 1;
                unscheduled -= 1;
            }
            if used == before {
                break;
            }
        }
        slots.push(row);
        cycle += 1;
    }

    let cmp_slot = dag
        .cmp_node()
        .map(|c| (issue_cycle[c].expect("all nodes scheduled"), issue_fu[c]));

    // The branch executes in the last cycle and needs its condition latched:
    // ensure at least one cycle separates the compare from the block end.
    if slots.is_empty() {
        slots.push(vec![None; width]);
    }
    if let Some((cmp_cycle, _)) = cmp_slot {
        while cmp_cycle + 1 >= slots.len() {
            slots.push(vec![None; width]);
        }
    }

    ScheduledBlock { slots, cmp_slot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BlockId, Inst, Terminator, VReg, Val};
    use ximd_isa::{AluOp, CmpOp};

    fn add(a: Val, b: Val, d: VReg) -> Inst {
        Inst::Bin {
            op: AluOp::Iadd,
            a,
            b,
            d,
        }
    }

    #[test]
    fn independent_ops_pack_into_one_cycle() {
        let block = Block {
            insts: (0..4)
                .map(|i| add(VReg(0).into(), Val::Const(i), VReg(1 + i as u32)))
                .collect(),
            term: Terminator::Return(None),
        };
        let s = schedule_block(&block, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ops(), 4);
    }

    #[test]
    fn chain_serializes() {
        let block = Block {
            insts: vec![
                add(VReg(0).into(), Val::Const(1), VReg(1)),
                add(VReg(1).into(), Val::Const(1), VReg(2)),
                add(VReg(2).into(), Val::Const(1), VReg(3)),
            ],
            term: Terminator::Return(None),
        };
        let s = schedule_block(&block, 8);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn width_one_fully_serializes() {
        let block = Block {
            insts: (0..5)
                .map(|i| add(VReg(0).into(), Val::Const(i), VReg(1 + i as u32)))
                .collect(),
            term: Terminator::Return(None),
        };
        assert_eq!(schedule_block(&block, 1).len(), 5);
    }

    #[test]
    fn war_pairs_share_a_cycle() {
        // i0 reads v1, i1 overwrites v1: legal in one cycle (read-old).
        let block = Block {
            insts: vec![
                add(VReg(1).into(), Val::Const(1), VReg(2)),
                add(VReg(0).into(), Val::Const(9), VReg(1)),
            ],
            term: Terminator::Return(None),
        };
        assert_eq!(schedule_block(&block, 2).len(), 1);
    }

    #[test]
    fn branch_gets_padding_cycle_after_compare() {
        // Empty block with a branch: the compare occupies cycle 0, the
        // branch needs cycle 1.
        let block = Block {
            insts: vec![],
            term: Terminator::Branch {
                op: CmpOp::Lt,
                a: VReg(0).into(),
                b: Val::Const(3),
                then_bb: BlockId(0),
                else_bb: BlockId(0),
            },
        };
        let s = schedule_block(&block, 4);
        assert_eq!(s.cmp_slot, Some((0, 0)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn compare_depending_on_result_is_late() {
        let block = Block {
            insts: vec![add(VReg(0).into(), Val::Const(1), VReg(1))],
            term: Terminator::Branch {
                op: CmpOp::Eq,
                a: VReg(1).into(),
                b: Val::Const(0),
                then_bb: BlockId(0),
                else_bb: BlockId(0),
            },
        };
        let s = schedule_block(&block, 4);
        // add at 0, cmp at 1, branch at 2.
        assert_eq!(s.cmp_slot, Some((1, 0)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_block_still_one_cycle() {
        let block = Block {
            insts: vec![],
            term: Terminator::Return(None),
        };
        let s = schedule_block(&block, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ops(), 0);
    }

    #[test]
    fn schedule_respects_dependence_latencies() {
        // Exhaustive check on a mixed block: every edge satisfied.
        let block = Block {
            insts: vec![
                add(VReg(0).into(), Val::Const(1), VReg(1)),
                Inst::Store {
                    val: VReg(1).into(),
                    addr: Val::Const(7),
                },
                Inst::Load {
                    base: Val::Const(7),
                    off: Val::Const(0),
                    d: VReg(2),
                },
                add(VReg(2).into(), VReg(1).into(), VReg(3)),
            ],
            term: Terminator::Return(None),
        };
        let s = schedule_block(&block, 2);
        let dag = Dag::build(&block);
        // Recover issue cycles.
        let mut at = vec![usize::MAX; dag.nodes.len()];
        for (c, row) in s.slots.iter().enumerate() {
            for node in row.iter().flatten() {
                if let Node::Inst(i) = node {
                    at[*i] = c;
                }
            }
        }
        for (i, succs) in dag.succs.iter().enumerate() {
            for &(j, lat) in succs {
                assert!(
                    at[j] >= at[i] + lat as usize,
                    "edge {i}->{j} lat {lat} violated: {at:?}"
                );
            }
        }
    }
}
