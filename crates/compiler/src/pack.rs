//! Tile packing — the second half of the paper's Figure 13 flow.
//!
//! "Once a set of tiles is produced for each code thread, a packing
//! algorithm is used to schedule one implementation of each thread within a
//! larger space representing the entire instruction memory. … This problem
//! is quite similar to the problem of standard cell placement in VLSI CAD."
//!
//! Two packers reproduce the figure's "two alternative solutions":
//!
//! * [`pack_stacked`] — every thread at full machine width, stacked
//!   vertically (the naive VLIW-style layout);
//! * [`pack_skyline`] — each thread's minimum-area tile placed by a
//!   skyline/best-fit heuristic, optionally under precedence constraints
//!   modelling data dependencies between tiles.

use crate::tile::TileMenu;

/// One placed tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Thread index.
    pub thread: usize,
    /// Chosen tile width (functional units).
    pub width: usize,
    /// Chosen tile height (wide instructions).
    pub height: usize,
    /// Leftmost functional-unit column.
    pub col: usize,
    /// First instruction-memory row.
    pub row: usize,
    /// Non-nop operations in the placed tile (for op-density reporting).
    pub ops: usize,
}

impl Placement {
    /// One-past-the-last row.
    pub fn end_row(&self) -> usize {
        self.row + self.height
    }

    /// Returns `true` if two placements overlap in instruction memory.
    pub fn overlaps(&self, other: &Placement) -> bool {
        self.col < other.col + other.width
            && other.col < self.col + self.width
            && self.row < other.end_row()
            && other.row < self.end_row()
    }
}

/// A complete packing of all threads.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// One placement per thread.
    pub placements: Vec<Placement>,
    /// Machine width (total columns).
    pub machine_width: usize,
}

impl Packing {
    /// Total instruction-memory height (static code size in wide words).
    pub fn total_height(&self) -> usize {
        self.placements
            .iter()
            .map(Placement::end_row)
            .max()
            .unwrap_or(0)
    }

    /// Fraction of the occupied rectangle covered by tiles.
    pub fn density(&self) -> f64 {
        let total = self.total_height() * self.machine_width;
        if total == 0 {
            return 0.0;
        }
        let used: usize = self.placements.iter().map(|p| p.width * p.height).sum();
        used as f64 / total as f64
    }

    /// Useful (non-nop) operations per instruction-memory slot — the
    /// "static code density" Figure 13 optimizes. Unlike [`Packing::density`],
    /// nop padding *inside* a tile counts against this metric, so a stacked
    /// full-width layout cannot score well by wasting slots within tiles.
    pub fn op_density(&self) -> f64 {
        let total = self.total_height() * self.machine_width;
        if total == 0 {
            return 0.0;
        }
        let ops: usize = self.placements.iter().map(|p| p.ops).sum();
        ops as f64 / total as f64
    }

    /// Returns `true` if no two placements overlap and all fit the machine.
    pub fn is_valid(&self) -> bool {
        for (i, a) in self.placements.iter().enumerate() {
            if a.col + a.width > self.machine_width {
                return false;
            }
            for b in &self.placements[i + 1..] {
                if a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if every `(before, after)` pair is honoured: the
    /// dependent tile starts strictly after the prerequisite tile ends.
    pub fn respects(&self, deps: &[(usize, usize)]) -> bool {
        deps.iter().all(|&(before, after)| {
            let b = self.placements.iter().find(|p| p.thread == before);
            let a = self.placements.iter().find(|p| p.thread == after);
            match (b, a) {
                (Some(b), Some(a)) => a.row >= b.end_row(),
                _ => false,
            }
        })
    }
}

/// Baseline: every thread takes its widest tile (clamped to the machine)
/// and the tiles are stacked vertically — one thread at a time, full-width,
/// like a VLIW program laid out sequentially.
pub fn pack_stacked(menus: &[TileMenu], machine_width: usize) -> Packing {
    let mut row = 0;
    let mut placements = Vec::with_capacity(menus.len());
    for menu in menus {
        let tile = menu
            .options
            .iter()
            .filter(|t| t.width <= machine_width)
            .max_by_key(|t| t.width)
            .expect("menu has a tile fitting the machine");
        placements.push(Placement {
            thread: menu.thread,
            width: tile.width,
            height: tile.height,
            col: 0,
            row,
            ops: tile.ops,
        });
        row += tile.height;
    }
    Packing {
        placements,
        machine_width,
    }
}

/// Skyline best-fit: each thread contributes its minimum-area tile; threads
/// are placed largest-area first at the position minimizing the resulting
/// skyline height (ties broken left-most). `deps` lists `(before, after)`
/// thread pairs whose code must be strictly ordered in instruction memory —
/// the paper's "constraint of data dependencies between tiles".
pub fn pack_skyline(menus: &[TileMenu], machine_width: usize, deps: &[(usize, usize)]) -> Packing {
    let mut chosen: Vec<(usize, usize, usize, usize)> = menus
        .iter()
        .map(|m| {
            let t = m
                .options
                .iter()
                .filter(|t| t.width <= machine_width)
                .min_by_key(|t| (t.area(), t.width))
                .expect("menu has a tile fitting the machine");
            (m.thread, t.width, t.height, t.ops)
        })
        .collect();
    // Order: dependency-respecting topological layers, largest area first
    // within a layer.
    let order = topo_order(&chosen, deps);
    chosen = order.into_iter().map(|i| chosen[i]).collect();

    let mut skyline = vec![0usize; machine_width];
    let mut placements: Vec<Placement> = Vec::with_capacity(chosen.len());
    for (thread, width, height, ops) in chosen {
        // Earliest row allowed by dependencies.
        let dep_floor = deps
            .iter()
            .filter(|&&(_, after)| after == thread)
            .filter_map(|&(before, _)| {
                placements
                    .iter()
                    .find(|p| p.thread == before)
                    .map(Placement::end_row)
            })
            .max()
            .unwrap_or(0);
        // Best column: minimal placement row, then leftmost.
        let mut best: Option<(usize, usize)> = None; // (row, col)
        for col in 0..=(machine_width - width) {
            let row = skyline[col..col + width]
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
                .max(dep_floor);
            if best.is_none_or(|(br, bc)| (row, col) < (br, bc)) {
                best = Some((row, col));
            }
        }
        let (row, col) = best.expect("width fits the machine");
        for s in &mut skyline[col..col + width] {
            *s = row + height;
        }
        placements.push(Placement {
            thread,
            width,
            height,
            col,
            row,
            ops,
        });
    }
    placements.sort_by_key(|p| p.thread);
    Packing {
        placements,
        machine_width,
    }
}

/// Topological order over thread indices (by `deps`), largest area first
/// among ready threads. Falls back to input order on cycles.
fn topo_order(chosen: &[(usize, usize, usize, usize)], deps: &[(usize, usize)]) -> Vec<usize> {
    let n = chosen.len();
    let index_of = |thread: usize| chosen.iter().position(|&(t, _, _, _)| t == thread);
    let mut indeg = vec![0usize; n];
    for &(before, after) in deps {
        if let (Some(_), Some(a)) = (index_of(before), index_of(after)) {
            indeg[a] += 1;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let ready: Vec<usize> = (0..n).filter(|&i| !placed[i] && indeg[i] == 0).collect();
        if ready.is_empty() {
            // Dependency cycle: emit the rest in input order.
            order.extend((0..n).filter(|&i| !placed[i]));
            break;
        }
        let &pick = ready
            .iter()
            .max_by_key(|&&i| chosen[i].1 * chosen[i].2)
            .expect("ready set non-empty");
        placed[pick] = true;
        order.push(pick);
        for &(before, after) in deps {
            if index_of(before) == Some(pick) {
                if let Some(a) = index_of(after) {
                    indeg[a] = indeg[a].saturating_sub(1);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::menus;

    const SRC: &str = r"
fn t0(a) {
    let s = 0;
    let i = 0;
    while (i < a) { s = s + mem[100 + i]; i = i + 1; }
    return s;
}
fn t1(a, b, c, d) {
    let e = a + b; let f = c + d; let g = a - b; let h = c - d;
    return (e + f) * (g + h);
}
fn t2(a) {
    let r = 1;
    let i = 0;
    while (i < a) { r = r * 2; i = i + 1; }
    return r;
}
fn t3(a, b) {
    return (a + b) * (a - b) + a * b;
}
fn t4(a) {
    let i = 0;
    while (i < a) { mem[300 + i] = mem[200 + i] + 1; i = i + 1; }
    return 0;
}
fn t5(a, b, c) {
    return a * b + b * c + a * c;
}
";

    fn six_menus() -> Vec<crate::tile::TileMenu> {
        menus(SRC, &[1, 2, 4, 8]).unwrap()
    }

    #[test]
    fn stacked_packing_is_valid() {
        let p = pack_stacked(&six_menus(), 8);
        assert!(p.is_valid());
        assert_eq!(p.placements.len(), 6);
        // Strictly sequential: total height is the sum of heights.
        let sum: usize = p.placements.iter().map(|t| t.height).sum();
        assert_eq!(p.total_height(), sum);
    }

    #[test]
    fn skyline_packing_is_valid_and_no_taller() {
        let menus = six_menus();
        let stacked = pack_stacked(&menus, 8);
        let skyline = pack_skyline(&menus, 8, &[]);
        assert!(skyline.is_valid());
        assert!(
            skyline.total_height() <= stacked.total_height(),
            "skyline {} vs stacked {}",
            skyline.total_height(),
            stacked.total_height()
        );
    }

    #[test]
    fn skyline_improves_density_markedly() {
        let menus = six_menus();
        let stacked = pack_stacked(&menus, 8);
        let skyline = pack_skyline(&menus, 8, &[]);
        assert!(
            skyline.total_height() * 10 <= stacked.total_height() * 9,
            "expected >= 10% static-code-size win: skyline {} stacked {}",
            skyline.total_height(),
            stacked.total_height()
        );
    }

    #[test]
    fn dependencies_are_respected() {
        let menus = six_menus();
        let deps = [(0usize, 3usize), (1, 4), (3, 5)];
        let p = pack_skyline(&menus, 8, &deps);
        assert!(p.is_valid());
        assert!(p.respects(&deps));
    }

    #[test]
    fn dependency_chain_degrades_toward_stacking() {
        let menus = six_menus();
        let chain: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        let free = pack_skyline(&menus, 8, &[]);
        let chained = pack_skyline(&menus, 8, &chain);
        assert!(chained.is_valid());
        assert!(chained.respects(&chain));
        assert!(chained.total_height() >= free.total_height());
    }

    #[test]
    fn overlap_detection() {
        let a = Placement {
            thread: 0,
            width: 2,
            height: 3,
            col: 0,
            row: 0,
            ops: 4,
        };
        let b = Placement {
            thread: 1,
            width: 2,
            height: 3,
            col: 1,
            row: 2,
            ops: 4,
        };
        let c = Placement {
            thread: 2,
            width: 2,
            height: 3,
            col: 2,
            row: 0,
            ops: 4,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        let bad = Packing {
            placements: vec![a, b],
            machine_width: 8,
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn density_is_sane() {
        let p = pack_skyline(&six_menus(), 8, &[]);
        let d = p.density();
        assert!(d > 0.0 && d <= 1.0, "density {d}");
    }
}
