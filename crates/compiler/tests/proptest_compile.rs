//! Differential fuzzing of the full compilation pipeline: random mini-C
//! functions are executed by a direct AST interpreter and by the compiled
//! program on vsim (and its XIMD lowering on xsim), at several machine
//! widths. Any divergence is a bug in lowering, percolation, scheduling,
//! register allocation or emission.

use std::collections::HashMap;

use proptest::prelude::*;
use ximd_compiler::lang::{Cond, Expr, FnDef, Stmt};
use ximd_compiler::{compile_function, lower};
use ximd_isa::{CmpOp, Value};
use ximd_sim::{MachineConfig, Vsim, Xsim};

const MEM_WORDS: usize = 32;

/// Reference interpreter over the AST, sharing the ISA's arithmetic
/// (`AluOp::eval`) so the semantics match by construction.
struct Interp {
    vars: Vec<HashMap<String, i32>>,
    mem: [i32; MEM_WORDS],
}

enum Flow {
    Normal,
    Returned(Option<i32>),
}

impl Interp {
    fn expr(&mut self, e: &Expr) -> i32 {
        match e {
            Expr::Int(v) => *v,
            Expr::Var(name) => self
                .vars
                .iter()
                .rev()
                .find_map(|s| s.get(name).copied())
                .expect("generator only references defined variables"),
            Expr::Mem(addr) => {
                let a = self.expr(addr).rem_euclid(MEM_WORDS as i32) as usize;
                self.mem[a]
            }
            Expr::Bin(op, l, r) => {
                let a = self.expr(l);
                let b = self.expr(r);
                op.eval(Value::I32(a), Value::I32(b))
                    .expect("generator avoids faulting divides")
                    .as_i32()
            }
            Expr::Neg(inner) => self.expr(inner).wrapping_neg(),
        }
    }

    fn cond(&mut self, c: &Cond) -> bool {
        let a = self.expr(&c.a);
        let b = self.expr(&c.b);
        c.op.eval(Value::I32(a), Value::I32(b))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Flow {
        self.vars.push(HashMap::new());
        for stmt in body {
            match self.stmt(stmt) {
                Flow::Normal => {}
                ret @ Flow::Returned(_) => {
                    self.vars.pop();
                    return ret;
                }
            }
        }
        self.vars.pop();
        Flow::Normal
    }

    fn stmt(&mut self, stmt: &Stmt) -> Flow {
        match stmt {
            Stmt::Let(name, e) => {
                let v = self.expr(e);
                self.vars.last_mut().unwrap().insert(name.clone(), v);
                Flow::Normal
            }
            Stmt::Assign(name, e) => {
                let v = self.expr(e);
                let slot = self
                    .vars
                    .iter_mut()
                    .rev()
                    .find_map(|s| s.get_mut(name))
                    .expect("assign to defined variable");
                *slot = v;
                Flow::Normal
            }
            Stmt::MemStore(addr, value) => {
                let a = self.expr(addr).rem_euclid(MEM_WORDS as i32) as usize;
                let v = self.expr(value);
                self.mem[a] = v;
                Flow::Normal
            }
            Stmt::If(c, t, e) => {
                if self.cond(c) {
                    self.stmts(t)
                } else {
                    self.stmts(e)
                }
            }
            Stmt::While(_, _) => unreachable!("generator emits no loops"),
            Stmt::Return(e) => Flow::Returned(e.as_ref().map(|e| self.expr(e))),
        }
    }

    fn run(def: &FnDef, args: &[i32], mem: [i32; MEM_WORDS]) -> (Option<i32>, [i32; MEM_WORDS]) {
        let mut scope = HashMap::new();
        for (p, &a) in def.params.iter().zip(args) {
            scope.insert(p.clone(), a);
        }
        let mut interp = Interp {
            vars: vec![scope],
            mem,
        };
        match interp.stmts(&def.body) {
            Flow::Returned(v) => (v, interp.mem),
            Flow::Normal => (None, interp.mem),
        }
    }
}

// ------------------------------------------------------------ generators --

/// Variables available at a point: parameters plus previously-let names.
fn var_name(i: usize) -> String {
    format!("x{i}")
}

fn arb_expr(vars: usize, depth: u32) -> BoxedStrategy<Expr> {
    use ximd_isa::AluOp::*;
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(Expr::Int),
        (0..vars.max(1)).prop_map(move |i| if vars == 0 {
            Expr::Int(3)
        } else {
            Expr::Var(var_name(i))
        }),
        (0i32..MEM_WORDS as i32).prop_map(|a| Expr::Mem(Box::new(Expr::Int(a)))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(vars, depth - 1);
    let sub2 = arb_expr(vars, depth - 1);
    prop_oneof![
        3 => leaf,
        4 => (
            proptest::sample::select(vec![Iadd, Isub, Imult, And, Or, Xor, Shl, Sar]),
            sub.clone(),
            sub2
        )
            .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
        1 => (proptest::sample::select(vec![Idiv, Imod]), sub.clone(), 1i32..50)
            .prop_map(|(op, l, d)| Expr::Bin(op, Box::new(l), Box::new(Expr::Int(d)))),
        1 => sub.prop_map(|e| Expr::Neg(Box::new(e))),
    ]
    .boxed()
}

fn arb_cond(vars: usize) -> impl Strategy<Value = Cond> {
    (
        proptest::sample::select(CmpOp::ALL[..6].to_vec()),
        arb_expr(vars, 1),
        arb_expr(vars, 1),
    )
        .prop_map(|(op, a, b)| Cond { op, a, b })
}

fn arb_stmts(vars: usize, depth: u32, len: usize) -> BoxedStrategy<(Vec<Stmt>, usize)> {
    // Returns statements plus the updated number of visible variables.
    if len == 0 {
        return Just((Vec::new(), vars)).boxed();
    }
    let stmt = arb_stmt(vars, depth);
    (stmt, Just(()))
        .prop_flat_map(move |((s, nvars), ())| {
            arb_stmts(nvars, depth, len - 1).prop_map(move |(mut rest, final_vars)| {
                let mut out = vec![s.clone()];
                out.append(&mut rest);
                (out, final_vars)
            })
        })
        .boxed()
}

fn arb_stmt(vars: usize, depth: u32) -> BoxedStrategy<(Stmt, usize)> {
    let let_stmt = arb_expr(vars, 2).prop_map(move |e| (Stmt::Let(var_name(vars), e), vars + 1));
    let assign = if vars > 0 {
        (0..vars, arb_expr(vars, 2))
            .prop_map(move |(i, e)| (Stmt::Assign(var_name(i), e), vars))
            .boxed()
    } else {
        let_stmt.clone().boxed()
    };
    let store = ((0i32..MEM_WORDS as i32), arb_expr(vars, 2))
        .prop_map(move |(a, v)| (Stmt::MemStore(Expr::Int(a), v), vars));
    if depth == 0 {
        return prop_oneof![2 => let_stmt, 2 => assign, 1 => store].boxed();
    }
    // Inner blocks introduce scoped variables which the lowering handles;
    // to keep the generator's variable accounting simple, branch bodies
    // only assign/store (no lets leak out).
    let ifelse = (
        arb_cond(vars),
        arb_stmts_flat(vars, depth - 1, 2),
        arb_stmts_flat(vars, depth - 1, 2),
    )
        .prop_map(move |(c, t, e)| (Stmt::If(c, t, e), vars));
    prop_oneof![3 => let_stmt, 3 => assign, 1 => store, 2 => ifelse].boxed()
}

/// Statements that do not change the visible-variable count.
fn arb_stmts_flat(vars: usize, _depth: u32, len: usize) -> BoxedStrategy<Vec<Stmt>> {
    let one = move || {
        if vars > 0 {
            prop_oneof![
                (0..vars, arb_expr(vars, 1))
                    .prop_map(move |(i, e)| Stmt::Assign(var_name(i), e))
                    .boxed(),
                ((0i32..MEM_WORDS as i32), arb_expr(vars, 1))
                    .prop_map(|(a, v)| Stmt::MemStore(Expr::Int(a), v))
                    .boxed(),
            ]
            .boxed()
        } else {
            ((0i32..MEM_WORDS as i32), arb_expr(vars, 1))
                .prop_map(|(a, v)| Stmt::MemStore(Expr::Int(a), v))
                .boxed()
        }
    };
    let base = one();
    proptest::collection::vec(base, 1..=len).boxed()
}

prop_compose! {
    fn arb_function()(nparams in 0usize..3)(
        nparams in Just(nparams),
        body in arb_stmts(nparams, 2, 5),
        ret in arb_expr(nparams, 2),
    ) -> FnDef {
        let (mut stmts, final_vars) = body;
        let ret = match ret {
            // The return may reference any variable in scope at the end.
            Expr::Var(_) if final_vars == 0 => Expr::Int(0),
            other => other,
        };
        stmts.push(Stmt::Return(Some(ret)));
        FnDef {
            name: "fuzz".into(),
            params: (0..nparams).map(var_name).collect(),
            body: stmts,
        }
    }
}

fn run_compiled(
    def: &FnDef,
    width: usize,
    args: &[i32],
    mem: &[i32; MEM_WORDS],
) -> (Option<i32>, Vec<i32>, Option<i32>, Vec<i32>) {
    let func = lower::lower(def).expect("generated functions lower");
    let compiled = compile_function(&func, width).expect("generated functions compile");

    let mut vs = Vsim::new(compiled.vliw.clone(), MachineConfig::with_width(width)).unwrap();
    let mut xs = Xsim::new(compiled.ximd_program(), MachineConfig::with_width(width)).unwrap();
    for (&r, &a) in compiled.param_regs.iter().zip(args) {
        vs.write_reg(r, a.into());
        xs.write_reg(r, a.into());
    }
    vs.mem_mut().poke_slice(0, mem).unwrap();
    xs.mem_mut().poke_slice(0, mem).unwrap();
    vs.run(100_000).expect("generated programs run clean");
    xs.run(100_000).expect("generated programs run clean");
    (
        compiled.ret_reg.map(|r| vs.reg(r).as_i32()),
        vs.mem().peek_slice(0, MEM_WORDS).unwrap(),
        compiled.ret_reg.map(|r| xs.reg(r).as_i32()),
        xs.mem().peek_slice(0, MEM_WORDS).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_code_matches_ast_interpreter(
        def in arb_function(),
        args in proptest::collection::vec(-500i32..500, 3),
        mem_seed in any::<u32>(),
        width in proptest::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let mut mem = [0i32; MEM_WORDS];
        for (i, w) in mem.iter_mut().enumerate() {
            *w = (mem_seed as i32).wrapping_mul(31).wrapping_add(i as i32 * 17) % 1000;
        }
        let (expect_ret, expect_mem) = Interp::run(&def, &args, mem);
        let (v_ret, v_mem, x_ret, x_mem) = run_compiled(&def, width, &args, &mem);
        prop_assert_eq!(v_ret, expect_ret, "vsim return (width {})", width);
        prop_assert_eq!(&v_mem[..], &expect_mem[..], "vsim memory (width {})", width);
        prop_assert_eq!(x_ret, expect_ret, "xsim return (width {})", width);
        prop_assert_eq!(&x_mem[..], &expect_mem[..], "xsim memory (width {})", width);
    }
}
