//! `xlint` — static verifier for XIMD-1 assembler programs.
//!
//! Exit status: 0 clean (or warnings without `--strict`), 1 findings,
//! 2 usage or input errors, 3 analysis incomplete (the product state cap
//! was hit and no error-severity finding was made).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprint!("{}", ximd::cli::LINT_USAGE);
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    match ximd::cli::parse_lint_args(&args).and_then(|opts| ximd::cli::run_xlint(&opts)) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.failed {
                std::process::exit(1);
            }
            if outcome.incomplete {
                std::process::exit(3);
            }
        }
        Err(message) => {
            eprintln!("xlint: {message}");
            std::process::exit(2);
        }
    }
}
