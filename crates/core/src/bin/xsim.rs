//! `xsim` — the XIMD-1 simulator as a command-line tool (cf. \[Wolfe89\]).
//!
//! Exit status: 0 ok, 1 simulation failure, 2 usage or input error.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprint!("{}", ximd::cli::USAGE.replace("{tool}", "xsim"));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let opts = match ximd::cli::parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("xsim: {message}");
            std::process::exit(2);
        }
    };
    match ximd::cli::run_xsim(&opts) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("xsim: {message}");
            std::process::exit(1);
        }
    }
}
