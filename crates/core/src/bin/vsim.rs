//! `vsim` — the companion VLIW simulator as a command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprint!("{}", ximd::cli::USAGE.replace("{tool}", "vsim"));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    match ximd::cli::parse_args(&args).and_then(|opts| ximd::cli::run_vsim(&opts)) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("vsim: {message}");
            std::process::exit(1);
        }
    }
}
