//! **XIMD** — a variable instruction stream extension to the VLIW
//! architecture.
//!
//! This is the umbrella crate of a from-scratch reproduction of
//! *Wolfe & Shen, "A Variable Instruction Stream Extension to the VLIW
//! Architecture", ASPLOS 1991*. XIMD is a VLIW-structured machine whose
//! instruction sequencer is replicated per functional unit: shared
//! condition codes and 1-bit sync signals let the compiler run the machine
//! as one lock-step VLIW, as N independent streams, or as any dynamically
//! varying partition of *synchronous sets* (SSETs) in between.
//!
//! The workspace is re-exported here by subsystem:
//!
//! * [`isa`] — the XIMD-1 instruction-set model (parcels, wide words,
//!   control operations, binary encoding);
//! * [`asm`] — assembler/disassembler for the paper's textual format;
//! * [`sim`] — **xsim** (cycle-accurate XIMD-1) and **vsim** (the VLIW
//!   companion baseline), with partition tracking and Figure-10 traces;
//! * [`compiler`] — mini-C frontend, list scheduling, percolation, modulo
//!   scheduling (software pipelining), tile generation and packing;
//! * [`workloads`] — the paper's programs (TPROC, MINMAX, BITCOUNT1,
//!   Livermore Loop 12, the Figure 12 non-blocking sync pair) plus oracles;
//! * [`models`] — the §2 SISD/SIMD/VLIW/MIMD/XIMD state-machine hierarchy
//!   with executable emulation theorems.
//!
//! # Quick start
//!
//! Assemble a two-FU program where the units fork on their own condition
//! codes and re-join, then inspect the partition trace:
//!
//! ```
//! use ximd::prelude::*;
//!
//! let source = r"
//! .width 2
//! 00:
//!   fu0: lt r0,#10  ; -> 01:
//!   fu1: gt r1,#0   ; -> 01:
//! 01:
//!   fu0: nop ; if cc0 02: | 03:
//!   fu1: nop ; if cc1 02: | 03:
//! 02:
//!   all: nop ; -> 03:
//! 03:
//!   all: nop ; halt
//! ";
//! let assembly = ximd::asm::assemble(source)?;
//! let mut sim = Xsim::new(assembly.program, MachineConfig::with_width(2))?;
//! sim.enable_trace();
//! sim.run(100)?;
//! assert!(sim.trace().unwrap().max_streams() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cli;

pub use ximd_analysis as analysis;
pub use ximd_asm as asm;
pub use ximd_compiler as compiler;
pub use ximd_isa as isa;
pub use ximd_models as models;
pub use ximd_sim as sim;
pub use ximd_workloads as workloads;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use ximd_asm::{assemble, print_program, Assembly};
    pub use ximd_isa::{
        Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Program, Reg,
        SyncSignal, UnOp, Value,
    };
    pub use ximd_sim::{
        IoPort, MachineConfig, Partition, SimError, SimStats, Trace, VliwInstruction, VliwProgram,
        Vsim, Xsim,
    };
}

use ximd_sim::SimStats;

/// The result of running one workload on both machines — the row type of
/// the paper's xsim-vs-vsim comparison (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Workload name.
    pub name: String,
    /// Statistics of the XIMD (xsim) run.
    pub ximd: SimStats,
    /// Statistics of the VLIW (vsim) run.
    pub vliw: SimStats,
}

impl Comparison {
    /// VLIW cycles divided by XIMD cycles (> 1 means XIMD wins).
    pub fn speedup(&self) -> f64 {
        if self.ximd.cycles == 0 {
            0.0
        } else {
            self.vliw.cycles as f64 / self.ximd.cycles as f64
        }
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} xsim {:>8} cycles ({} streams max)   vsim {:>8} cycles   speedup {:.2}x",
            self.name,
            self.ximd.cycles,
            self.ximd.max_concurrent_streams,
            self.vliw.cycles,
            self.speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_speedup() {
        let c = Comparison {
            name: "t".into(),
            ximd: SimStats {
                cycles: 50,
                ..SimStats::default()
            },
            vliw: SimStats {
                cycles: 100,
                ..SimStats::default()
            },
        };
        assert_eq!(c.speedup(), 2.0);
        assert!(c.to_string().contains("speedup 2.00x"));
    }

    #[test]
    fn zero_cycle_guard() {
        let c = Comparison {
            name: "t".into(),
            ximd: SimStats::default(),
            vliw: SimStats {
                cycles: 10,
                ..SimStats::default()
            },
        };
        assert_eq!(c.speedup(), 0.0);
    }
}
