//! Shared implementation of the `xsim` and `vsim` command-line tools.
//!
//! The paper's evaluation used standalone simulators of the same names
//! \[Wolfe89\]; these binaries expose this workspace's simulators the same
//! way: assemble a source file, seed registers and memory from the command
//! line, run, and report statistics (and, for xsim, the Figure-10-style
//! partition trace).
//!
//! Local runs are plumbed through the service layer's primitives — an
//! [`ximd_serve::ArtifactStore`] for assembly and a [`ximd_sim::Session`]
//! for execution — so the in-process path and the daemon exercise the
//! same code. With `--connect HOST:PORT` the tools become thin clients of
//! a running `ximd-serve` daemon instead of simulating in-process.
//!
//! Exit codes are uniform across the workspace binaries: 0 ok, 1
//! simulation/lint failure, 2 usage or input error, 3 analysis incomplete
//! (`xlint` only).

use std::fmt::Write as _;

use ximd_isa::{Addr, Reg, Value};
use ximd_serve::{json, ArtifactStore, Client, Message};
use ximd_sim::backend::{self, BackendHandle, BackendRequest};
use ximd_sim::{MachineConfig, TimingSpec, VliwProgram, Vsim, Xsim};

/// Parsed command-line options for both tools.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// Path to the assembler source file.
    pub source: Option<String>,
    /// Seed `reg = value` pairs.
    pub regs: Vec<(Reg, i32)>,
    /// Seed `addr = values…` memory images.
    pub mems: Vec<(i64, Vec<i32>)>,
    /// Cycle budget (default 1,000,000).
    pub max_cycles: u64,
    /// Print the per-cycle trace (xsim only).
    pub trace: bool,
    /// Print the trace as CSV instead of the Figure-10 table.
    pub csv: bool,
    /// Treat this address as a terminal self-loop park (xsim only).
    pub park: Option<Addr>,
    /// Registers to print after the run.
    pub dump_regs: Vec<Reg>,
    /// Memory ranges `(addr, len)` to print after the run.
    pub dump_mems: Vec<(i64, usize)>,
    /// I/O port schedules: `ports[i]` lists `(ready_cycle, value)` pairs.
    /// Ports are attached in index order; gaps become empty ports.
    pub ports: Vec<Vec<(u64, i32)>>,
    /// Microarchitecture timing model (default ideal).
    pub timing: TimingSpec,
    /// Number of identical lane-engine instances to run in lockstep
    /// (xsim only; default 1 = a single machine).
    pub lanes: usize,
    /// Execution backend for the run (xsim only): a registry name or
    /// `auto`. `None` means `auto` with the `XIMD_BACKEND` environment
    /// variable as a soft preference.
    pub backend: Option<String>,
    /// Submit the job to a running `ximd-serve` daemon at this address
    /// instead of simulating in-process (xsim only).
    pub connect: Option<String>,
}

/// Usage text shared by both tools.
pub const USAGE: &str = "\
usage: {tool} FILE.xasm [options]
  --reg rN=V          seed register N with integer V (repeatable)
  --mem ADDR=V,V,...  seed memory words starting at ADDR (repeatable)
  --max-cycles N      cycle budget (default 1000000)
  --trace             print the per-cycle address/partition trace (xsim)
  --csv               print the trace as CSV (implies --trace)
  --park ADDR         stop once all FUs reach the self-loop at ADDR (xsim)
  --dump-reg rN       print a register after the run (repeatable)
  --dump-mem ADDR:LEN print LEN memory words after the run (repeatable)
  --port N=C:V,C:V    attach I/O port N delivering value V at cycle C (xsim)
  --timing MODEL      timing model: ideal | latency:CLASS=N,... | banked:N
                      (default ideal; latency classes: alu imul idiv fadd
                      fmul fdiv mem io)
  --lanes N           run N identical instances on the SoA lane engine
                      (xsim; ideal timing only, incompatible with --trace)
  --backend B         execution backend: auto (default) | interp | decoded |
                      lanes (xsim; auto picks the most capable registered
                      backend for the request, and XIMD_BACKEND=NAME is a
                      soft preference honoured when that backend fits; a
                      named backend that cannot satisfy the request is a
                      usage error)
  --connect HOST:PORT submit the job to a running ximd-serve daemon and
                      report its response (xsim; machine state stays on
                      the daemon, so seeding and dump flags do not apply)

exit status: 0 ok, 1 simulation failure, 2 usage or input error
";

fn parse_reg(text: &str) -> Result<Reg, String> {
    text.strip_prefix('r')
        .and_then(|n| n.parse::<u16>().ok())
        .map(Reg)
        .ok_or_else(|| format!("bad register {text:?} (expected rN)"))
}

/// Parses argv (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for malformed arguments.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        max_cycles: 1_000_000,
        lanes: 1,
        ..CliOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--reg" => {
                let spec = need("--reg")?;
                let (r, v) = spec.split_once('=').ok_or("--reg expects rN=V")?;
                let value: i32 = v.parse().map_err(|_| format!("bad value {v:?}"))?;
                opts.regs.push((parse_reg(r)?, value));
            }
            "--mem" => {
                let spec = need("--mem")?;
                let (a, vs) = spec.split_once('=').ok_or("--mem expects ADDR=V,V,...")?;
                let addr: i64 = a.parse().map_err(|_| format!("bad address {a:?}"))?;
                let values: Result<Vec<i32>, _> = vs.split(',').map(str::parse).collect();
                opts.mems
                    .push((addr, values.map_err(|_| format!("bad values {vs:?}"))?));
            }
            "--max-cycles" => {
                opts.max_cycles = need("--max-cycles")?
                    .parse()
                    .map_err(|_| "bad --max-cycles value")?;
            }
            "--trace" => opts.trace = true,
            "--csv" => {
                opts.trace = true;
                opts.csv = true;
            }
            "--park" => {
                let a = need("--park")?;
                let addr = u32::from_str_radix(a.trim_end_matches(':'), 16)
                    .map_err(|_| format!("bad hex address {a:?}"))?;
                opts.park = Some(Addr(addr));
            }
            "--port" => {
                let spec = need("--port")?;
                let (idx, sched) = spec.split_once('=').ok_or("--port expects N=C:V,...")?;
                let idx: usize = idx.parse().map_err(|_| format!("bad port {idx:?}"))?;
                let mut events = Vec::new();
                for pair in sched.split(',') {
                    let (c, v) = pair.split_once(':').ok_or("--port events are C:V")?;
                    events.push((
                        c.parse().map_err(|_| format!("bad cycle {c:?}"))?,
                        v.parse().map_err(|_| format!("bad value {v:?}"))?,
                    ));
                }
                if opts.ports.len() <= idx {
                    opts.ports.resize(idx + 1, Vec::new());
                }
                opts.ports[idx] = events;
            }
            "--timing" => {
                opts.timing = TimingSpec::parse(need("--timing")?).map_err(|e| e.to_string())?;
            }
            "--lanes" => {
                opts.lanes = need("--lanes")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("bad --lanes value (expected N >= 1)")?;
            }
            "--backend" => opts.backend = Some(need("--backend")?.to_owned()),
            "--engine" => {
                return Err(
                    "--engine is the xlint analysis flag; use --backend NAME|auto to pick an \
                     execution backend"
                        .into(),
                );
            }
            "--connect" => opts.connect = Some(need("--connect")?.to_owned()),
            "--dump-reg" => opts.dump_regs.push(parse_reg(need("--dump-reg")?)?),
            "--dump-mem" => {
                let spec = need("--dump-mem")?;
                let (a, l) = spec.split_once(':').ok_or("--dump-mem expects ADDR:LEN")?;
                opts.dump_mems.push((
                    a.parse().map_err(|_| format!("bad address {a:?}"))?,
                    l.parse().map_err(|_| format!("bad length {l:?}"))?,
                ));
            }
            other if !other.starts_with('-') && opts.source.is_none() => {
                opts.source = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.source.is_none() {
        return Err("no source file given".into());
    }
    if opts.lanes > 1 && opts.trace {
        return Err("--lanes is incompatible with --trace (lanes share one fetch)".into());
    }
    if opts.connect.is_some() {
        // The daemon's simulate op carries source + engine + budget +
        // park + timing; machine state never leaves the daemon.
        let unsupported = [
            (!opts.regs.is_empty(), "--reg"),
            (!opts.mems.is_empty(), "--mem"),
            (!opts.ports.is_empty(), "--port"),
            (opts.trace, "--trace"),
            (!opts.dump_regs.is_empty(), "--dump-reg"),
            (!opts.dump_mems.is_empty(), "--dump-mem"),
            (opts.lanes > 1, "--lanes"),
        ];
        if let Some((_, flag)) = unsupported.iter().find(|(on, _)| *on) {
            return Err(format!(
                "{flag} is not supported with --connect (machine state stays on the daemon)"
            ));
        }
    } else {
        // Resolve the backend eagerly so an unknown name or a capability
        // mismatch is a usage error (exit 2), before any file I/O. With
        // --connect the daemon is the registry of record and validates.
        resolve_backend(&opts)?;
    }
    Ok(opts)
}

/// The [`BackendRequest`] implied by this invocation's flags.
fn backend_request(opts: &CliOptions) -> BackendRequest {
    BackendRequest {
        non_ideal_timing: !opts.timing.is_ideal(),
        lanes: opts.lanes,
        trace: opts.trace,
        snapshot: false,
    }
}

/// Resolves the effective execution backend: an explicit `--backend` is
/// hard (a mismatch is an error), the `XIMD_BACKEND` environment variable
/// is a soft preference (auto-selection covers for it when it cannot
/// satisfy the request, so test matrices can sweep it without tripping
/// trace or timing runs), and the default is `auto`.
fn resolve_backend(opts: &CliOptions) -> Result<BackendHandle, String> {
    let env = std::env::var("XIMD_BACKEND").ok();
    resolve_backend_with(opts, env.as_deref())
}

fn resolve_backend_with(opts: &CliOptions, env: Option<&str>) -> Result<BackendHandle, String> {
    let request = backend_request(opts);
    match opts.backend.as_deref() {
        Some(spec) => backend::resolve(spec, &request).map_err(|e| e.to_string()),
        None => match env.filter(|name| !name.is_empty()) {
            Some(name) => backend::resolve(name, &request)
                .or_else(|_| backend::select(&request))
                .map_err(|e| e.to_string()),
            None => backend::select(&request).map_err(|e| e.to_string()),
        },
    }
}

/// Runs the xsim tool; returns the report or an error message.
///
/// # Errors
///
/// Returns a formatted message for I/O, assembly or simulation failures.
pub fn run_xsim(opts: &CliOptions) -> Result<String, String> {
    let path = opts.source.as_ref().expect("validated by parse_args");
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Some(addr) = &opts.connect {
        return run_xsim_remote(opts, addr, &source);
    }
    // Local runs go through the same artifact layer the daemon uses; a
    // one-shot process never hits the cache, but errors, hashing and the
    // assemble path are identical in both modes.
    let store = ArtifactStore::new();
    let (artifact, _) = store
        .assemble(&source)
        .map_err(|e| format!("{path}: {e}"))?;
    let program = artifact.assembly.program.clone();
    let width = program.width();

    let config = MachineConfig::with_width(width).timing(opts.timing.clone());
    let mut sim = Xsim::new(program, config).map_err(|e| e.to_string())?;
    for &(r, v) in &opts.regs {
        sim.write_reg(r, Value::I32(v));
    }
    for (addr, values) in &opts.mems {
        sim.mem_mut()
            .poke_slice(*addr, values)
            .map_err(|e| e.to_string())?;
    }
    for schedule in &opts.ports {
        let mut port = ximd_sim::IoPort::new();
        for &(cycle, value) in schedule {
            port.schedule(cycle, Value::I32(value));
        }
        sim.attach_port(port);
    }
    if opts.lanes > 1 {
        return run_xsim_lanes(opts, &sim);
    }
    if opts.trace {
        sim.enable_trace();
    }
    // The backend layer owns engine dispatch; the resolved handle drives
    // the same `Session` machinery the daemon uses.
    let backend = resolve_backend(opts)?;
    let mut session = backend
        .prepare(vec![sim], None)
        .map_err(|e| e.to_string())?;
    let summary = backend
        .finish(&mut session, opts.park, opts.max_cycles)
        .map_err(|e| e.to_string())?
        .expect("a single-machine session reports a summary");
    let sim = session.machine().expect("single-machine session");

    let mut out = String::new();
    if let Some(trace) = sim.trace() {
        if opts.csv {
            let _ = write!(out, "{}", trace.to_csv());
        } else {
            let _ = write!(out, "{trace}");
        }
    }
    let _ = writeln!(out, "backend:       {}", backend.name());
    let _ = writeln!(out, "cycles:        {}", summary.cycles);
    let _ = writeln!(out, "ops executed:  {}", summary.stats.ops);
    let _ = writeln!(
        out,
        "utilization:   {:.1}%",
        summary.stats.utilization() * 100.0
    );
    let _ = writeln!(
        out,
        "streams:       max {}, avg {:.2}",
        summary.stats.max_concurrent_streams,
        summary.stats.avg_streams()
    );
    let _ = writeln!(out, "spin cycles:   {}", summary.stats.spin_cycles);
    report_timing(&mut out, &opts.timing, &summary.stats);
    let per_fu: Vec<String> = summary
        .stats
        .fu_utilization()
        .iter()
        .map(|u| format!("{:.0}%", u * 100.0))
        .collect();
    let _ = writeln!(out, "per-FU load:   [{}]", per_fu.join(", "));
    for (i, port) in sim.ports().iter().enumerate() {
        if !port.written().is_empty() {
            let values: Vec<String> = port
                .written()
                .iter()
                .map(|e| format!("{}@{}", e.value.as_i32(), e.cycle))
                .collect();
            let _ = writeln!(out, "port {i} wrote:  [{}]", values.join(", "));
        }
    }
    dump_state(
        &mut out,
        opts,
        |r| sim.reg(r),
        |a, l| sim.mem().peek_slice(a, l),
    );
    Ok(out)
}

/// Runs a seeded machine as `--lanes N` identical instances on a
/// lane-batching backend and reports the aggregate plus lane 0's view
/// (every lane is identical, so lane 0 stands for all of them).
fn run_xsim_lanes(opts: &CliOptions, proto: &Xsim) -> Result<String, String> {
    let backend = resolve_backend(opts)?;
    let instances = vec![proto.clone(); opts.lanes];
    let mut session = backend
        .prepare(instances, None)
        .map_err(|e| e.to_string())?;
    backend
        .finish(&mut session, opts.park, opts.max_cycles)
        .map_err(|e| e.to_string())?;
    let lanes = session.batch().expect("a --lanes run builds a batch");
    let summary = lanes.summary(0).expect("lane 0 finished").clone();
    let total_cycles: u64 = (0..lanes.lanes()).map(|l| lanes.cycle(l)).sum();

    let mut out = String::new();
    let _ = writeln!(out, "backend:       {}", backend.name());
    let _ = writeln!(
        out,
        "lanes:         {} ({} aggregate cycles)",
        lanes.lanes(),
        total_cycles
    );
    let _ = writeln!(out, "cycles:        {}", summary.cycles);
    let _ = writeln!(out, "ops executed:  {}", summary.stats.ops);
    let _ = writeln!(
        out,
        "utilization:   {:.1}%",
        summary.stats.utilization() * 100.0
    );
    let _ = writeln!(
        out,
        "streams:       max {}, avg {:.2}",
        summary.stats.max_concurrent_streams,
        summary.stats.avg_streams()
    );
    let _ = writeln!(out, "spin cycles:   {}", summary.stats.spin_cycles);
    for (i, port) in lanes.ports(0).iter().enumerate() {
        if !port.written().is_empty() {
            let values: Vec<String> = port
                .written()
                .iter()
                .map(|e| format!("{}@{}", e.value.as_i32(), e.cycle))
                .collect();
            let _ = writeln!(out, "port {i} wrote:  [{}]", values.join(", "));
        }
    }
    dump_state(
        &mut out,
        opts,
        |r| lanes.reg(0, r),
        |a, l| lanes.mem_peek_slice(0, a, l),
    );
    Ok(out)
}

/// Runs one xsim job on a remote `ximd-serve` daemon and renders its
/// response in the local report shape, prefixed with a `daemon:` line
/// carrying the artifact-cache verdicts.
fn run_xsim_remote(opts: &CliOptions, addr: &str, source: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let mut req = Message::request("simulate")
        .with("backend", opts.backend.as_deref().unwrap_or("auto"))
        .with("budget", &opts.max_cycles.to_string());
    if let Some(park) = opts.park {
        req = req.with("park", &park.0.to_string());
    }
    if !opts.timing.is_ideal() {
        req = req.with("timing", &opts.timing.to_string());
    }
    req.body = source.as_bytes().to_vec();
    let resp = client.call_ok(&req).map_err(|e| e.to_string())?;
    let stats = String::from_utf8(resp.body.clone())
        .map_err(|_| "daemon sent a non-UTF-8 stats body".to_string())?;

    let cached = |key: &str| {
        if resp.get(key) == Some("true") {
            "cached"
        } else {
            "fresh"
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "daemon:        {addr} backend {} (program {}, decode {})",
        resp.get("backend").unwrap_or("?"),
        cached("cached_program"),
        cached("cached_decode"),
    );
    let field = |key: &str| json::u64_field(&stats, key).unwrap_or(0);
    let _ = writeln!(out, "cycles:        {}", field("cycles"));
    let _ = writeln!(out, "ops executed:  {}", field("ops"));
    let _ = writeln!(
        out,
        "utilization:   {:.1}%",
        json::num_field(&stats, "utilization").unwrap_or(0.0) * 100.0
    );
    let _ = writeln!(
        out,
        "streams:       max {}, avg {:.2}",
        field("max_concurrent_streams"),
        json::num_field(&stats, "avg_streams").unwrap_or(0.0)
    );
    let _ = writeln!(out, "spin cycles:   {}", field("spin_cycles"));
    if !opts.timing.is_ideal() {
        let _ = writeln!(out, "timing:        {}", opts.timing);
        let _ = writeln!(
            out,
            "stall cycles:  {} ({} from contention)",
            field("stall_cycles"),
            field("contention_stalls")
        );
    }
    Ok(out)
}

/// Runs the vsim tool on a VLIW-style source (every parcel in a word must
/// share one control operation); returns the report or an error message.
///
/// # Errors
///
/// Returns a formatted message for I/O, assembly, conversion or simulation
/// failures.
pub fn run_vsim(opts: &CliOptions) -> Result<String, String> {
    if opts.connect.is_some() {
        return Err(
            "--connect is not supported by vsim (the daemon serves the XIMD machine)".into(),
        );
    }
    if opts.backend.is_some() {
        return Err("--backend is an xsim flag (vsim has a single engine)".into());
    }
    let path = opts.source.as_ref().expect("validated by parse_args");
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let assembly = ximd_asm::assemble(&source).map_err(|e| format!("{path}: {e}"))?;
    let width = assembly.program.width();
    let vliw = VliwProgram::from_ximd(&assembly.program).ok_or_else(|| {
        format!("{path}: not VLIW-style (a wide instruction has divergent control fields)")
    })?;

    let config = MachineConfig::with_width(width).timing(opts.timing.clone());
    let mut sim = Vsim::new(vliw, config).map_err(|e| e.to_string())?;
    for &(r, v) in &opts.regs {
        sim.write_reg(r, Value::I32(v));
    }
    for (addr, values) in &opts.mems {
        sim.mem_mut()
            .poke_slice(*addr, values)
            .map_err(|e| e.to_string())?;
    }
    let summary = sim.run(opts.max_cycles).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(out, "cycles:        {}", summary.cycles);
    let _ = writeln!(out, "ops executed:  {}", summary.stats.ops);
    let _ = writeln!(
        out,
        "utilization:   {:.1}%",
        summary.stats.utilization() * 100.0
    );
    report_timing(&mut out, &opts.timing, &summary.stats);
    dump_state(
        &mut out,
        opts,
        |r| sim.reg(r),
        |a, l| sim.mem().peek_slice(a, l),
    );
    Ok(out)
}

/// Appends the timing-model lines of the report. Under `ideal` timing no
/// stalls can occur and the lines are omitted, keeping the classic report.
fn report_timing(out: &mut String, timing: &TimingSpec, stats: &ximd_sim::SimStats) {
    if timing.is_ideal() {
        return;
    }
    let _ = writeln!(out, "timing:        {timing}");
    let _ = writeln!(
        out,
        "stall cycles:  {} ({:.1}% of issue slots, {} from contention)",
        stats.stall_cycles,
        stats.stall_fraction() * 100.0,
        stats.contention_stalls
    );
}

/// Parsed command-line options for the `xlint` tool.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Assembler source files to lint.
    pub sources: Vec<String>,
    /// Treat warnings as failures.
    pub strict: bool,
    /// Analysis configuration overrides.
    pub config: ximd_analysis::AnalysisConfig,
    /// Print the documentation for this lint code instead of linting.
    pub explain: Option<String>,
    /// Emit a SARIF 2.1.0 log instead of the text report.
    pub sarif: bool,
    /// Run the static cycle-bound oracle instead of the lint passes.
    pub cycle_bounds: bool,
    /// Verify the embedded schedule certificate (translation validation)
    /// instead of the lint passes.
    pub certify: bool,
    /// Timing model and lockstep assumption for `--cycle-bounds`.
    pub bounds: ximd_analysis::BoundsConfig,
    /// Lint on a running `ximd-serve` daemon at this address (default
    /// analysis configuration only).
    pub connect: Option<String>,
}

/// Usage text for `xlint`.
pub const LINT_USAGE: &str = "\
usage: xlint FILE.xasm [FILE.xasm ...] [options]
       xlint --explain CODE
  --strict            fail on warnings as well as errors
  --engine E          cross-stream engine: auto | product | compositional | both
                      (default auto: product, compositional fallback on cap)
  --format F          report format: text (default) | sarif
  --explain CODE      print what a lint code means and when it fires
  --reads N           per-parcel register read-port budget (default 2)
  --writes N          per-parcel register write-port budget (default 1)
  --word-reads N      shared read-port budget per wide instruction
  --word-writes N     shared write-port budget per wide instruction
  --max-states N      product state-space cap (default 262144)
  --cycle-bounds      report static worst-case cycle bounds, loop trip
                      bounds and hot regions instead of the lint passes
  --certify           verify the embedded schedule certificate (translation
                      validation of the compiled schedule) instead of the
                      lint passes; a missing or unparseable certificate
                      exits 3
  --timing SPEC       timing model for --cycle-bounds: ideal (default),
                      latency:<class>=<cycles>,..., banked:<n>
  --lockstep MODE     auto (default: credit lockstep only when provable)
                      or assume (single-sequencer/VLIW word lockstep)
  --assume R=LO[..HI] entry-value assumption for a register, e.g.
                      --assume r1=64 or --assume r2=0..7 (repeatable)
  --connect HOST:PORT lint on a running ximd-serve daemon (cached across
                      submissions; default analysis configuration only)

exit status: 0 clean (or warnings without --strict), 1 findings,
             2 usage or input errors, 3 analysis incomplete (the product
             state cap was hit and no error-severity finding was made,
             or --certify found no usable certificate)
";

/// Parses `xlint` argv (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for malformed arguments.
pub fn parse_lint_args(args: &[String]) -> Result<LintOptions, String> {
    let mut opts = LintOptions::default();
    // Set when a flag changes the analysis configuration; the daemon
    // lints with its own default configuration, so these flags cannot
    // ride along with --connect.
    let mut tuned = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("bad {name} value {v:?}"))
        };
        match arg.as_str() {
            "--strict" => opts.strict = true,
            "--connect" => opts.connect = Some(need("--connect")?.to_owned()),
            "--engine" => {
                tuned = true;
                let v = need("--engine")?;
                opts.config.engine = ximd_analysis::EngineChoice::parse(v)
                    .ok_or_else(|| format!("bad --engine value {v:?}"))?;
            }
            "--format" => match need("--format")? {
                "text" => opts.sarif = false,
                "sarif" => opts.sarif = true,
                other => return Err(format!("bad --format value {other:?}")),
            },
            "--explain" => opts.explain = Some(need("--explain")?.to_owned()),
            "--reads" => {
                tuned = true;
                opts.config.reads_per_fu = parse("--reads", need("--reads")?)?;
            }
            "--writes" => {
                tuned = true;
                opts.config.writes_per_fu = parse("--writes", need("--writes")?)?;
            }
            "--word-reads" => {
                tuned = true;
                opts.config.word_read_ports = Some(parse("--word-reads", need("--word-reads")?)?);
            }
            "--word-writes" => {
                tuned = true;
                opts.config.word_write_ports =
                    Some(parse("--word-writes", need("--word-writes")?)?);
            }
            "--max-states" => {
                tuned = true;
                opts.config.max_states = parse("--max-states", need("--max-states")?)?;
            }
            "--cycle-bounds" => opts.cycle_bounds = true,
            "--certify" => opts.certify = true,
            "--timing" => {
                let v = need("--timing")?;
                opts.bounds.timing =
                    TimingSpec::parse(v).map_err(|e| format!("bad --timing value {v:?}: {e}"))?;
            }
            "--lockstep" => {
                let v = need("--lockstep")?;
                opts.bounds.lockstep = ximd_analysis::Lockstep::parse(v)
                    .ok_or_else(|| format!("bad --lockstep value {v:?}"))?;
            }
            "--assume" => {
                tuned = true;
                opts.config.assume.push(parse_assume(need("--assume")?)?);
            }
            other if !other.starts_with('-') => opts.sources.push(other.to_owned()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.sources.is_empty() && opts.explain.is_none() {
        return Err("no source files given".into());
    }
    if opts.certify && opts.cycle_bounds {
        return Err("--certify and --cycle-bounds are separate modes; pick one".into());
    }
    // --certify is deliberately absent here: certificate checking takes no
    // analysis knobs, so the daemon's report is the same as a local one.
    if opts.connect.is_some()
        && (tuned || opts.cycle_bounds || opts.explain.is_some() || opts.sarif)
    {
        return Err(
            "--connect lints with the daemon's default configuration only (no analysis \
             overrides, --cycle-bounds, --explain or --format sarif)"
                .into(),
        );
    }
    Ok(opts)
}

/// Parses one `--assume` value: `rN=LO` or `rN=LO..HI` (signed 32-bit).
fn parse_assume(v: &str) -> Result<(Reg, i32, i32), String> {
    let bad = || format!("bad --assume value {v:?} (expected rN=LO or rN=LO..HI)");
    let (reg, range) = v.split_once('=').ok_or_else(bad)?;
    let n: u16 = reg
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(bad)?;
    let (lo, hi) = match range.split_once("..") {
        Some((lo, hi)) => (lo, hi),
        None => (range, range),
    };
    let lo: i32 = lo.parse().map_err(|_| bad())?;
    let hi: i32 = hi.parse().map_err(|_| bad())?;
    if lo > hi {
        return Err(format!("bad --assume value {v:?}: empty range"));
    }
    Ok((Reg(n), lo, hi))
}

/// What one `xlint` invocation produced.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    /// The rendered report (text or SARIF).
    pub report: String,
    /// Error findings, or any findings under `--strict`.
    pub failed: bool,
    /// Some file's product exploration hit the state cap, so the
    /// product-only verdicts (deadlock, termination) are incomplete.
    pub incomplete: bool,
}

/// Runs the xlint tool.
///
/// # Errors
///
/// Returns a formatted message for I/O or assembly failures, or an
/// unknown `--explain` code.
pub fn run_xlint(opts: &LintOptions) -> Result<LintOutcome, String> {
    if let Some(addr) = &opts.connect {
        return run_xlint_remote(opts, addr);
    }
    let mut outcome = LintOutcome::default();
    if let Some(code) = &opts.explain {
        let check = ximd_analysis::Check::from_code(code)
            .ok_or_else(|| format!("unknown lint code {code:?}"))?;
        let _ = writeln!(outcome.report, "{}: {}", check.code(), check.explain());
        return Ok(outcome);
    }
    if opts.cycle_bounds {
        // The static oracle must judge addresses against the same memory
        // geometry the selected timing model banks them into.
        let mut config = opts.config.clone();
        config.geometry.banks = opts.bounds.timing.banks().unwrap_or(1);
        for path in &opts.sources {
            let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let assembly = ximd_asm::assemble(&source).map_err(|e| format!("{path}: {e}"))?;
            let report = ximd_analysis::cycle_bounds(&assembly.program, &config, &opts.bounds);
            let _ = write!(outcome.report, "{path}:\n{report}");
            for d in &report.diagnostics {
                let mut d = d.clone();
                if let (Some(addr), Some(fu)) = (d.addr, d.fu) {
                    d.line = assembly.source_map.line(addr, fu);
                }
                let _ = writeln!(outcome.report, "{d}");
            }
            outcome.failed |= opts.strict && !report.diagnostics.is_empty();
        }
        return Ok(outcome);
    }
    let mut analyses = Vec::new();
    for path in &opts.sources {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let assembly = ximd_asm::assemble(&source).map_err(|e| format!("{path}: {e}"))?;
        let analysis = if opts.certify {
            match ximd_analysis::certify_assembly(&source, &assembly) {
                ximd_analysis::CertifyOutcome::Missing => {
                    let _ = writeln!(
                        outcome.report,
                        "{path}: no schedule certificate (`// ximd-cert:` lines missing)"
                    );
                    outcome.incomplete = true;
                    continue;
                }
                ximd_analysis::CertifyOutcome::Unparseable(e) => {
                    let _ = writeln!(
                        outcome.report,
                        "{path}: unparseable schedule certificate: {e}"
                    );
                    outcome.incomplete = true;
                    continue;
                }
                ximd_analysis::CertifyOutcome::Report(analysis) => analysis,
            }
        } else {
            ximd_analysis::lint_assembly(&assembly, &opts.config)
        };
        outcome.failed |= analysis.has_errors() || (opts.strict && !analysis.is_clean());
        outcome.incomplete |= analysis.truncated;
        if !opts.sarif {
            let _ = writeln!(outcome.report, "{path}: {analysis}");
        }
        analyses.push((path.clone(), analysis));
    }
    if opts.sarif {
        let files: Vec<(String, &ximd_analysis::Analysis)> =
            analyses.iter().map(|(p, a)| (p.clone(), a)).collect();
        outcome.report = ximd_analysis::to_sarif(&files);
    }
    Ok(outcome)
}

/// Lints (or, under `--certify`, certificate-checks) every source file on
/// a remote `ximd-serve` daemon. The verdicts come from the response
/// headers; the body carries one JSON diagnostic per line, rendered
/// indented under the per-file summary.
fn run_xlint_remote(opts: &LintOptions, addr: &str) -> Result<LintOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let mut outcome = LintOutcome::default();
    for path in &opts.sources {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let resp = if opts.certify {
            client.certify(&source)
        } else {
            client.lint(&source)
        }
        .map_err(|e| format!("{path}: {e}"))?;
        let flag = |key: &str| resp.get(key) == Some("true");
        if opts.certify {
            match resp.get("certificate") {
                Some("missing") => {
                    let _ = writeln!(outcome.report, "{path}: no schedule certificate");
                    outcome.incomplete = true;
                    continue;
                }
                Some("invalid") => {
                    let _ = writeln!(
                        outcome.report,
                        "{path}: unparseable schedule certificate: {}",
                        String::from_utf8_lossy(&resp.body)
                    );
                    outcome.incomplete = true;
                    continue;
                }
                _ => {}
            }
        }
        let clean = flag("clean");
        outcome.failed |= flag("errors") || (opts.strict && !clean);
        outcome.incomplete |= flag("truncated");
        let cached = flag(if opts.certify {
            "cached_certify"
        } else {
            "cached_lint"
        });
        let _ = writeln!(
            outcome.report,
            "{path}: {} ({} diagnostics{})",
            if clean { "clean" } else { "findings" },
            resp.get("diagnostics").unwrap_or("0"),
            match (opts.certify, cached) {
                (true, true) => ", certify cached",
                (true, false) => ", certify fresh",
                (false, true) => ", cached",
                (false, false) => "",
            },
        );
        for line in String::from_utf8_lossy(&resp.body).lines() {
            if let Some(message) = json::str_field(line, "message") {
                let _ = writeln!(outcome.report, "  {message}");
            }
        }
    }
    Ok(outcome)
}

fn dump_state(
    out: &mut String,
    opts: &CliOptions,
    reg: impl Fn(Reg) -> Value,
    mem: impl Fn(i64, usize) -> Result<Vec<i32>, ximd_sim::SimError>,
) {
    for &r in &opts.dump_regs {
        let _ = writeln!(out, "{r} = {}", reg(r).as_i32());
    }
    for &(addr, len) in &opts.dump_mems {
        match mem(addr, len) {
            Ok(words) => {
                let _ = writeln!(out, "M[{addr}..{}] = {words:?}", addr + len as i64);
            }
            Err(e) => {
                let _ = writeln!(out, "M[{addr}]: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_full_command_line() {
        let opts = parse_args(&args(&[
            "prog.xasm",
            "--reg",
            "r1=42",
            "--mem",
            "100=1,2,3",
            "--max-cycles",
            "500",
            "--trace",
            "--park",
            "0a",
            "--dump-reg",
            "r4",
            "--dump-mem",
            "100:3",
        ]))
        .unwrap();
        assert_eq!(opts.source.as_deref(), Some("prog.xasm"));
        assert_eq!(opts.regs, vec![(Reg(1), 42)]);
        assert_eq!(opts.mems, vec![(100, vec![1, 2, 3])]);
        assert_eq!(opts.max_cycles, 500);
        assert!(opts.trace);
        assert_eq!(opts.park, Some(Addr(0x0a)));
        assert_eq!(opts.dump_regs, vec![Reg(4)]);
        assert_eq!(opts.dump_mems, vec![(100, 3)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["f.xasm", "--reg", "x1=3"])).is_err());
        assert!(parse_args(&args(&["f.xasm", "--bogus"])).is_err());
        assert!(parse_args(&args(&["f.xasm", "--mem", "100"])).is_err());
    }

    #[test]
    fn port_schedules_parse() {
        let opts = parse_args(&args(&["f.xasm", "--port", "2=5:42,9:-1"])).unwrap();
        assert_eq!(opts.ports.len(), 3);
        assert_eq!(opts.ports[2], vec![(5, 42), (9, -1)]);
        assert!(opts.ports[0].is_empty());
        assert!(parse_args(&args(&["f.xasm", "--port", "x=1:2"])).is_err());
    }

    #[test]
    fn csv_flag_implies_trace() {
        let opts = parse_args(&args(&["f.xasm", "--csv"])).unwrap();
        assert!(opts.csv && opts.trace);
    }

    #[test]
    fn timing_flag_parses_and_rejects_garbage() {
        let opts = parse_args(&args(&["f.xasm"])).unwrap();
        assert!(opts.timing.is_ideal());
        let opts = parse_args(&args(&["f.xasm", "--timing", "banked:2"])).unwrap();
        assert_eq!(opts.timing, TimingSpec::Banked { banks: 2 });
        let opts = parse_args(&args(&["f.xasm", "--timing", "latency:mem=4"])).unwrap();
        assert_eq!(opts.timing.to_string(), "latency:mem=4");
        let err = parse_args(&args(&["f.xasm", "--timing", "warp"])).unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }

    #[test]
    fn xsim_reports_stalls_under_non_ideal_timing() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timed.xasm");
        std::fs::write(&path, ".width 1\n00:\n  fu0: load r0,#0,r1 ; halt\n").unwrap();
        let ideal = parse_args(&args(&[path.to_str().unwrap()])).unwrap();
        let report = run_xsim(&ideal).unwrap();
        assert!(report.contains("cycles:        1"), "{report}");
        assert!(!report.contains("stall cycles"), "{report}");

        let timed = parse_args(&args(&[
            path.to_str().unwrap(),
            "--timing",
            "latency:mem=3",
        ]))
        .unwrap();
        let report = run_xsim(&timed).unwrap();
        assert!(report.contains("cycles:        3"), "{report}");
        assert!(report.contains("timing:        latency:mem=3"), "{report}");
        assert!(report.contains("stall cycles:  2"), "{report}");
    }

    #[test]
    fn lint_args_parse_and_reject_garbage() {
        let opts =
            parse_lint_args(&args(&["a.xasm", "b.xasm", "--strict", "--reads", "1"])).unwrap();
        assert_eq!(opts.sources, vec!["a.xasm", "b.xasm"]);
        assert!(opts.strict);
        assert_eq!(opts.config.reads_per_fu, 1);
        assert!(parse_lint_args(&args(&[])).is_err());
        assert!(parse_lint_args(&args(&["a.xasm", "--bogus"])).is_err());
        assert!(parse_lint_args(&args(&["a.xasm", "--reads", "x"])).is_err());

        let opts = parse_lint_args(&args(&["a.xasm", "--engine", "both"])).unwrap();
        assert_eq!(opts.config.engine, ximd_analysis::EngineChoice::Both);
        assert!(parse_lint_args(&args(&["a.xasm", "--engine", "turbo"])).is_err());

        let opts = parse_lint_args(&args(&["a.xasm", "--format", "sarif"])).unwrap();
        assert!(opts.sarif);
        assert!(parse_lint_args(&args(&["a.xasm", "--format", "xml"])).is_err());

        // --explain works without source files.
        let opts = parse_lint_args(&args(&["--explain", "uninit-read"])).unwrap();
        assert_eq!(opts.explain.as_deref(), Some("uninit-read"));
        assert!(opts.sources.is_empty());
    }

    #[test]
    fn xlint_reports_clean_and_broken_files() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.xasm");
        std::fs::write(&clean, ".width 1\n00:\n  fu0: nop ; halt\n").unwrap();
        let opts = parse_lint_args(&args(&[clean.to_str().unwrap()])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed && !outcome.incomplete);
        assert!(outcome.report.contains("clean"), "{}", outcome.report);

        let broken = dir.join("broken.xasm");
        std::fs::write(
            &broken,
            ".width 2\n00:\n  fu0: iadd r0,#1,r2 ; halt\n  fu1: iadd r1,#1,r2 ; halt\n",
        )
        .unwrap();
        let opts = parse_lint_args(&args(&[broken.to_str().unwrap()])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(outcome.failed);
        assert!(
            outcome.report.contains("multi-write-reg"),
            "{}",
            outcome.report
        );

        // The same file as SARIF: valid-looking JSON with the rule id.
        let opts =
            parse_lint_args(&args(&[broken.to_str().unwrap(), "--format", "sarif"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(outcome.failed);
        assert!(
            outcome.report.starts_with('{')
                && outcome.report.contains("\"ruleId\":\"multi-write-reg\""),
            "{}",
            outcome.report
        );
    }

    #[test]
    fn xlint_explains_codes() {
        let opts = parse_lint_args(&args(&["--explain", "uninit-read"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed);
        assert!(
            outcome.report.starts_with("uninit-read: "),
            "{}",
            outcome.report
        );
        let opts = parse_lint_args(&args(&["--explain", "no-such-code"])).unwrap();
        assert!(run_xlint(&opts).is_err());
    }

    #[test]
    fn xlint_reports_incomplete_analysis() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capped.xasm");
        std::fs::write(
            &path,
            ".width 2\n\
             00:\n  fu0: lt r0,r1 ; -> 01:\n  fu1: lt r2,r3 ; -> 01:\n\
             01:\n  fu0: nop ; if cc0 02: | 01:\n  fu1: nop ; if cc1 02: | 01:\n\
             02:\n  all: nop ; halt\n",
        )
        .unwrap();
        let opts = parse_lint_args(&args(&[path.to_str().unwrap(), "--max-states", "2"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(outcome.incomplete && !outcome.failed, "{}", outcome.report);
    }

    #[test]
    fn xlint_strict_fails_on_warnings() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warn.xasm");
        // A cc read before any compare: warning only.
        std::fs::write(
            &path,
            ".width 1\n00:\n  fu0: nop ; if cc0 01: | 01:\n01:\n  fu0: nop ; halt\n",
        )
        .unwrap();
        let lax = parse_lint_args(&args(&[path.to_str().unwrap()])).unwrap();
        assert!(!run_xlint(&lax).unwrap().failed);
        let strict = parse_lint_args(&args(&[path.to_str().unwrap(), "--strict"])).unwrap();
        assert!(run_xlint(&strict).unwrap().failed);
    }

    #[test]
    fn lanes_flag_parses_and_rejects_garbage() {
        let opts = parse_args(&args(&["f.xasm"])).unwrap();
        assert_eq!(opts.lanes, 1);
        let opts = parse_args(&args(&["f.xasm", "--lanes", "64"])).unwrap();
        assert_eq!(opts.lanes, 64);
        assert!(parse_args(&args(&["f.xasm", "--lanes", "0"])).is_err());
        assert!(parse_args(&args(&["f.xasm", "--lanes", "x"])).is_err());
        // Tracing shows one machine's per-cycle addresses; a batch has none.
        assert!(parse_args(&args(&["f.xasm", "--lanes", "4", "--trace"])).is_err());
        assert!(parse_args(&args(&["f.xasm", "--trace", "--lanes", "4"])).is_err());
    }

    #[test]
    fn xsim_runs_a_lane_batch_end_to_end() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lanes.xasm");
        std::fs::write(&path, ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; halt\n").unwrap();
        let opts = parse_args(&args(&[
            path.to_str().unwrap(),
            "--lanes",
            "8",
            "--reg",
            "r0=37",
            "--dump-reg",
            "r1",
        ]))
        .unwrap();
        let report = run_xsim(&opts).unwrap();
        assert!(
            report.contains("lanes:         8 (8 aggregate cycles)"),
            "{report}"
        );
        assert!(report.contains("cycles:        1"), "{report}");
        assert!(report.contains("r1 = 42"), "{report}");

        // No backend can batch lanes under a non-ideal timing model; the
        // request is rejected as a usage error at parse time, blaming the
        // lane engine's timing limit.
        let err = parse_args(&args(&[
            path.to_str().unwrap(),
            "--lanes",
            "2",
            "--timing",
            "latency:mem=3",
        ]))
        .unwrap_err();
        assert_eq!(
            err,
            "backend \"lanes\" does not support non-ideal timing models"
        );
    }

    #[test]
    fn backend_flag_parses_and_rejects_garbage() {
        let opts = parse_args(&args(&["f.xasm"])).unwrap();
        assert_eq!(opts.backend, None);
        let opts = parse_args(&args(&["f.xasm", "--backend", "decoded"])).unwrap();
        assert_eq!(opts.backend.as_deref(), Some("decoded"));
        let err = parse_args(&args(&["f.xasm", "--backend", "warp"])).unwrap_err();
        assert!(err.starts_with("unknown backend \"warp\""), "{err}");

        // The retired --engine spelling points at --backend (xlint keeps
        // --engine for its analysis engines).
        let err = parse_args(&args(&["f.xasm", "--engine", "decoded"])).unwrap_err();
        assert!(err.contains("--backend"), "{err}");
        assert!(err.contains("xlint"), "{err}");

        // vsim has one engine and no daemon op.
        let opts = parse_args(&args(&["f.xasm", "--backend", "decoded"])).unwrap();
        assert!(run_vsim(&opts).unwrap_err().contains("xsim flag"));
        let opts = parse_args(&args(&["f.xasm", "--connect", "127.0.0.1:1"])).unwrap();
        assert!(run_vsim(&opts).unwrap_err().contains("--connect"));
    }

    #[test]
    fn backend_capability_mismatches_are_usage_errors() {
        // The uniform capability-mismatch rejection, pinned text and all.
        // These fail in parse_args, which the xsim binary maps to exit 2.
        for (flags, expected) in [
            (
                &[
                    "f.xasm",
                    "--backend",
                    "decoded",
                    "--timing",
                    "latency:mem=4",
                ][..],
                "backend \"decoded\" does not support non-ideal timing models",
            ),
            (
                &["f.xasm", "--backend", "decoded", "--trace"][..],
                "backend \"decoded\" does not support trace emission",
            ),
            (
                &["f.xasm", "--backend", "interp", "--lanes", "4"][..],
                "backend \"interp\" does not support lane batching",
            ),
            (
                &["f.xasm", "--backend", "lanes", "--timing", "banked:2"][..],
                "backend \"lanes\" does not support non-ideal timing models",
            ),
        ] {
            let err = parse_args(&args(flags)).unwrap_err();
            assert_eq!(err, expected, "{flags:?}");
        }
    }

    #[test]
    fn auto_selection_policy_is_pinned() {
        // `--backend auto` (and the default with no XIMD_BACKEND set)
        // picks the decoded fast path for a plain single-machine run,
        // the lane engine for --lanes N, and the interpreter whenever
        // non-ideal timing or tracing is in play.
        let resolved = |flags: &[&str]| {
            let opts = parse_args(&args(flags)).unwrap();
            resolve_backend_with(&opts, None).unwrap().name()
        };
        assert_eq!(resolved(&["f.xasm"]), "decoded");
        assert_eq!(resolved(&["f.xasm", "--backend", "auto"]), "decoded");
        assert_eq!(resolved(&["f.xasm", "--lanes", "16"]), "lanes");
        assert_eq!(resolved(&["f.xasm", "--timing", "latency:mem=4"]), "interp");
        assert_eq!(resolved(&["f.xasm", "--trace"]), "interp");

        // XIMD_BACKEND is a soft preference: honoured when capable,
        // silently out-selected when not.
        let opts = parse_args(&args(&["f.xasm"])).unwrap();
        let b = resolve_backend_with(&opts, Some("interp")).unwrap();
        assert_eq!(b.name(), "interp");
        let opts = parse_args(&args(&["f.xasm", "--timing", "latency:mem=4"])).unwrap();
        let b = resolve_backend_with(&opts, Some("decoded")).unwrap();
        assert_eq!(b.name(), "interp");
        // ...while an explicit --backend flag stays hard.
        let opts = CliOptions {
            source: Some("f.xasm".into()),
            backend: Some("decoded".into()),
            timing: TimingSpec::parse("latency:mem=4").unwrap(),
            max_cycles: 1,
            lanes: 1,
            ..CliOptions::default()
        };
        assert!(resolve_backend_with(&opts, Some("interp")).is_err());
    }

    #[test]
    fn connect_rejects_machine_state_flags() {
        for bad in [
            ["f.xasm", "--connect", "h:1", "--reg", "r1=2"],
            ["f.xasm", "--connect", "h:1", "--mem", "0=1"],
            ["f.xasm", "--connect", "h:1", "--trace", "--csv"],
            ["f.xasm", "--connect", "h:1", "--dump-reg", "r1"],
            ["f.xasm", "--connect", "h:1", "--lanes", "4"],
        ] {
            let err = parse_args(&args(&bad)).unwrap_err();
            assert!(err.contains("--connect"), "{bad:?}: {err}");
        }
        // Backend, budget, park and timing all travel over the wire (the
        // daemon is the registry of record, so no local resolution).
        let opts = parse_args(&args(&[
            "f.xasm",
            "--connect",
            "h:1",
            "--backend",
            "lanes",
            "--max-cycles",
            "64",
            "--timing",
            "banked:2",
        ]))
        .unwrap();
        assert_eq!(opts.connect.as_deref(), Some("h:1"));
        assert_eq!(opts.backend.as_deref(), Some("lanes"));
    }

    #[test]
    fn every_capable_backend_matches_the_interpreter_report() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.xasm");
        std::fs::write(
            &path,
            ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; -> 01:\n01:\n  fu0: isub r1,#2,r2 ; halt\n",
        )
        .unwrap();
        // The backend: line names the engine; everything below it must be
        // identical across backends.
        let strip = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.starts_with("backend:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let base = args(&[path.to_str().unwrap(), "--dump-reg", "r2"]);
        let mut interp_args = base.clone();
        interp_args.extend(args(&["--backend", "interp"]));
        let interp_report = run_xsim(&parse_args(&interp_args).unwrap()).unwrap();
        assert!(
            interp_report.contains("backend:       interp"),
            "{interp_report}"
        );
        let interp_report = strip(interp_report);
        for name in backend::names() {
            let mut next = base.clone();
            next.extend(args(&["--backend", &name]));
            let report = strip(run_xsim(&parse_args(&next).unwrap()).unwrap());
            assert_eq!(report, interp_report, "{name} report diverges");
            assert!(report.contains("r2 = 3"), "{report}");
        }
    }

    #[test]
    fn auto_backend_report_pins_the_selection() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto.xasm");
        std::fs::write(&path, ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; halt\n").unwrap();
        // `--backend auto` is explicit, so the XIMD_BACKEND preference in
        // a test-matrix environment cannot skew these pins.
        let report = |extra: &[&str]| {
            let mut a = args(&[path.to_str().unwrap(), "--backend", "auto"]);
            a.extend(args(extra));
            run_xsim(&parse_args(&a).unwrap()).unwrap()
        };
        assert!(report(&[]).contains("backend:       decoded"));
        assert!(report(&["--lanes", "4"]).contains("backend:       lanes"));
        assert!(report(&["--timing", "latency:mem=4"]).contains("backend:       interp"));
        assert!(report(&["--trace"]).contains("backend:       interp"));
    }

    #[test]
    fn thin_client_xsim_and_xlint_round_trip_a_daemon() {
        let handle = ximd_serve::spawn(ximd_serve::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
        })
        .expect("daemon spawns");
        let addr = handle.addr().to_string();

        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("remote.xasm");
        std::fs::write(&path, ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; halt\n").unwrap();

        let opts = parse_args(&args(&[
            path.to_str().unwrap(),
            "--connect",
            &addr,
            "--backend",
            "decoded",
        ]))
        .unwrap();
        let first = run_xsim(&opts).unwrap();
        assert!(first.contains("daemon:"), "{first}");
        assert!(first.contains("program fresh"), "{first}");
        assert!(first.contains("cycles:        1"), "{first}");
        // The daemon's artifact cache sees the identical source again.
        let second = run_xsim(&opts).unwrap();
        assert!(second.contains("program cached"), "{second}");
        assert!(second.contains("decode cached"), "{second}");

        let lint = parse_lint_args(&args(&[path.to_str().unwrap(), "--connect", &addr])).unwrap();
        let outcome = run_xlint(&lint).unwrap();
        assert!(!outcome.failed && !outcome.incomplete);
        assert!(outcome.report.contains("clean"), "{}", outcome.report);

        // A broken file surfaces the remote assembly error.
        let broken = dir.join("remote-broken.xasm");
        std::fs::write(&broken, ".width 1\n00:\n  fu0: bogus ; halt\n").unwrap();
        let opts = parse_args(&args(&[broken.to_str().unwrap(), "--connect", &addr])).unwrap();
        assert!(run_xsim(&opts).is_err());

        Client::connect(&addr)
            .and_then(|mut c| c.shutdown())
            .expect("daemon shuts down");
        handle.join().expect("clean exit");
    }

    #[test]
    fn lint_connect_rejects_non_default_configuration() {
        for bad in [
            ["a.xasm", "--connect", "h:1", "--reads", "1"],
            ["a.xasm", "--connect", "h:1", "--engine", "both"],
            ["a.xasm", "--connect", "h:1", "--cycle-bounds", "--strict"],
            ["a.xasm", "--connect", "h:1", "--format", "sarif"],
            ["a.xasm", "--connect", "h:1", "--assume", "r1=4"],
        ] {
            let err = parse_lint_args(&args(&bad)).unwrap_err();
            assert!(err.contains("--connect"), "{bad:?}: {err}");
        }
        // --strict stays a client-side verdict and is allowed.
        let opts = parse_lint_args(&args(&["a.xasm", "--connect", "h:1", "--strict"])).unwrap();
        assert!(opts.strict && opts.connect.is_some());
    }

    /// Renders a compiled suite workload the way the emitter does:
    /// certificate comment lines first, then the program text.
    fn certified_source(w: &ximd_compiler::suite::SuiteWorkload) -> String {
        let (f, _) = w.compile(4).expect("suite workload compiles");
        let mut text = f.cert.as_ref().expect("certificate").render();
        text.push_str(&ximd_asm::print_program(&f.ximd_program()));
        text
    }

    #[test]
    fn xlint_certify_pins_the_exit_code_contract() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();

        // Clean certificate: neither failed nor incomplete (exit 0).
        let clean = dir.join("certify-clean.xasm");
        std::fs::write(&clean, certified_source(&ximd_compiler::suite::SAXPY)).unwrap();
        let opts = parse_lint_args(&args(&[clean.to_str().unwrap(), "--certify"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed && !outcome.incomplete, "{}", outcome.report);
        assert!(outcome.report.contains("clean"), "{}", outcome.report);

        // A schedule that lost an op: failed (exit 1).
        let (f, _) = ximd_compiler::suite::MINMAX.compile(4).unwrap();
        let cert = f.cert.as_ref().unwrap().render();
        let mut program = f.ximd_program();
        let cell = program
            .iter()
            .find_map(|(addr, wide)| {
                wide.iter()
                    .position(|p| !p.data.is_nop())
                    .map(|fu| (addr, ximd_isa::FuId(fu as u8)))
            })
            .expect("compiled minmax has data ops");
        program.parcel_mut(cell.0, cell.1).unwrap().data = ximd_isa::DataOp::Nop;
        let broken = dir.join("certify-broken.xasm");
        std::fs::write(&broken, cert + &ximd_asm::print_program(&program)).unwrap();
        let opts = parse_lint_args(&args(&[broken.to_str().unwrap(), "--certify"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(outcome.failed, "{}", outcome.report);
        assert!(outcome.report.contains("sched-"), "{}", outcome.report);

        // No certificate at all: incomplete (exit 3), not a failure.
        let plain = dir.join("certify-none.xasm");
        std::fs::write(&plain, ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; halt\n").unwrap();
        let opts = parse_lint_args(&args(&[plain.to_str().unwrap(), "--certify"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed && outcome.incomplete, "{}", outcome.report);
        assert!(
            outcome.report.contains("no schedule certificate"),
            "{}",
            outcome.report
        );

        // A corrupt certificate: also incomplete (exit 3).
        let corrupt = dir.join("certify-corrupt.xasm");
        std::fs::write(
            &corrupt,
            "// ximd-cert: v1 width=banana\n.width 1\n00:\n  fu0: nop ; halt\n",
        )
        .unwrap();
        let opts = parse_lint_args(&args(&[corrupt.to_str().unwrap(), "--certify"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed && outcome.incomplete, "{}", outcome.report);

        // The two report-replacing modes cannot be combined.
        assert!(parse_lint_args(&args(&["f.xasm", "--certify", "--cycle-bounds"])).is_err());
    }

    #[test]
    fn thin_client_certify_round_trips_and_caches() {
        let handle = ximd_serve::spawn(ximd_serve::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
        })
        .expect("daemon spawns");
        let addr = handle.addr().to_string();

        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("remote-cert.xasm");
        std::fs::write(&path, certified_source(&ximd_compiler::suite::SAXPY)).unwrap();

        // --certify rides along with --connect (unlike the tuned flags).
        let opts = parse_lint_args(&args(&[
            path.to_str().unwrap(),
            "--connect",
            &addr,
            "--certify",
        ]))
        .unwrap();
        let first = run_xlint(&opts).unwrap();
        assert!(!first.failed && !first.incomplete, "{}", first.report);
        assert!(first.report.contains("certify fresh"), "{}", first.report);
        // Resubmission hits the daemon's program-keyed certify cache.
        let second = run_xlint(&opts).unwrap();
        assert!(
            second.report.contains("certify cached"),
            "{}",
            second.report
        );

        // Missing certificate over the wire still maps to incomplete.
        let plain = dir.join("remote-nocert.xasm");
        std::fs::write(&plain, ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; halt\n").unwrap();
        let opts = parse_lint_args(&args(&[
            plain.to_str().unwrap(),
            "--connect",
            &addr,
            "--certify",
        ]))
        .unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed && outcome.incomplete, "{}", outcome.report);

        Client::connect(&addr)
            .and_then(|mut c| c.shutdown())
            .expect("daemon shuts down");
        handle.join().expect("clean exit");
    }

    #[test]
    fn xsim_runs_a_file_end_to_end() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.xasm");
        std::fs::write(&path, ".width 1\n00:\n  fu0: iadd r0,#5,r1 ; halt\n").unwrap();
        let opts = parse_args(&args(&[
            path.to_str().unwrap(),
            "--reg",
            "r0=37",
            "--dump-reg",
            "r1",
        ]))
        .unwrap();
        let report = run_xsim(&opts).unwrap();
        assert!(report.contains("r1 = 42"), "{report}");
        assert!(report.contains("cycles:        1"), "{report}");
    }

    #[test]
    fn vsim_rejects_divergent_control() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.xasm");
        std::fs::write(
            &path,
            ".width 2\n00:\n  fu0: nop ; -> 01:\n  fu1: nop ; halt\n01:\n  all: nop ; halt\n",
        )
        .unwrap();
        let opts = parse_args(&args(&[path.to_str().unwrap()])).unwrap();
        let err = run_vsim(&opts).unwrap_err();
        assert!(err.contains("not VLIW-style"), "{err}");
    }

    #[test]
    fn vsim_runs_vliw_style_file() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.xasm");
        std::fs::write(
            &path,
            ".width 2\n00:\n  all: iadd r0,#1,r0 ; -> 01:\n  fu1: iadd r1,#2,r1 ; -> 01:\n01:\n  all: nop ; halt\n",
        )
        .unwrap();
        let opts = parse_args(&args(&[
            path.to_str().unwrap(),
            "--dump-reg",
            "r0",
            "--dump-reg",
            "r1",
        ]))
        .unwrap();
        let report = run_vsim(&opts).unwrap();
        assert!(report.contains("r0 = 1"), "{report}");
        assert!(report.contains("r1 = 2"), "{report}");
    }

    #[test]
    fn cycle_bounds_flags_parse_and_reject_garbage() {
        let opts = parse_lint_args(&args(&[
            "f.xasm",
            "--cycle-bounds",
            "--timing",
            "banked:2",
            "--lockstep",
            "assume",
            "--assume",
            "r1=64",
            "--assume",
            "r2=0..7",
        ]))
        .unwrap();
        assert!(opts.cycle_bounds);
        assert_eq!(opts.bounds.timing, TimingSpec::Banked { banks: 2 });
        assert_eq!(opts.bounds.lockstep, ximd_analysis::Lockstep::Assume);
        assert_eq!(opts.config.assume, vec![(Reg(1), 64, 64), (Reg(2), 0, 7)]);

        for bad in [
            ["f.xasm", "--timing", "warp"],
            ["f.xasm", "--lockstep", "maybe"],
            ["f.xasm", "--assume", "r1"],
            ["f.xasm", "--assume", "x1=3"],
            ["f.xasm", "--assume", "r1=7..3"],
        ] {
            assert!(parse_lint_args(&args(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn cycle_bounds_reports_a_finite_loop_bound() {
        let dir = std::env::temp_dir().join("ximd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("count.xasm");
        std::fs::write(
            &path,
            ".width 1\n00:\n  fu0: gt r0,#0      ; -> 01:\n01:\n  fu0: isub r0,#1,r0 ; if cc0 00: | 02:\n02:\n  fu0: nop ; halt\n",
        )
        .unwrap();

        // Without entry facts the counter is honestly unbounded.
        let opts = parse_lint_args(&args(&[path.to_str().unwrap(), "--cycle-bounds"])).unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(outcome.report.contains("unbounded"), "{}", outcome.report);
        assert!(
            outcome.report.contains("trip-count-unbounded"),
            "{}",
            outcome.report
        );

        // With `--assume` the trip count and the total bound are finite.
        let opts = parse_lint_args(&args(&[
            path.to_str().unwrap(),
            "--cycle-bounds",
            "--assume",
            "r0=8",
        ]))
        .unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(!outcome.failed);
        assert!(outcome.report.contains("trips <= 10"), "{}", outcome.report);
        assert!(outcome.report.contains("total: <="), "{}", outcome.report);

        // The report announces the timing model it was computed against.
        let opts = parse_lint_args(&args(&[
            path.to_str().unwrap(),
            "--cycle-bounds",
            "--timing",
            "banked:2",
        ]))
        .unwrap();
        let outcome = run_xlint(&opts).unwrap();
        assert!(outcome.report.contains("banked:2"), "{}", outcome.report);
    }
}
