//! The paper's §2 emulation claims, checked over random programs.

use proptest::prelude::*;
use ximd_isa::{Reg, Value};
use ximd_models::randprog::{random_simd_ops, straight_line_vliw};
use ximd_models::SimdProgram;
use ximd_sim::{MachineConfig, Vsim, Xsim};

/// XIMD ⊇ VLIW: "if the functions δ1…δn are identical and the initial
/// values of the state variables S1…Sn are identical, then the XIMD machine
/// will be the functional equivalent of a VLIW machine."
fn check_ximd_emulates_vliw(seed: u64, width: usize, len: usize) {
    let num_regs = 16u16;
    let vliw = straight_line_vliw(seed, width, len, num_regs);
    let cfg = MachineConfig::with_width(width);

    let mut vs = Vsim::new(vliw.clone(), cfg.clone()).unwrap();
    let mut xs = Xsim::new(vliw.to_ximd(), cfg).unwrap();
    for r in 0..num_regs {
        let v = Value::I32(i32::from(r) * 7 - 20);
        vs.write_reg(Reg(r), v);
        xs.write_reg(Reg(r), v);
    }
    let vsum = vs.run(10 + 2 * len as u64).unwrap();
    let xsum = xs.run(10 + 2 * len as u64).unwrap();

    assert_eq!(vsum.cycles, xsum.cycles, "cycle-exact emulation");
    for r in 0..num_regs {
        assert_eq!(
            vs.reg(Reg(r)),
            xs.reg(Reg(r)),
            "register r{r} diverged (seed {seed})"
        );
    }
    // And the emulation never forks: one SSET throughout.
    assert_eq!(xsum.stats.max_concurrent_streams, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ximd_emulates_vliw(seed in any::<u64>(), width in 1usize..6, len in 1usize..16) {
        check_ximd_emulates_vliw(seed, width, len);
    }

    #[test]
    fn vliw_emulates_simd(seed in any::<u64>(), lanes in 1usize..6, count in 1usize..12) {
        let bank = 6u16;
        let program = SimdProgram { ops: random_simd_ops(seed, count, bank), bank_size: bank };
        program.validate().unwrap();

        let init: Vec<Vec<Value>> = (0..lanes)
            .map(|lane| (0..bank).map(|i| Value::I32(lane as i32 * 100 + i32::from(i))).collect())
            .collect();
        let (expect, _) = program.interpret(&init);

        let mut sim = Vsim::new(program.to_vliw(lanes), MachineConfig::with_width(lanes)).unwrap();
        for (lane, regs) in init.iter().enumerate() {
            for (i, &v) in regs.iter().enumerate() {
                sim.write_reg(Reg((lane * bank as usize + i) as u16), v);
            }
        }
        sim.run(10 + 2 * count as u64).unwrap();
        for (lane, regs) in expect.iter().enumerate() {
            for (i, &v) in regs.iter().enumerate() {
                prop_assert_eq!(
                    sim.reg(Reg((lane * bank as usize + i) as u16)),
                    v,
                    "lane {} r{} (seed {})",
                    lane,
                    i,
                    seed
                );
            }
        }
    }

    #[test]
    fn sisd_is_width_one_vliw(seed in any::<u64>(), len in 1usize..16) {
        // The SISD model (Figure 3) is the width-1 instance: a single λ
        // and δ. Run the same scalar stream on both simulators.
        check_ximd_emulates_vliw(seed, 1, len);
    }
}
