//! The SIMD model and its emulation by VLIW.
//!
//! §2.1: "A traditional SIMD would distribute the output of a single
//! function λ to each functional unit. … If for a given program the
//! functions λ1…λn are identical and equal to the function λ of a
//! corresponding SIMD machine, then the two machines are functionally
//! equivalent."
//!
//! A [`SimdProgram`] is a straight-line sequence of *broadcast* operations
//! over lane-local register banks (registers in an op are bank-relative;
//! lane *i* uses the bank at offset `i × bank_size` of the global register
//! file). [`SimdProgram::to_vliw`] performs the paper's construction —
//! every λ gets the same operation, rebased per lane — and
//! [`SimdProgram::interpret`] is the reference SIMD semantics the
//! equivalence tests compare against.

use ximd_isa::{DataOp, IsaError, Operand, Reg, Value};
use ximd_sim::{VliwInstruction, VliwProgram};

/// A broadcast (single-λ) program over lane-local register banks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimdProgram {
    /// Broadcast operations, executed one per cycle. Register operands are
    /// bank-relative (`r0` = first register of each lane's bank).
    pub ops: Vec<DataOp>,
    /// Registers per lane bank.
    pub bank_size: u16,
}

impl SimdProgram {
    /// Validates the program: ops must be register-to-register (the lanes
    /// of a distributed-memory SIMD machine have private memories, which
    /// the shared-memory substrate cannot model) and bank-relative
    /// registers must fit the bank.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] for an operand outside the
    /// bank and [`IsaError::Decode`] for a memory or port operation.
    pub fn validate(&self) -> Result<(), IsaError> {
        for op in &self.ops {
            if op.is_memory() || matches!(op, DataOp::PortIn { .. } | DataOp::PortOut { .. }) {
                return Err(IsaError::Decode {
                    field: "simd op",
                    raw: 0,
                });
            }
            op.validate(self.bank_size as usize)?;
        }
        Ok(())
    }

    fn rebase(op: &DataOp, lane: u16, bank: u16) -> DataOp {
        let shift_reg = |r: Reg| Reg(r.0 + lane * bank);
        let shift = |o: Operand| match o {
            Operand::Reg(r) => Operand::Reg(shift_reg(r)),
            imm @ Operand::Imm(_) => imm,
        };
        match *op {
            DataOp::Nop => DataOp::Nop,
            DataOp::Alu { op, a, b, d } => DataOp::Alu {
                op,
                a: shift(a),
                b: shift(b),
                d: shift_reg(d),
            },
            DataOp::Un { op, a, d } => DataOp::Un {
                op,
                a: shift(a),
                d: shift_reg(d),
            },
            DataOp::Cmp { op, a, b } => DataOp::Cmp {
                op,
                a: shift(a),
                b: shift(b),
            },
            // Excluded by validate().
            other @ (DataOp::Load { .. }
            | DataOp::Store { .. }
            | DataOp::PortIn { .. }
            | DataOp::PortOut { .. }) => other,
        }
    }

    /// Lowers the program to a VLIW machine of `width` lanes: one wide
    /// instruction per broadcast op, with identical per-λ operations
    /// rebased into each lane's register bank (the paper's equivalence
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `width × bank_size` registers do not exist on XIMD-1; the
    /// caller picks bank sizes accordingly.
    pub fn to_vliw(&self, width: usize) -> VliwProgram {
        assert!(
            width * self.bank_size as usize <= ximd_isa::XIMD1_NUM_REGS,
            "lane banks must fit the register file"
        );
        let mut p = VliwProgram::new(width);
        for (i, op) in self.ops.iter().enumerate() {
            let ops = (0..width as u16)
                .map(|lane| Self::rebase(op, lane, self.bank_size))
                .collect();
            let next = ximd_isa::Addr(i as u32 + 1);
            p.push(VliwInstruction {
                ops,
                ctrl: ximd_isa::ControlOp::Goto(next),
            });
        }
        p.push(VliwInstruction::halt(width));
        p
    }

    /// Reference SIMD semantics: executes the broadcast stream over
    /// `lanes` independent banks, given each bank's initial registers.
    /// Returns the final banks and per-lane condition codes.
    ///
    /// # Panics
    ///
    /// Panics if an initial bank has the wrong size or an operation is not
    /// register-to-register (call [`SimdProgram::validate`] first).
    pub fn interpret(&self, init: &[Vec<Value>]) -> (Vec<Vec<Value>>, Vec<Option<bool>>) {
        let mut banks: Vec<Vec<Value>> = init.to_vec();
        let mut ccs = vec![None; banks.len()];
        for bank in &banks {
            assert_eq!(bank.len(), self.bank_size as usize, "bank size mismatch");
        }
        for op in &self.ops {
            for (lane, bank) in banks.iter_mut().enumerate() {
                let read = |o: Operand, bank: &[Value]| match o {
                    Operand::Reg(r) => bank[r.index()],
                    Operand::Imm(v) => v,
                };
                match *op {
                    DataOp::Nop => {}
                    DataOp::Alu { op, a, b, d } => {
                        let v = op
                            .eval(read(a, bank), read(b, bank))
                            .expect("interpreter inputs avoid machine checks");
                        bank[d.index()] = v;
                    }
                    DataOp::Un { op, a, d } => bank[d.index()] = op.eval(read(a, bank)),
                    DataOp::Cmp { op, a, b } => {
                        ccs[lane] = Some(op.eval(read(a, bank), read(b, bank)));
                    }
                    _ => panic!("non register-to-register op in SIMD program"),
                }
            }
        }
        (banks, ccs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{AluOp, CmpOp, UnOp};
    use ximd_sim::{MachineConfig, Vsim};

    fn axpy_like() -> SimdProgram {
        // Per lane: r2 = r0 * 3 + r1; cc = r2 > 0; r3 = -r2.
        SimdProgram {
            ops: vec![
                DataOp::alu(AluOp::Imult, Reg(0).into(), Operand::imm_i32(3), Reg(2)),
                DataOp::alu(AluOp::Iadd, Reg(2).into(), Reg(1).into(), Reg(2)),
                DataOp::cmp(CmpOp::Gt, Reg(2).into(), Operand::imm_i32(0)),
                DataOp::un(UnOp::Ineg, Reg(2).into(), Reg(3)),
            ],
            bank_size: 4,
        }
    }

    fn run_on_vliw(p: &SimdProgram, init: &[Vec<Value>]) -> (Vec<Vec<Value>>, Vec<Option<bool>>) {
        let width = init.len();
        let vliw = p.to_vliw(width);
        let mut sim = Vsim::new(vliw, MachineConfig::with_width(width)).unwrap();
        for (lane, bank) in init.iter().enumerate() {
            for (i, &v) in bank.iter().enumerate() {
                sim.write_reg(Reg((lane * p.bank_size as usize + i) as u16), v);
            }
        }
        sim.run(1000).unwrap();
        let banks = (0..width)
            .map(|lane| {
                (0..p.bank_size as usize)
                    .map(|i| sim.reg(Reg((lane * p.bank_size as usize + i) as u16)))
                    .collect()
            })
            .collect();
        // Condition codes are not directly observable from Vsim's public
        // API beyond branches; the interpreter result is compared on banks
        // only here.
        (banks, vec![])
    }

    #[test]
    fn vliw_emulates_simd_exactly() {
        let p = axpy_like();
        p.validate().unwrap();
        let init: Vec<Vec<Value>> = (0..4)
            .map(|lane| {
                vec![
                    Value::I32(lane + 1),
                    Value::I32(10 * lane - 5),
                    Value::ZERO,
                    Value::ZERO,
                ]
            })
            .collect();
        let (expect, _) = p.interpret(&init);
        let (got, _) = run_on_vliw(&p, &init);
        assert_eq!(got, expect);
    }

    #[test]
    fn lanes_are_independent() {
        let p = axpy_like();
        let mut init: Vec<Vec<Value>> = (0..3).map(|_| vec![Value::ZERO; 4]).collect();
        init[1][0] = Value::I32(100);
        let (banks, _) = p.interpret(&init);
        // Lane 0 and 2 identical; lane 1 differs.
        assert_eq!(banks[0], banks[2]);
        assert_ne!(banks[0], banks[1]);
    }

    #[test]
    fn validate_rejects_memory_ops() {
        let p = SimdProgram {
            ops: vec![DataOp::load(
                Operand::imm_i32(0),
                Operand::imm_i32(0),
                Reg(0),
            )],
            bank_size: 2,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_bank_registers() {
        let p = SimdProgram {
            ops: vec![DataOp::un(UnOp::Mov, Reg(5).into(), Reg(0))],
            bank_size: 4,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn lowering_shape_matches_figure_4() {
        // One wide instruction per broadcast op, identical mnemonic in
        // every lane.
        let p = axpy_like();
        let vliw = p.to_vliw(4);
        assert_eq!(vliw.len(), p.ops.len() + 1);
        let (_, first) = vliw.iter().next().unwrap();
        let mnems: Vec<String> = first
            .ops
            .iter()
            .map(|o| o.to_string().split(' ').next().unwrap().to_owned())
            .collect();
        assert!(mnems.windows(2).all(|w| w[0] == w[1]), "{mnems:?}");
    }
}
