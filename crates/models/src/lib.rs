//! The paper's §2 architectural state-machine models, executable.
//!
//! Section 2 of the paper develops SISD, SIMD, VLIW, MIMD and XIMD as a
//! family of Moore-machine control paths over a common data path (Figures
//! 3–6), and argues a hierarchy of *functional emulations*:
//!
//! * **VLIW ⊇ SIMD** — "if for a given program the functions λ1…λn are
//!   identical … the two machines are functionally equivalent";
//! * **XIMD ⊇ VLIW** — "if the functions δ1…δn are identical and the
//!   initial values of the state variables S1…Sn are identical, then the
//!   XIMD machine will be the functional equivalent of a VLIW machine";
//! * **XIMD ⊇ MIMD** — "by selecting functions δ1…δn which disregard the
//!   state of other functional units, XIMD can be a functional equivalent
//!   of this MIMD model as well";
//! * SISD is the width-1 degenerate case of all of them.
//!
//! This crate makes each claim *mechanically checkable*: it defines program
//! classes for the restricted models ([`SimdProgram`], [`MimdProgram`],
//! plain [`ximd_sim::VliwProgram`] for VLIW, width-1 VLIW for SISD),
//! lowerings into the more general machines, and reference interpreters for
//! the restricted semantics. The test suites (including property tests over
//! random programs in `tests/`) check that lowering + general machine ≡
//! reference interpreter — the paper's emulation theorems as executable
//! artifacts. [`randprog`] supplies the random-program generators.

pub mod hierarchy;
pub mod mimd;
pub mod randprog;
pub mod simd;

pub use hierarchy::{ControlPathShape, MachineClass};
pub use mimd::MimdProgram;
pub use simd::SimdProgram;
