//! The control-path taxonomy of Figures 3–6 as data.
//!
//! The paper differentiates architecture classes purely by the *shape* of
//! the control path: how many output functions λ, how many next-state
//! functions δ, how many control-state variables S, and which state feeds
//! each δ. [`ControlPathShape`] captures those counts; [`MachineClass`]
//! names the classes and exposes the shape each one has for a machine of a
//! given width, plus the partial order of functional emulation the paper
//! establishes.

use std::fmt;

/// The structural parameters of a control path (paper Figures 3–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlPathShape {
    /// Number of output functions λ (instruction decoders).
    pub lambdas: usize,
    /// Number of next-state functions δ (sequencers).
    pub deltas: usize,
    /// Number of control-state variables S (program counters).
    pub states: usize,
    /// Does each δ observe *every* FU's data-path state (condition codes)?
    pub delta_sees_all_datapaths: bool,
    /// Does each δ observe the other sequencers' control state
    /// (sync signals)?
    pub delta_sees_other_controls: bool,
}

/// The five architecture classes of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineClass {
    /// Classical microprogrammed uniprocessor (Figure 3).
    Sisd,
    /// Single broadcast instruction stream (§2.1's SIMD simplification).
    Simd,
    /// One sequencer, per-FU output functions (Figure 4).
    Vliw,
    /// Fully independent sequencers (Figure 6).
    Mimd,
    /// Replicated sequencers sharing condition-code and sync state
    /// (Figure 5).
    Ximd,
}

impl MachineClass {
    /// All classes, in the paper's order of presentation.
    pub const ALL: [MachineClass; 5] = [
        MachineClass::Sisd,
        MachineClass::Simd,
        MachineClass::Vliw,
        MachineClass::Mimd,
        MachineClass::Ximd,
    ];

    /// The control-path shape for a machine of `width` functional units.
    pub fn shape(self, width: usize) -> ControlPathShape {
        match self {
            MachineClass::Sisd => ControlPathShape {
                lambdas: 1,
                deltas: 1,
                states: 1,
                delta_sees_all_datapaths: true,
                delta_sees_other_controls: false,
            },
            MachineClass::Simd => ControlPathShape {
                lambdas: 1, // one λ broadcast to every FU
                deltas: 1,
                states: 1,
                delta_sees_all_datapaths: true,
                delta_sees_other_controls: false,
            },
            MachineClass::Vliw => ControlPathShape {
                lambdas: width,
                deltas: 1,
                states: 1,
                delta_sees_all_datapaths: true,
                delta_sees_other_controls: false,
            },
            MachineClass::Mimd => ControlPathShape {
                lambdas: width,
                deltas: width,
                states: width,
                // Each MIMD δi sees only its own data path.
                delta_sees_all_datapaths: false,
                delta_sees_other_controls: false,
            },
            MachineClass::Ximd => ControlPathShape {
                lambdas: width,
                deltas: width,
                states: width,
                delta_sees_all_datapaths: true,
                delta_sees_other_controls: true,
            },
        }
    }

    /// Returns `true` if `self` can functionally emulate `other` (the
    /// paper's §2.1 relationships, reflexively and transitively closed).
    pub fn emulates(self, other: MachineClass) -> bool {
        use MachineClass::*;
        if self == other {
            return true;
        }
        match self {
            Ximd => true, // "the most general and capable control path design"
            Vliw => matches!(other, Simd | Sisd),
            Simd => matches!(other, Sisd),
            Mimd => matches!(other, Sisd),
            Sisd => false,
        }
    }
}

impl fmt::Display for MachineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MachineClass::Sisd => "SISD",
            MachineClass::Simd => "SIMD",
            MachineClass::Vliw => "VLIW",
            MachineClass::Mimd => "MIMD",
            MachineClass::Ximd => "XIMD",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_figures() {
        let w = 8;
        assert_eq!(MachineClass::Sisd.shape(w).lambdas, 1);
        assert_eq!(MachineClass::Vliw.shape(w).lambdas, 8);
        assert_eq!(MachineClass::Vliw.shape(w).deltas, 1);
        assert_eq!(MachineClass::Ximd.shape(w).deltas, 8);
        assert_eq!(MachineClass::Mimd.shape(w).deltas, 8);
        assert!(MachineClass::Ximd.shape(w).delta_sees_other_controls);
        assert!(!MachineClass::Mimd.shape(w).delta_sees_other_controls);
    }

    #[test]
    fn ximd_emulates_everything() {
        for m in MachineClass::ALL {
            assert!(MachineClass::Ximd.emulates(m), "XIMD should emulate {m}");
        }
    }

    #[test]
    fn emulation_is_a_partial_order() {
        use MachineClass::*;
        // Reflexive.
        for m in MachineClass::ALL {
            assert!(m.emulates(m));
        }
        // Antisymmetric (no two distinct classes emulate each other).
        for a in MachineClass::ALL {
            for b in MachineClass::ALL {
                if a != b {
                    assert!(!(a.emulates(b) && b.emulates(a)), "{a} <-> {b}");
                }
            }
        }
        // Transitive over the declared relation.
        for a in MachineClass::ALL {
            for b in MachineClass::ALL {
                for c in MachineClass::ALL {
                    if a.emulates(b) && b.emulates(c) {
                        assert!(a.emulates(c), "{a} -> {b} -> {c}");
                    }
                }
            }
        }
        // The paper's specific claims.
        assert!(Vliw.emulates(Simd));
        assert!(Ximd.emulates(Vliw));
        assert!(Ximd.emulates(Mimd));
        assert!(!Vliw.emulates(Mimd));
        assert!(!Mimd.emulates(Vliw));
    }

    #[test]
    fn vliw_and_ximd_share_lambdas_and_datapaths() {
        // "the output functions λ1…λn and the functional unit data paths
        // DP1…DPn are unchanged" between Figures 4 and 5.
        let v = MachineClass::Vliw.shape(4);
        let x = MachineClass::Ximd.shape(4);
        assert_eq!(v.lambdas, x.lambdas);
    }

    #[test]
    fn display_names() {
        assert_eq!(MachineClass::Ximd.to_string(), "XIMD");
        assert_eq!(MachineClass::Sisd.to_string(), "SISD");
    }
}
