//! Seeded random program generators for the emulation property tests.
//!
//! The generators produce *safe* programs: no memory or port traffic, no
//! faulting divides, registers within a declared range — so that any
//! behavioural divergence between two machines is a simulator bug, never a
//! machine check.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ximd_isa::{Addr, AluOp, CmpOp, ControlOp, DataOp, Operand, Reg, UnOp};
use ximd_sim::{VliwInstruction, VliwProgram};

const SAFE_ALU: [AluOp; 10] = [
    AluOp::Iadd,
    AluOp::Isub,
    AluOp::Imult,
    AluOp::Imin,
    AluOp::Imax,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Sar,
];

const SAFE_UN: [UnOp; 4] = [UnOp::Mov, UnOp::Ineg, UnOp::Iabs, UnOp::Not];

/// Generates one safe random data operation over registers `0..num_regs`.
pub fn random_data_op(rng: &mut SmallRng, num_regs: u16) -> DataOp {
    let reg = |rng: &mut SmallRng| Reg(rng.gen_range(0..num_regs));
    let operand = |rng: &mut SmallRng| {
        if rng.gen_bool(0.3) {
            Operand::imm_i32(rng.gen_range(-100..100))
        } else {
            Operand::Reg(Reg(rng.gen_range(0..num_regs)))
        }
    };
    match rng.gen_range(0..10) {
        0 => DataOp::Nop,
        1..=6 => DataOp::Alu {
            op: SAFE_ALU[rng.gen_range(0..SAFE_ALU.len())],
            a: operand(rng),
            b: operand(rng),
            d: reg(rng),
        },
        7 | 8 => DataOp::Un {
            op: SAFE_UN[rng.gen_range(0..SAFE_UN.len())],
            a: operand(rng),
            d: reg(rng),
        },
        _ => DataOp::Cmp {
            op: CmpOp::ALL[rng.gen_range(0..CmpOp::ALL.len())],
            a: operand(rng),
            b: operand(rng),
        },
    }
}

/// Generates a random straight-line VLIW program: `len` wide instructions
/// of safe operations over registers `0..num_regs`, ending in a halt.
///
/// # Example
///
/// ```
/// let p = ximd_models::randprog::straight_line_vliw(42, 4, 10, 16);
/// assert_eq!(p.width(), 4);
/// assert_eq!(p.len(), 11);
/// assert_eq!(p, ximd_models::randprog::straight_line_vliw(42, 4, 10, 16));
/// ```
pub fn straight_line_vliw(seed: u64, width: usize, len: usize, num_regs: u16) -> VliwProgram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = VliwProgram::new(width);
    for i in 0..len {
        // Two same-cycle writes to one register are a machine check
        // ("undefined" per the paper), so destinations are kept distinct
        // within each wide instruction.
        let mut dests: Vec<Reg> = Vec::new();
        let ops = (0..width)
            .map(|_| loop {
                let op = random_data_op(&mut rng, num_regs);
                match op.dest() {
                    Some(d) if dests.contains(&d) => continue,
                    Some(d) => {
                        dests.push(d);
                        break op;
                    }
                    None => break op,
                }
            })
            .collect();
        p.push(VliwInstruction {
            ops,
            ctrl: ControlOp::Goto(Addr(i as u32 + 1)),
        });
    }
    p.push(VliwInstruction::halt(width));
    p
}

/// Generates a random broadcast op list for SIMD tests (register-to-
/// register only, bank-relative registers `0..bank`).
pub fn random_simd_ops(seed: u64, count: usize, bank: u16) -> Vec<DataOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| loop {
            let op = random_data_op(&mut rng, bank);
            if !op.is_memory() {
                break op;
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            straight_line_vliw(7, 2, 5, 8),
            straight_line_vliw(7, 2, 5, 8)
        );
        assert_ne!(
            straight_line_vliw(7, 2, 5, 8),
            straight_line_vliw(8, 2, 5, 8)
        );
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..20 {
            let p = straight_line_vliw(seed, 4, 12, 16);
            p.validate(16).expect("generated program must be valid");
        }
    }

    #[test]
    fn generated_programs_run_clean() {
        use ximd_sim::{MachineConfig, Vsim};
        for seed in 0..20 {
            let p = straight_line_vliw(seed, 4, 12, 16);
            let mut sim = Vsim::new(p, MachineConfig::with_width(4)).unwrap();
            sim.run(100).expect("no machine checks in safe programs");
        }
    }

    #[test]
    fn simd_ops_are_register_to_register() {
        for op in random_simd_ops(3, 50, 8) {
            assert!(!op.is_memory());
        }
    }
}
