//! The MIMD model and its emulation by XIMD.
//!
//! §2.1: "By selecting functions δ1…δn which disregard the state of other
//! functional units, XIMD can be a functional equivalent of this MIMD model
//! as well." A [`MimdProgram`] is a set of fully independent single-FU
//! threads; [`MimdProgram::to_ximd`] places thread *j*'s code in parcel
//! column *j* (remapping its condition codes to `cc_j` and its registers
//! into a private bank) so that each sequencer runs its own thread without
//! observing the others — exactly Figure 6 realized on the Figure 5
//! machine.

use ximd_isa::{
    Addr, CondSource, ControlOp, DataOp, FuId, IsaError, Operand, Parcel, Program, Reg,
};
use ximd_sim::VliwProgram;

/// A set of independent single-FU threads.
#[derive(Debug, Clone, Default)]
pub struct MimdProgram {
    /// The threads; each must be a width-1 program whose branches test
    /// `cc0` (its own unit).
    pub threads: Vec<VliwProgram>,
    /// Registers reserved per thread; thread *j* owns architectural
    /// registers `j*bank .. (j+1)*bank`.
    pub reg_bank: u16,
}

impl MimdProgram {
    /// Validates the threads: width 1, register use within the bank.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::WidthMismatch`] for a non-scalar thread or a
    /// register error for bank overflow.
    pub fn validate(&self) -> Result<(), IsaError> {
        for t in &self.threads {
            if t.width() != 1 {
                return Err(IsaError::WidthMismatch {
                    got: t.width(),
                    expected: 1,
                });
            }
            t.validate(self.reg_bank as usize)?;
        }
        Ok(())
    }

    fn rebase_data(op: &DataOp, lane: u16, bank: u16) -> DataOp {
        let shift_reg = |r: Reg| Reg(r.0 + lane * bank);
        let shift = |o: Operand| match o {
            Operand::Reg(r) => Operand::Reg(shift_reg(r)),
            imm @ Operand::Imm(_) => imm,
        };
        match *op {
            DataOp::Nop => DataOp::Nop,
            DataOp::Alu { op, a, b, d } => DataOp::Alu {
                op,
                a: shift(a),
                b: shift(b),
                d: shift_reg(d),
            },
            DataOp::Un { op, a, d } => DataOp::Un {
                op,
                a: shift(a),
                d: shift_reg(d),
            },
            DataOp::Cmp { op, a, b } => DataOp::Cmp {
                op,
                a: shift(a),
                b: shift(b),
            },
            DataOp::Load { a, b, d } => DataOp::Load {
                a: shift(a),
                b: shift(b),
                d: shift_reg(d),
            },
            DataOp::Store { a, b } => DataOp::Store {
                a: shift(a),
                b: shift(b),
            },
            DataOp::PortIn { port, d } => DataOp::PortIn {
                port,
                d: shift_reg(d),
            },
            DataOp::PortOut { port, a } => DataOp::PortOut { port, a: shift(a) },
        }
    }

    /// Lowers to an XIMD program of `width ≥ threads` FUs. Thread *j*
    /// occupies parcel column *j* at the same addresses it had alone;
    /// its `cc0` conditions become `cc_j`; columns beyond the thread count,
    /// and rows past a thread's end, hold halted parcels.
    ///
    /// # Panics
    ///
    /// Panics if there are more threads than FUs or the banks overflow the
    /// register file.
    pub fn to_ximd(&self, width: usize) -> Program {
        assert!(
            self.threads.len() <= width,
            "more threads than functional units"
        );
        assert!(
            width * self.reg_bank as usize <= ximd_isa::XIMD1_NUM_REGS,
            "register banks overflow the register file"
        );
        let len = self.threads.iter().map(VliwProgram::len).max().unwrap_or(0);
        let mut program = Program::new(width);
        for row in 0..len {
            let mut word = vec![Parcel::halt(); width];
            for (j, thread) in self.threads.iter().enumerate() {
                if let Some(instr) = thread.get(Addr(row as u32)) {
                    let ctrl = match instr.ctrl {
                        ControlOp::Branch {
                            cond: CondSource::Cc(_),
                            taken,
                            not_taken,
                        } => ControlOp::Branch {
                            cond: CondSource::Cc(FuId(j as u8)),
                            taken,
                            not_taken,
                        },
                        other => other,
                    };
                    word[j] = Parcel::data(
                        Self::rebase_data(&instr.ops[0], j as u16, self.reg_bank),
                        ctrl,
                    );
                }
            }
            program.push(word);
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{AluOp, CmpOp, Value};
    use ximd_sim::{MachineConfig, VliwInstruction, Vsim, Xsim};

    /// A scalar thread: r1 = sum of 1..=r0, via a compare/branch loop.
    fn sum_thread() -> VliwProgram {
        let mut p = VliwProgram::new(1);
        // 0: r2 = 0 (i)        -> 1
        p.push(VliwInstruction {
            ops: vec![DataOp::alu(
                AluOp::Iadd,
                Operand::imm_i32(0),
                Operand::imm_i32(0),
                Reg(2),
            )],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        // 1: cc = i < n        -> 2
        p.push(VliwInstruction {
            ops: vec![DataOp::cmp(CmpOp::Lt, Reg(2).into(), Reg(0).into())],
            ctrl: ControlOp::Goto(Addr(2)),
        });
        // 2: i += 1 ; if cc -> 3 else 4
        p.push(VliwInstruction {
            ops: vec![DataOp::alu(
                AluOp::Iadd,
                Reg(2).into(),
                Operand::imm_i32(1),
                Reg(2),
            )],
            ctrl: ControlOp::branch(CondSource::Cc(FuId(0)), Addr(3), Addr(4)),
        });
        // 3: r1 += i ; -> 1
        p.push(VliwInstruction {
            ops: vec![DataOp::alu(
                AluOp::Iadd,
                Reg(1).into(),
                Reg(2).into(),
                Reg(1),
            )],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        // 4: halt
        p.push(VliwInstruction::halt(1));
        p
    }

    /// A scalar thread: r1 = r0 squared via repeated addition.
    fn square_thread() -> VliwProgram {
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction {
            ops: vec![DataOp::alu(
                AluOp::Iadd,
                Operand::imm_i32(0),
                Operand::imm_i32(0),
                Reg(2),
            )],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        p.push(VliwInstruction {
            ops: vec![DataOp::cmp(CmpOp::Lt, Reg(2).into(), Reg(0).into())],
            ctrl: ControlOp::Goto(Addr(2)),
        });
        p.push(VliwInstruction {
            ops: vec![DataOp::alu(
                AluOp::Iadd,
                Reg(2).into(),
                Operand::imm_i32(1),
                Reg(2),
            )],
            ctrl: ControlOp::branch(CondSource::Cc(FuId(0)), Addr(3), Addr(4)),
        });
        p.push(VliwInstruction {
            ops: vec![DataOp::alu(
                AluOp::Iadd,
                Reg(1).into(),
                Reg(0).into(),
                Reg(1),
            )],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        p.push(VliwInstruction::halt(1));
        p
    }

    fn run_alone(thread: &VliwProgram, r0: i32) -> (i32, u64) {
        let mut sim = Vsim::new(thread.clone(), MachineConfig::with_width(1)).unwrap();
        sim.write_reg(Reg(0), Value::I32(r0));
        let summary = sim.run(100_000).unwrap();
        (sim.reg(Reg(1)).as_i32(), summary.cycles)
    }

    #[test]
    fn ximd_runs_independent_threads_concurrently() {
        let mimd = MimdProgram {
            threads: vec![sum_thread(), square_thread()],
            reg_bank: 8,
        };
        mimd.validate().unwrap();
        let program = mimd.to_ximd(4);

        let mut sim = Xsim::new(program, MachineConfig::with_width(4)).unwrap();
        sim.write_reg(Reg(0), Value::I32(10)); // thread 0: n = 10
        sim.write_reg(Reg(8), Value::I32(7)); // thread 1: n = 7
        let summary = sim.run(100_000).unwrap();

        let (sum_alone, sum_cycles) = run_alone(&sum_thread(), 10);
        let (sq_alone, sq_cycles) = run_alone(&square_thread(), 7);
        assert_eq!(sim.reg(Reg(1)).as_i32(), sum_alone);
        assert_eq!(sim.reg(Reg(9)).as_i32(), sq_alone);
        assert_eq!(sum_alone, 55);
        assert_eq!(sq_alone, 49);

        // Concurrency: combined run costs max, not sum.
        assert_eq!(summary.cycles, sum_cycles.max(sq_cycles));
    }

    #[test]
    fn threads_form_separate_ssets() {
        let mimd = MimdProgram {
            threads: vec![sum_thread(), square_thread()],
            reg_bank: 8,
        };
        let mut sim = Xsim::new(mimd.to_ximd(2), MachineConfig::with_width(2)).unwrap();
        sim.write_reg(Reg(0), Value::I32(5));
        sim.write_reg(Reg(8), Value::I32(5));
        sim.enable_trace();
        sim.run(100_000).unwrap();
        // Each thread branches on its own cc: two streams while both run.
        assert_eq!(sim.trace().unwrap().max_streams(), 2);
    }

    #[test]
    fn validate_rejects_wide_threads() {
        let mimd = MimdProgram {
            threads: vec![VliwProgram::new(2)],
            reg_bank: 8,
        };
        assert!(mimd.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "more threads")]
    fn too_many_threads_panics() {
        let mimd = MimdProgram {
            threads: vec![sum_thread(); 3],
            reg_bank: 8,
        };
        let _ = mimd.to_ximd(2);
    }

    #[test]
    fn unused_columns_halt_immediately() {
        let mimd = MimdProgram {
            threads: vec![sum_thread()],
            reg_bank: 8,
        };
        let program = mimd.to_ximd(4);
        let word = program.get(Addr(0)).unwrap();
        assert_eq!(word[3], Parcel::halt());
    }
}
