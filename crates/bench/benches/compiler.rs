//! Criterion benches: compiler pipeline cost — parsing/lowering/scheduling,
//! modulo scheduling, and the Figure 13 tile packers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ximd::compiler::pack::{pack_skyline, pack_stacked};
use ximd::compiler::pipeline::{modulo_schedule, CountedLoop};
use ximd::compiler::tile::menus;
use ximd::compiler::{compile, ir};
use ximd::isa::AluOp;

const SRC: &str = r"
fn kernel(n) {
    let s = 0;
    let t = 1;
    let i = 0;
    while (i < n) {
        if (mem[100 + i] % 2 == 0) {
            s = s + mem[100 + i] * 3;
        } else {
            t = t + s - i;
        }
        i = i + 1;
    }
    mem[50] = t;
    return s;
}
";

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for width in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("kernel", width), &width, |b, &w| {
            b.iter(|| compile(SRC, w).unwrap())
        });
    }
    group.finish();
}

fn loop12_spec() -> CountedLoop {
    use ir::{Inst, VReg, Val};
    CountedLoop {
        body: vec![
            Inst::Bin {
                op: AluOp::Iadd,
                a: VReg(0).into(),
                b: Val::Const(4999),
                d: VReg(5),
            },
            Inst::Load {
                base: Val::Const(2999),
                off: VReg(0).into(),
                d: VReg(2),
            },
            Inst::Load {
                base: Val::Const(3000),
                off: VReg(0).into(),
                d: VReg(3),
            },
            Inst::Bin {
                op: AluOp::Isub,
                a: VReg(3).into(),
                b: VReg(2).into(),
                d: VReg(4),
            },
            Inst::Store {
                val: VReg(4).into(),
                addr: VReg(5).into(),
            },
        ],
        induction: VReg(0),
        start: 1,
        step: 1,
        trips: VReg(1),
        assume_no_alias: true,
    }
}

fn bench_modulo_schedule(c: &mut Criterion) {
    let spec = loop12_spec();
    let mut group = c.benchmark_group("modulo_schedule");
    for width in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("loop12", width), &width, |b, &w| {
            b.iter(|| modulo_schedule(&spec, w).unwrap().ii)
        });
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    const THREADS: &str = r"
fn a(n) { let s = 0; let i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }
fn b(x, y) { return (x + y) * (x - y); }
fn c2(n) { let p = 1; let i = 0; while (i < n) { p = p * 2; i = i + 1; } return p; }
fn d(x) { return x * x * x + x; }
fn e(n) { let i = 0; while (i < n) { mem[600+i] = mem[500+i]; i = i + 1; } return 0; }
fn f(x, y, z) { return x * y + y * z + z * x; }
";
    let menus = menus(THREADS, &[1, 2, 4, 8]).unwrap();
    let mut group = c.benchmark_group("packing");
    group.bench_function("stacked", |b| {
        b.iter(|| pack_stacked(&menus, 8).total_height())
    });
    group.bench_function("skyline", |b| {
        b.iter(|| pack_skyline(&menus, 8, &[]).total_height())
    });
    group.bench_function("skyline_with_deps", |b| {
        b.iter(|| pack_skyline(&menus, 8, &[(0, 2), (1, 3), (2, 4)]).total_height())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_compile, bench_modulo_schedule, bench_packing
}
criterion_main!(benches);
