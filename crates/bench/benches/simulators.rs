//! Criterion benches: simulator throughput on the paper's workloads.
//!
//! These measure the *reproduction's* performance (simulated cycles per
//! wall-clock second), complementing the `repro` binary which regenerates
//! the paper's own numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ximd::isa::encode::{decode_parcel, encode_parcel};
use ximd::prelude::*;
use ximd::workloads::{bitcount, gen, livermore, minmax};

fn bench_minmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmax");
    for n in [64usize, 256] {
        let data = gen::uniform_ints(n as u64, n, -10_000, 10_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("xsim", n), &data, |b, data| {
            b.iter(|| minmax::run_ximd(data).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vsim", n), &data, |b, data| {
            b.iter(|| minmax::run_vliw(data).unwrap())
        });
    }
    group.finish();
}

fn bench_bitcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitcount");
    let data = gen::bit_weighted_ints(5, 64, 24);
    group.throughput(Throughput::Elements(64));
    group.bench_function("xsim", |b| b.iter(|| bitcount::run_ximd(&data).unwrap()));
    group.bench_function("vsim", |b| b.iter(|| bitcount::run_vliw(&data).unwrap()));
    group.finish();
}

fn bench_livermore(c: &mut Criterion) {
    let mut group = c.benchmark_group("livermore12");
    let y = gen::livermore_y(9, 256);
    group.throughput(Throughput::Elements(256));
    group.bench_function("xsim", |b| b.iter(|| livermore::run_ximd(&y).unwrap()));
    group.bench_function("vsim", |b| b.iter(|| livermore::run_vliw(&y).unwrap()));
    group.finish();
}

fn bench_simulator_step_rate(c: &mut Criterion) {
    // Raw cycle rate on an 8-wide machine running MINMAX-style code.
    let mut group = c.benchmark_group("step_rate");
    let data = gen::uniform_ints(1, 128, -100, 100);
    group.bench_function("xsim_cycles", |b| {
        b.iter(|| {
            let mut sim = Xsim::new(
                minmax::ximd_assembly().program,
                MachineConfig::with_width(4),
            )
            .unwrap();
            sim.mem_mut()
                .poke_slice(minmax::Z_BASE as i64, &data)
                .unwrap();
            sim.write_reg(minmax::REG_N, (data.len() as i32).into());
            sim.write_reg(minmax::REG_MIN, i32::MAX.into());
            sim.write_reg(minmax::REG_MAX, i32::MIN.into());
            sim.run_until_parked(minmax::PARK, 100_000).unwrap().cycles
        })
    });
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let program = bitcount::ximd_assembly().program;
    let parcels: Vec<_> = program.iter().flat_map(|(_, w)| w.clone()).collect();
    let mut group = c.benchmark_group("parcel_encoding");
    group.throughput(Throughput::Elements(parcels.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            parcels
                .iter()
                .map(|p| encode_parcel(p).unwrap())
                .sum::<u128>()
        })
    });
    let words: Vec<u128> = parcels.iter().map(|p| encode_parcel(p).unwrap()).collect();
    group.bench_function("decode", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|&w| decode_parcel(w).unwrap().sync.is_done() as u64)
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_minmax, bench_bitcount, bench_livermore, bench_simulator_step_rate, bench_encode
}
criterion_main!(benches);
