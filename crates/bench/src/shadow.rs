//! The `shadow` differential backend: two registered backends in lockstep.
//!
//! `shadow` is the out-of-crate proof that `ximd_sim::backend` is a real
//! plugin seam: it lives in the benchmark crate, implements
//! [`ExecutionBackend`] purely against the public registry/session API, and
//! registers under its own name like any third-party engine would. What it
//! *does* is turn the equivalence tests into a runtime tool — every drive
//! runs two sub-backends on bit-identical twin sessions and cross-checks
//! the full observable state ([`backend::state_digest`]) at intermediate
//! cycle marks and at the end. A future JIT can be validated in production
//! simply by running `--backend shadow` with the JIT as one half.
//!
//! The twin is built through the snapshot codec, so a shadow run also
//! exercises mid-run suspend/resume fidelity for free: any state the codec
//! dropped would show up as a divergence at the first cycle mark.

use std::sync::Arc;

use ximd::isa::Addr;
use ximd::sim::backend::{self, state_digest, BackendHandle, Capabilities, ExecutionBackend};
use ximd::sim::{RunSummary, Session, SimError};

/// Cycle marks (relative to the session's cycle at drive start) where the
/// two halves are stopped and their full state compared before running on.
const CHECK_MARKS: [u64; 3] = [64, 512, 4096];

/// One half of a shadow pair: a registry name resolved at drive time, or
/// an explicit handle pinned at construction (how a not-yet-registered
/// engine gets validated before it registers).
#[derive(Debug, Clone)]
enum Half {
    Named(String),
    Pinned(BackendHandle),
}

impl Half {
    fn label(&self) -> String {
        match self {
            Half::Named(name) => name.clone(),
            Half::Pinned(handle) => handle.name().to_string(),
        }
    }

    fn resolve(&self) -> Option<BackendHandle> {
        match self {
            Half::Named(name) => backend::lookup(name),
            Half::Pinned(handle) => Some(Arc::clone(handle)),
        }
    }
}

/// A differential backend running two registered backends in lockstep.
///
/// [`ShadowBackend::finish`] drives the session with the *primary* half and
/// a snapshot-restored twin with the *secondary* half, comparing state
/// digests at fixed cycle marks (`CHECK_MARKS`) and after completion. The
/// primary's summary is returned; any divergence is a
/// [`SimError::Backend`] naming `shadow`.
#[derive(Debug, Clone)]
pub struct ShadowBackend {
    primary: Half,
    secondary: Half,
}

impl Default for ShadowBackend {
    /// The classic differential pair: the decoded fast path checked
    /// against the cycle-accurate interpreter oracle.
    fn default() -> ShadowBackend {
        ShadowBackend::new("decoded", "interp")
    }
}

impl ShadowBackend {
    /// A shadow over the `primary`/`secondary` registered backend names.
    /// The halves are resolved from the registry at drive time, so a pair
    /// may be constructed before its halves register.
    ///
    /// # Panics
    ///
    /// Panics if either half names `shadow` itself (the drive would
    /// recurse forever).
    #[must_use]
    pub fn new(primary: &str, secondary: &str) -> ShadowBackend {
        assert!(
            primary != "shadow" && secondary != "shadow",
            "shadow cannot shadow itself"
        );
        ShadowBackend {
            primary: Half::Named(primary.to_string()),
            secondary: Half::Named(secondary.to_string()),
        }
    }

    /// A shadow over two explicit handles, bypassing the registry — the
    /// way to differential-test an engine before (or without) registering
    /// it under a name.
    ///
    /// # Panics
    ///
    /// Panics if either handle calls itself `shadow`.
    #[must_use]
    pub fn over(primary: BackendHandle, secondary: BackendHandle) -> ShadowBackend {
        assert!(
            primary.name() != "shadow" && secondary.name() != "shadow",
            "shadow cannot shadow itself"
        );
        ShadowBackend {
            primary: Half::Pinned(primary),
            secondary: Half::Pinned(secondary),
        }
    }

    /// The labels of the two halves, primary first.
    #[must_use]
    pub fn halves(&self) -> (String, String) {
        (self.primary.label(), self.secondary.label())
    }

    fn fault(&self, detail: String) -> SimError {
        SimError::Backend {
            backend: self.name().to_string(),
            detail,
        }
    }

    fn half(&self, half: &Half) -> Result<BackendHandle, SimError> {
        half.resolve()
            .ok_or_else(|| self.fault(format!("sub-backend {:?} is not registered", half.label())))
    }

    fn cross_check(&self, session: &Session, twin: &Session, at: &str) -> Result<(), SimError> {
        let (p, s) = self.halves();
        if session.cycle() != twin.cycle() || session.complete() != twin.complete() {
            return Err(self.fault(format!(
                "{p}/{s} diverged at {at}: cycle {} (complete: {}) vs cycle {} (complete: {})",
                session.cycle(),
                session.complete(),
                twin.cycle(),
                twin.complete(),
            )));
        }
        let (a, b) = (state_digest(session), state_digest(twin));
        if a != b {
            return Err(self.fault(format!(
                "{p}/{s} diverged at {at} (cycle {}): state digests {a:#018x} vs {b:#018x}",
                session.cycle(),
            )));
        }
        Ok(())
    }
}

impl ExecutionBackend for ShadowBackend {
    fn name(&self) -> &'static str {
        "shadow"
    }

    /// The intersection of the two halves' capabilities: shadow can only
    /// do what both halves do. Rank 0 keeps it out of auto-selection (ties
    /// at rank 0 go to the interpreter, which registers first). Unresolved
    /// halves declare nothing, so every request is rejected up front with
    /// a capability mismatch rather than failing mid-drive.
    fn capabilities(&self) -> Capabilities {
        let none = Capabilities {
            non_ideal_timing: false,
            lane_batching: false,
            snapshotting: false,
            trace_emission: false,
            uses_decoded_tables: false,
            rank: 0,
        };
        let (Some(a), Some(b)) = (self.primary.resolve(), self.secondary.resolve()) else {
            return none;
        };
        let (a, b) = (a.capabilities(), b.capabilities());
        Capabilities {
            non_ideal_timing: a.non_ideal_timing && b.non_ideal_timing,
            lane_batching: a.lane_batching && b.lane_batching,
            // The twin is built through snapshot/restore, so both halves
            // must round-trip the codec for shadow to operate at all.
            snapshotting: a.snapshotting && b.snapshotting,
            trace_emission: a.trace_emission && b.trace_emission,
            uses_decoded_tables: a.uses_decoded_tables || b.uses_decoded_tables,
            rank: 0,
        }
    }

    fn finish(
        &self,
        session: &mut Session,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        self.check(&session.backend_request())?;
        let primary = self.half(&self.primary)?;
        let secondary = self.half(&self.secondary)?;

        let image = session
            .snapshot()
            .map_err(|e| self.fault(format!("cannot snapshot the session for the twin: {e}")))?;
        let mut twin = Session::restore(&image)
            .map_err(|e| self.fault(format!("cannot restore the twin session: {e}")))?;
        self.cross_check(session, &twin, "the twin's restore point")?;

        let start = session.cycle();
        for mark in CHECK_MARKS {
            let upto = start.saturating_add(mark);
            if upto >= max_cycles || session.complete() {
                break;
            }
            primary.advance_to(session, park, upto)?;
            secondary.advance_to(&mut twin, park, upto)?;
            self.cross_check(session, &twin, &format!("cycle mark {upto}"))?;
        }

        let a = primary.finish(session, park, max_cycles)?;
        let b = secondary.finish(&mut twin, park, max_cycles)?;
        if a != b {
            let (p, s) = self.halves();
            return Err(self.fault(format!(
                "run summaries diverge: {p} returned {a:?}, {s} returned {b:?}",
            )));
        }
        self.cross_check(session, &twin, "the final state")?;
        Ok(a)
    }
}

/// Registers the default `shadow` pair (decoded checked against interp)
/// process-wide. Idempotent: re-registration replaces the entry.
pub fn register() {
    backend::register(Arc::new(ShadowBackend::default()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd::workloads::{bitcount, gen, RunSpec};

    fn drive(backend: &dyn ExecutionBackend) -> (Session, Option<RunSummary>) {
        let data = gen::bit_weighted_ints(7, 24, 20);
        let (sim, spec) = bitcount::prepared(&data).expect("bitcount prepares");
        let (park, budget) = match spec {
            RunSpec::Run(b) => (None, b),
            RunSpec::Parked(p, b) => (Some(p), b),
        };
        let mut session = backend.prepare(vec![sim], None).expect("session prepares");
        let summary = backend
            .finish(&mut session, park, budget)
            .expect("shadowed run finishes");
        (session, summary)
    }

    #[test]
    fn shadow_registers_and_matches_its_halves() {
        register();
        assert!(backend::names().contains(&"shadow".to_string()));
        let shadow = backend::lookup("shadow").expect("registered");
        let caps = shadow.capabilities();
        // decoded ∩ interp: ideal-only, single-machine, snapshot-capable.
        assert!(!caps.non_ideal_timing && !caps.lane_batching && !caps.trace_emission);
        assert!(caps.snapshotting && caps.uses_decoded_tables);

        let (shadowed, summary) = drive(shadow.as_ref());
        let (reference, ref_summary) =
            drive(backend::lookup("decoded").expect("built-in").as_ref());
        assert_eq!(summary, ref_summary);
        assert_eq!(state_digest(&shadowed), state_digest(&reference));
    }

    #[test]
    fn shadow_never_wins_auto_selection() {
        register();
        let picked = backend::select(&backend::BackendRequest::single_ideal()).expect("selects");
        assert_eq!(picked.name(), "decoded");
    }

    #[test]
    fn a_lying_half_is_caught() {
        // A backend that quietly under-runs: it stops one cycle short of
        // the interpreter's answer and reports no summary. Shadowing it
        // against the interpreter must surface the divergence as a
        // `shadow` backend error, not as a wrong result. The liar is
        // pinned by handle, not registered — exactly how a pre-release
        // engine would be differential-tested.
        #[derive(Debug)]
        struct Limp;
        impl ExecutionBackend for Limp {
            fn name(&self) -> &'static str {
                "limp"
            }
            fn capabilities(&self) -> Capabilities {
                Capabilities {
                    non_ideal_timing: false,
                    lane_batching: false,
                    snapshotting: true,
                    trace_emission: false,
                    uses_decoded_tables: false,
                    rank: 0,
                }
            }
            fn finish(
                &self,
                session: &mut Session,
                park: Option<Addr>,
                max_cycles: u64,
            ) -> Result<Option<RunSummary>, SimError> {
                session.advance_to(park, max_cycles.saturating_sub(1))?;
                Ok(None)
            }
        }
        let shadow =
            ShadowBackend::over(Arc::new(Limp), backend::lookup("interp").expect("built-in"));

        let data = gen::bit_weighted_ints(3, 16, 20);
        let (sim, spec) = bitcount::prepared(&data).expect("bitcount prepares");
        let (park, budget) = match spec {
            RunSpec::Run(b) => (None, b),
            RunSpec::Parked(p, b) => (Some(p), b),
        };
        let mut session = shadow.prepare(vec![sim], None).expect("session prepares");
        let err = shadow
            .finish(&mut session, park, budget)
            .expect_err("divergence must be reported");
        match err {
            SimError::Backend { backend, detail } => {
                assert_eq!(backend, "shadow");
                assert!(detail.contains("diverge"), "unexpected detail: {detail}");
            }
            other => panic!("expected a shadow backend error, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "shadow cannot shadow itself")]
    fn shadow_rejects_recursive_halves() {
        let _ = ShadowBackend::new("shadow", "interp");
    }
}
