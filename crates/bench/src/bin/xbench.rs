//! `xbench` — simulator throughput benchmark and perf-regression gate.
//!
//! Runs every workload through both execution engines (interpreter and the
//! decoded fast path), verifies they agree exactly, measures simulated
//! cycles per second, runs a batched multi-instance throughput pass, and
//! writes the results as `BENCH_ximd.json`.
//!
//! Usage:
//!
//! ```text
//! xbench                          # full run, writes BENCH_ximd.json
//! xbench --quick                  # smaller inputs, fewer iterations (CI)
//! xbench --out PATH               # output path (default BENCH_ximd.json)
//! xbench --baseline PATH          # gate against a committed baseline
//! xbench --batch N                # threads in the batched mode (default 4)
//! xbench --iters N                # timed iterations per engine
//! ```
//!
//! Exit status: `0` ok; `1` usage or I/O error; `2` correctness gate
//! (engine divergence, or bitcount speedup below 2x); `3` perf-regression
//! gate (a workload's speedup fell more than 50% below the baseline's on
//! two consecutive measurements).

use ximd_bench::throughput::{regressions, run_benchmarks, to_json, BenchConfig};

/// The decoded path must beat the interpreter by at least this factor on
/// bitcount (the ISSUE's acceptance bar).
const MIN_BITCOUNT_SPEEDUP: f64 = 2.0;
/// Allowed speedup drop vs the baseline before the regression gate trips.
/// Quick-mode wall ratios jitter heavily on shared single-core runners
/// (observed swings approach 2x), so the band is wide: it exists to catch
/// the decoded path losing its advantage outright, not scheduler noise.
const REGRESSION_TOLERANCE: f64 = 0.5;

fn usage() -> ! {
    eprintln!("usage: xbench [--quick] [--out PATH] [--baseline PATH] [--batch N] [--iters N]");
    std::process::exit(1);
}

fn main() {
    let mut config = BenchConfig::default();
    let mut out_path = String::from("BENCH_ximd.json");
    let mut baseline_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("xbench: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--quick" | "-q" => config.quick = true,
            "--out" | "-o" => out_path = value("--out"),
            "--baseline" | "-b" => baseline_path = Some(value("--baseline")),
            "--batch" => {
                config.batch_threads = value("--batch").parse().unwrap_or_else(|_| usage())
            }
            "--iters" => config.iters = Some(value("--iters").parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let report = run_benchmarks(&config);

    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>8}  ok",
        "workload", "cycles", "interp c/s", "decoded c/s", "speedup"
    );
    for w in &report.workloads {
        println!(
            "{:<12} {:>10} {:>14.0} {:>14.0} {:>7.2}x  {}",
            w.name,
            w.sim_cycles,
            w.interp_cps(),
            w.decoded_cps(),
            w.speedup(),
            if w.equivalent { "yes" } else { "NO" }
        );
    }
    let b = &report.batch;
    println!(
        "batch: {} threads x {} bitcount instances, {} cycles, {:.0} cycles/s",
        b.threads,
        b.instances_per_thread,
        b.total_cycles,
        b.cycles_per_sec()
    );

    println!(
        "\n{:<18} {:<16} {:>9} {:>8} {:>11}  ok",
        "sweep workload", "timing", "cycles", "stalls", "contention"
    );
    for p in &report.sweep {
        println!(
            "{:<18} {:<16} {:>9} {:>8} {:>11}  {}",
            p.workload,
            p.timing,
            p.cycles,
            p.stall_cycles,
            p.contention_stalls,
            if p.correct { "yes" } else { "NO" }
        );
    }

    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("xbench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let mut status = 0;
    if !report.all_equivalent() {
        let bad: Vec<&str> = report
            .workloads
            .iter()
            .filter(|w| !w.equivalent)
            .map(|w| w.name)
            .collect();
        eprintln!("xbench: FAIL: engines diverged on {}", bad.join(", "));
        status = 2;
    }
    if report.sweep.iter().any(|p| !p.correct) {
        let bad: Vec<String> = report
            .sweep
            .iter()
            .filter(|p| !p.correct)
            .map(|p| format!("{}@{}", p.workload, p.timing))
            .collect();
        eprintln!(
            "xbench: FAIL: timing model changed results on {}",
            bad.join(", ")
        );
        status = 2;
    }
    if let Some(w) = report.workload("bitcount") {
        if w.speedup() < MIN_BITCOUNT_SPEEDUP {
            eprintln!(
                "xbench: FAIL: bitcount speedup {:.2}x below the {MIN_BITCOUNT_SPEEDUP}x bar",
                w.speedup()
            );
            status = 2;
        }
    }
    if status == 0 {
        if let Some(path) = baseline_path {
            let baseline = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xbench: cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            let mut regs = regressions(&report, &baseline, REGRESSION_TOLERANCE);
            if !regs.is_empty() {
                // A single noisy measurement can halve one workload's
                // ratio; a real regression reproduces. Re-measure once and
                // keep only workloads that regress both times.
                eprintln!(
                    "xbench: possible regression ({}), re-measuring to confirm",
                    regs.iter()
                        .map(|(name, _, _)| name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let retry = regressions(&run_benchmarks(&config), &baseline, REGRESSION_TOLERANCE);
                regs.retain(|(name, _, _)| retry.iter().any(|(n, _, _)| n == name));
            }
            if !regs.is_empty() {
                for (name, base, now) in &regs {
                    eprintln!(
                        "xbench: FAIL: {name} speedup regressed: {now:.2}x vs baseline {base:.2}x \
                         (>{:.0}% drop, confirmed on re-measure)",
                        REGRESSION_TOLERANCE * 100.0
                    );
                }
                status = 3;
            } else {
                println!("baseline gate passed ({path})");
            }
        }
    }
    std::process::exit(status);
}
