//! `xbench` — simulator throughput benchmark and perf-regression gate.
//!
//! Runs every workload through every backend in the execution-backend
//! registry capable of the run (the built-ins plus this crate's `shadow`
//! differential backend), verifies they all agree with the interpreter
//! oracle exactly, measures simulated cycles per second, runs the batched
//! multi-instance throughput passes (threads × decoded instances, and the
//! single-core SoA lane engine), and writes the results as
//! `BENCH_ximd.json`. The printed table and the committed baselines keep
//! the interpreter-vs-decoded speedup columns; other backends' wall times
//! land in the JSON as `<name>_wall_secs` fields.
//!
//! Usage:
//!
//! ```text
//! xbench                          # full run, writes BENCH_ximd.json
//! xbench --quick                  # smaller inputs, fewer iterations (CI)
//! xbench --out PATH               # output path (default BENCH_ximd.json)
//! xbench --baseline PATH          # gate against a committed baseline
//! xbench --batch N                # threads in the batched mode (default 4)
//! xbench --iters N                # timed iterations per engine
//! ```
//!
//! Exit status follows the workspace convention: `0` ok; `1` failure —
//! an I/O error, the correctness gate (engine or lane divergence,
//! bitcount speedup below 2x, the uniform lane row's throughput falling
//! below the threaded row's floor), or the perf-regression gate (a gated
//! ratio fell below the baseline's tolerance band on two consecutive
//! measurements); `2` usage error.

use ximd_bench::throughput::{lane_regressions, regressions, run_benchmarks, to_json, BenchConfig};

/// The decoded path must beat the interpreter by at least this factor on
/// bitcount (the ISSUE's acceptance bar).
const MIN_BITCOUNT_SPEEDUP: f64 = 2.0;
/// Allowed speedup drop vs the baseline before the regression gate trips.
/// Quick-mode wall ratios jitter heavily on shared single-core runners
/// (observed swings approach 2x), so the band is wide: it exists to catch
/// the decoded path losing its advantage outright, not scheduler noise.
const REGRESSION_TOLERANCE: f64 = 0.5;
/// Absolute floor for the uniform lane row's `vs_threads` ratio. The
/// threaded `batch` row scales with however many of its (default 4)
/// threads get real cores, while the lane engine uses exactly one core —
/// so the ratio is machine-dependent: ~4-8x on a single-core runner,
/// near 1x on a 4-core one. The floor asserts the structural claim that
/// survives that variance: one lane-engine core must deliver at least
/// half of what the whole threaded batch does.
const MIN_LANE_VS_THREADS: f64 = 0.5;
/// Allowed `vs_threads` drop vs the baseline's before the lane regression
/// gate trips. Far wider than `REGRESSION_TOLERANCE` because the baseline
/// may have been recorded on a machine with a different core count (a
/// 1-core baseline ratio is ~4x a 4-core runner's); the band only catches
/// the lane engine losing its single-core advantage by an order of
/// magnitude.
const LANE_TOLERANCE: f64 = 0.85;

const USAGE: &str =
    "usage: xbench [--quick] [--out PATH] [--baseline PATH] [--batch N] [--iters N]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut config = BenchConfig::default();
    let mut out_path = String::from("BENCH_ximd.json");
    let mut baseline_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("xbench: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--quick" | "-q" => config.quick = true,
            "--out" | "-o" => out_path = value("--out"),
            "--baseline" | "-b" => baseline_path = Some(value("--baseline")),
            "--batch" => {
                config.batch_threads = value("--batch").parse().unwrap_or_else(|_| usage())
            }
            "--iters" => config.iters = Some(value("--iters").parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ => usage(),
        }
    }

    let report = run_benchmarks(&config);

    if let Some(w) = report.workloads.first() {
        let timed: Vec<&str> = w.backends.iter().map(|t| t.backend.as_str()).collect();
        println!("backends: {}", timed.join(", "));
    }
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>8}  ok",
        "workload", "cycles", "interp c/s", "decoded c/s", "speedup"
    );
    for w in &report.workloads {
        println!(
            "{:<12} {:>10} {:>14.0} {:>14.0} {:>7.2}x  {}",
            w.name,
            w.sim_cycles,
            w.interp_cps(),
            w.decoded_cps(),
            w.speedup(),
            if w.equivalent { "yes" } else { "NO" }
        );
    }
    println!(
        "\n{:<12} {:>5} {:>5} {:>5} {:>11} {:>4}  certified",
        "schedule", "width", "ops", "rows", "ops/parcel", "ii"
    );
    for s in &report.schedule {
        println!(
            "{:<12} {:>5} {:>5} {:>5} {:>11.3} {:>4}  {}",
            s.workload,
            s.width,
            s.ops,
            s.rows,
            s.density(),
            s.ii.map_or_else(|| "-".to_string(), |ii| ii.to_string()),
            if s.certified { "yes" } else { "NO" }
        );
    }

    let b = &report.batch;
    println!(
        "batch: {} threads x {} bitcount instances, {} cycles, {:.0} cycles/s",
        b.threads,
        b.instances_per_thread,
        b.total_cycles,
        b.cycles_per_sec()
    );
    for l in &report.batch_lanes {
        println!(
            "batch_lanes: {} x {} ({}), {} cycles, {:.0} cycles/s, {:.2}x vs threads, {}",
            l.lanes,
            l.workload,
            l.mode,
            l.total_cycles,
            l.cycles_per_sec(),
            report.lane_vs_threads(l),
            if l.equivalent { "ok" } else { "DIVERGED" }
        );
    }

    println!(
        "\n{:<18} {:<16} {:>9} {:>8} {:>11}  ok",
        "sweep workload", "timing", "cycles", "stalls", "contention"
    );
    for p in &report.sweep {
        println!(
            "{:<18} {:<16} {:>9} {:>8} {:>11}  {}",
            p.workload,
            p.timing,
            p.cycles,
            p.stall_cycles,
            p.contention_stalls,
            if p.correct { "yes" } else { "NO" }
        );
    }

    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("xbench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let mut status = 0;
    if !report.all_equivalent() {
        let bad: Vec<String> = report
            .workloads
            .iter()
            .filter(|w| !w.equivalent)
            .map(|w| w.name.to_string())
            .chain(
                report
                    .batch_lanes
                    .iter()
                    .filter(|l| !l.equivalent)
                    .map(|l| format!("lanes:{}:{}", l.workload, l.mode)),
            )
            .collect();
        eprintln!("xbench: FAIL: engines diverged on {}", bad.join(", "));
        status = 1;
    }
    if report.sweep.iter().any(|p| !p.correct) {
        let bad: Vec<String> = report
            .sweep
            .iter()
            .filter(|p| !p.correct)
            .map(|p| format!("{}@{}", p.workload, p.timing))
            .collect();
        eprintln!(
            "xbench: FAIL: timing model changed results on {}",
            bad.join(", ")
        );
        status = 1;
    }
    if let Some(w) = report.workload("bitcount") {
        if w.speedup() < MIN_BITCOUNT_SPEEDUP {
            eprintln!(
                "xbench: FAIL: bitcount speedup {:.2}x below the {MIN_BITCOUNT_SPEEDUP}x bar",
                w.speedup()
            );
            status = 1;
        }
    }
    if let Some(l) = report.batch_lanes.iter().find(|l| l.mode == "uniform") {
        let ratio = report.lane_vs_threads(l);
        if ratio < MIN_LANE_VS_THREADS {
            eprintln!(
                "xbench: FAIL: uniform lane batch at {ratio:.2}x the threaded row, \
                 below the {MIN_LANE_VS_THREADS}x floor"
            );
            status = 1;
        }
    }
    if status == 0 {
        if let Some(path) = baseline_path {
            let baseline = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xbench: cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            let mut regs = regressions(&report, &baseline, REGRESSION_TOLERANCE);
            let mut lane_regs = lane_regressions(&report, &baseline, LANE_TOLERANCE);
            if !regs.is_empty() || !lane_regs.is_empty() {
                // A single noisy measurement can halve one workload's
                // ratio; a real regression reproduces. Re-measure once and
                // keep only records that regress both times.
                eprintln!(
                    "xbench: possible regression ({}), re-measuring to confirm",
                    regs.iter()
                        .map(|(name, _, _)| name.as_str())
                        .chain(lane_regs.iter().map(|_| "batch_lanes"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let remeasured = run_benchmarks(&config);
                let retry = regressions(&remeasured, &baseline, REGRESSION_TOLERANCE);
                regs.retain(|(name, _, _)| retry.iter().any(|(n, _, _)| n == name));
                let lane_retry = lane_regressions(&remeasured, &baseline, LANE_TOLERANCE);
                lane_regs.retain(|(name, _, _)| lane_retry.iter().any(|(n, _, _)| n == name));
            }
            if !regs.is_empty() || !lane_regs.is_empty() {
                for (name, base, now) in &regs {
                    eprintln!(
                        "xbench: FAIL: {name} speedup regressed: {now:.2}x vs baseline {base:.2}x \
                         (>{:.0}% drop, confirmed on re-measure)",
                        REGRESSION_TOLERANCE * 100.0
                    );
                }
                for (name, base, now) in &lane_regs {
                    eprintln!(
                        "xbench: FAIL: {name} lane batch vs_threads regressed: {now:.2}x vs \
                         baseline {base:.2}x (>{:.0}% drop, confirmed on re-measure)",
                        LANE_TOLERANCE * 100.0
                    );
                }
                status = 1;
            } else {
                println!("baseline gate passed ({path})");
            }
        }
    }
    std::process::exit(status);
}
