//! `repro` — regenerates every table and figure of the XIMD paper.
//!
//! Usage:
//!
//! ```text
//! repro                 # run every experiment
//! repro fig10 perf      # run selected experiments by id
//! repro --list          # list experiment ids
//! ```
//!
//! Exit status is non-zero if any regenerated artifact fails its check
//! against the published values.

use ximd_bench::{all_reports, Report};

fn select(args: &[String]) -> Vec<Report> {
    let all = all_reports();
    if args.is_empty() {
        return all;
    }
    let wanted: Vec<String> = args.iter().map(|a| a.to_ascii_uppercase()).collect();
    all.into_iter()
        .filter(|r| wanted.iter().any(|w| r.id.eq_ignore_ascii_case(w)))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for r in all_reports() {
            println!("{:<8} {}", r.id, r.title);
        }
        return;
    }
    let reports = select(&args);
    if reports.is_empty() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(2);
    }
    let mut failed = 0;
    for report in &reports {
        println!("{report}");
        if !report.ok {
            failed += 1;
        }
    }
    println!(
        "== {} experiment(s), {} ok, {} mismatched ==",
        reports.len(),
        reports.len() - failed,
        failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
