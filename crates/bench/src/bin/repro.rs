//! `repro` — regenerates every table and figure of the XIMD paper.
//!
//! Usage:
//!
//! ```text
//! repro                 # run every experiment
//! repro fig10 perf      # run selected experiments by id
//! repro --list          # list experiment ids
//! repro --no-lint       # skip the xlint preflight
//! ```
//!
//! Before any experiment runs, every workload program is linted; an
//! error-severity finding aborts the run (warnings are reported only).
//! Exit status is non-zero if the preflight fails or any regenerated
//! artifact fails its check against the published values.

use ximd_bench::{all_reports, lint_preflight, Report};

fn select(args: &[String]) -> Vec<Report> {
    let all = all_reports();
    if args.is_empty() {
        return all;
    }
    let wanted: Vec<String> = args.iter().map(|a| a.to_ascii_uppercase()).collect();
    all.into_iter()
        .filter(|r| wanted.iter().any(|w| r.id.eq_ignore_ascii_case(w)))
        .collect()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for r in all_reports() {
            println!("{:<8} {}", r.id, r.title);
        }
        return;
    }
    let no_lint = args.iter().any(|a| a == "--no-lint");
    args.retain(|a| a != "--no-lint");
    if no_lint {
        println!("== xlint preflight skipped (--no-lint) ==");
    } else {
        let pf = lint_preflight();
        println!("== xlint preflight ==");
        print!("{}", pf.body);
        if pf.errors {
            eprintln!("repro: xlint preflight failed; fix the findings or pass --no-lint");
            std::process::exit(1);
        }
        if pf.incomplete {
            eprintln!(
                "repro: xlint preflight is incomplete (product state cap hit); \
                 raise the cap or pass --no-lint"
            );
            std::process::exit(1);
        }
    }
    let reports = select(&args);
    if reports.is_empty() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(2);
    }
    let mut failed = 0;
    for report in &reports {
        println!("{report}");
        if !report.ok {
            failed += 1;
        }
    }
    println!(
        "== {} experiment(s), {} ok, {} mismatched ==",
        reports.len(),
        reports.len() - failed,
        failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
