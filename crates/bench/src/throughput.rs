//! Simulator throughput benchmarks across the execution-backend registry.
//!
//! Drives every workload (tproc, livermore, minmax, bitcount, nonblocking,
//! forkjoin) through **every registered backend** capable of the run
//! (`ximd_sim::backend::all()`, including this crate's [`crate::shadow`]
//! differential backend), measures wall time and simulated cycles/second,
//! verifies all backends agree with the interpreter oracle exactly, and
//! adds a batched multi-instance mode (N threads × M independent program
//! instances) for the heavy-traffic axis. The `xbench` binary renders the
//! result as `BENCH_ximd.json`; the interpreter-vs-decoded speedup keeps
//! its dedicated JSON fields because the committed baselines gate on them.
//!
//! The JSON is hand-emitted and hand-parsed through `ximd_serve::json`
//! (shared with the daemon's stats endpoint): the workspace's `serde` is an
//! offline marker-trait stub without serializers.

use std::fmt::Write as _;
use std::time::Instant;

use ximd::prelude::*;
use ximd::sim::backend::{self, state_digest, BackendRequest, ExecutionBackend};
use ximd::sim::{LaneXsim, Session, SimError, TimingSpec};
use ximd::workloads::{
    bitcount, gen, lane_batch, livermore, minmax, nonblocking, saxpy, tproc, RunSpec,
};
use ximd_serve::json::{num_field, str_field, JsonWriter};

/// Benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Smaller inputs and fewer iterations (CI smoke mode).
    pub quick: bool,
    /// Measurement rounds per engine per workload (`None` = mode default).
    /// Each round times a calibrated batch of runs; the best round is
    /// reported, which suppresses scheduler noise on short workloads.
    pub iters: Option<u32>,
    /// Threads in the batched multi-instance mode.
    pub batch_threads: usize,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            quick: false,
            iters: None,
            batch_threads: 4,
        }
    }
}

/// One registered backend's best-of-rounds wall time on a workload.
#[derive(Debug, Clone)]
pub struct BackendTime {
    /// The backend's registry name.
    pub backend: String,
    /// Best-of-rounds per-run wall time, seconds.
    pub secs: f64,
}

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Workload name (stable across runs; the baseline gate keys on it
    /// together with `timing`).
    pub name: &'static str,
    /// Canonical timing-model spec the machine ran under. The
    /// interpreter-vs-decoded comparison only exists under `"ideal"` (the
    /// fast path requires it), but the tag keeps the baseline gate
    /// like-for-like if non-ideal records ever land in a baseline file.
    pub timing: String,
    /// Simulated cycles one run takes (identical for both engines).
    pub sim_cycles: u64,
    /// Best-of-rounds per-run interpreter wall time, seconds.
    pub interp_secs: f64,
    /// Best-of-rounds per-run decoded-path wall time, seconds.
    pub decoded_secs: f64,
    /// Per-run wall time for every registered backend that supports the
    /// run (registration order). `interp_secs`/`decoded_secs` above are
    /// the two entries the committed baselines gate on.
    pub backends: Vec<BackendTime>,
    /// Total timed interpreter runs (each backend calibrates its own
    /// batch size from the same round budget).
    pub iters: u32,
    /// Every capable backend agreed with the interpreter oracle on
    /// `RunSummary`, full state digest and port traffic.
    pub equivalent: bool,
    /// Whether the baseline speedup gate applies to this record. Workloads
    /// below [`MIN_GATED_SIM_CYCLES`] finish in well under a microsecond,
    /// where the interpreter-vs-decoded ratio is dominated by fixed per-run
    /// overhead and scheduler noise rather than engine throughput; their
    /// ratios are reported but exempt from the regression gate.
    pub gated: bool,
}

/// Minimum simulated cycles per run for a workload's speedup ratio to be
/// meaningful enough to gate on (tproc's 6-cycle run sits far below this;
/// every real kernel is far above it).
pub const MIN_GATED_SIM_CYCLES: u64 = 32;

impl WorkloadBench {
    /// Simulated cycles per wall-clock second, interpreter.
    pub fn interp_cps(&self) -> f64 {
        self.sim_cycles as f64 / self.interp_secs
    }

    /// Simulated cycles per wall-clock second, decoded path.
    pub fn decoded_cps(&self) -> f64 {
        self.sim_cycles as f64 / self.decoded_secs
    }

    /// Decoded-path speedup over the interpreter (wall-time ratio).
    pub fn speedup(&self) -> f64 {
        self.interp_secs / self.decoded_secs
    }
}

/// The batched multi-instance throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct BatchBench {
    /// Worker threads.
    pub threads: usize,
    /// Program instances simulated per thread.
    pub instances_per_thread: usize,
    /// Total simulated cycles across every instance.
    pub total_cycles: u64,
    /// Wall time for the whole batch, seconds.
    pub wall_secs: f64,
}

impl BatchBench {
    /// Aggregate simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / self.wall_secs
    }
}

/// One lane-engine batch measurement: N instances of one program stepped
/// in lockstep on a single core by `ximd_sim::LaneXsim`.
#[derive(Debug, Clone, Copy)]
pub struct LaneBatchBench {
    /// Workload name.
    pub workload: &'static str,
    /// `"uniform"` — identical lanes, like-for-like with the threaded
    /// `batch` row (same prototype, same data); stays on the vectorized
    /// path the whole run. `"seeded"` — per-lane input data, so lanes
    /// diverge and park at different cycles, exercising the scalar
    /// fallback; every lane is verified against its own independent
    /// decoded run.
    pub mode: &'static str,
    /// Lanes in the batch.
    pub lanes: usize,
    /// Sum of per-lane simulated cycles.
    pub total_cycles: u64,
    /// Wall time for the whole batch (including batch assembly, matching
    /// the threaded row's per-instance clone cost), seconds.
    pub wall_secs: f64,
    /// Lane state matched independent decoded runs exactly.
    pub equivalent: bool,
}

impl LaneBatchBench {
    /// Aggregate simulated lane-cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / self.wall_secs
    }
}

/// One point of the timing-model sweep: a lockstep-safe workload run under
/// one non-trivial (or ideal, for the reference row) timing model.
///
/// Only forms whose results survive re-timing are swept — the VLIW forms
/// (one sequencer stalls whole words) and vsim kernels; XIMD programs with
/// implicit cycle-counted barriers are excluded by construction (see
/// `ximd_workloads::with_timing`'s validity notes).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Workload name (keyed `"workload"` in the JSON so the baseline
    /// parser, which keys on `"name"`, never confuses sweep rows with
    /// speedup records).
    pub workload: &'static str,
    /// Canonical timing spec (`TimingSpec` display form).
    pub timing: String,
    /// Cycles the run took under this model.
    pub cycles: u64,
    /// FU-cycles spent stalled (latency or bank-queue occupancy).
    pub stall_cycles: u64,
    /// Stall cycles attributable to bank conflicts specifically.
    pub contention_stalls: u64,
    /// Results matched the workload's oracle bit-for-bit.
    pub correct: bool,
}

/// Static schedule-quality metrics for one compiler-emitted workload,
/// derived from the compiled program and its schedule certificate — no
/// simulation involved, so the numbers are exact and deterministic.
#[derive(Debug, Clone)]
pub struct ScheduleQuality {
    /// Suite workload name.
    pub workload: &'static str,
    /// Machine width the workload was compiled for.
    pub width: usize,
    /// Non-nop data operations in the emitted program.
    pub ops: u64,
    /// Schedule length: wide instructions (rows) emitted.
    pub rows: u64,
    /// Achieved initiation interval, for workloads that software-pipelined.
    pub ii: Option<u32>,
    /// The emitted schedule passed `xlint --certify`.
    pub certified: bool,
}

impl ScheduleQuality {
    /// Issue-slot density: ops per parcel slot (`ops / (rows * width)`).
    pub fn density(&self) -> f64 {
        self.ops as f64 / (self.rows as f64 * self.width as f64)
    }
}

/// Compiles every suite workload at `width` and measures the emitted
/// schedule: op count, schedule length, issue-slot density, achieved II,
/// and whether the schedule certificate verifies clean.
///
/// # Panics
///
/// Panics if a suite workload fails to compile (they always do).
pub fn schedule_quality(width: usize) -> Vec<ScheduleQuality> {
    ximd::compiler::suite::SUITE
        .iter()
        .map(|w| {
            let (f, ii) = w.compile(width).expect("suite workload compiles");
            let program = f.ximd_program();
            let rows = program.len() as u64;
            let ops: u64 = program
                .iter()
                .map(|(_, wide)| wide.iter().filter(|p| !p.data.is_nop()).count() as u64)
                .sum();
            let certified = f
                .cert
                .as_ref()
                .is_some_and(|c| ximd::analysis::certify_program(&program, c).is_clean());
            ScheduleQuality {
                workload: w.name,
                width,
                ops,
                rows,
                ii,
                certified,
            }
        })
        .collect()
}

/// A full benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Whether quick (smoke) mode was used.
    pub quick: bool,
    /// Per-workload measurements, in fixed order.
    pub workloads: Vec<WorkloadBench>,
    /// The batched multi-instance measurement (decoded engine).
    pub batch: BatchBench,
    /// Lane-engine batch measurements (uniform + seeded rows).
    pub batch_lanes: Vec<LaneBatchBench>,
    /// Cycles under swept timing models (memory latency 1–8, banked:2).
    pub sweep: Vec<SweepPoint>,
    /// Static schedule-quality metrics for the compiled suite workloads.
    pub schedule: Vec<ScheduleQuality>,
}

impl BenchReport {
    /// True if every workload's engines agreed exactly, including every
    /// verified lane of the lane-batch rows.
    pub fn all_equivalent(&self) -> bool {
        self.workloads.iter().all(|w| w.equivalent) && self.batch_lanes.iter().all(|l| l.equivalent)
    }

    /// A lane row's aggregate throughput relative to the threaded `batch`
    /// row of the same report (both measured on this host, so the ratio is
    /// host-speed independent — though it does scale with the runner's
    /// core count, since the threaded row uses every core and the lane
    /// row exactly one).
    pub fn lane_vs_threads(&self, row: &LaneBatchBench) -> f64 {
        row.cycles_per_sec() / self.batch.cycles_per_sec()
    }

    /// A named workload's measurements.
    pub fn workload(&self, name: &str) -> Option<&WorkloadBench> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

/// Words of memory compared in the equivalence check — covers every
/// workload's data region (largest base: livermore's `X_BASE = 4999`).
const MEM_WINDOW: usize = 6000;

/// Port-traffic comparison between two machines — the one observable
/// [`backend::state_digest`] deliberately excludes, so the benchmark's
/// equivalence verdict checks it separately.
fn ports_agree(a: &Xsim, b: &Xsim) -> bool {
    let written = |sim: &Xsim| -> Vec<Vec<(u64, i32)>> {
        sim.ports()
            .iter()
            .map(|p| {
                p.written()
                    .iter()
                    .map(|e| (e.cycle, e.value.as_i32()))
                    .collect()
            })
            .collect()
    };
    written(a) == written(b)
}

/// Runs one prepared machine to completion on `backend` through the
/// session layer, returning the finished session and its summary.
fn drive_session(
    backend: &dyn ExecutionBackend,
    sim: &Xsim,
    spec: RunSpec,
) -> Result<(Session, Option<RunSummary>), SimError> {
    let (park, budget) = match spec {
        RunSpec::Run(b) => (None, b),
        RunSpec::Parked(p, b) => (Some(p), b),
    };
    let mut session = backend.prepare(vec![sim.clone()], None)?;
    let summary = backend.finish(&mut session, park, budget)?;
    Ok((session, summary))
}

/// Full-state check of one lane of a finished batch against an independent
/// decoded run of the same machine: summary, registers, PCs, CCs, the
/// memory window and port traffic.
fn lane_agrees(lanes: &LaneXsim, lane: usize, solo: &Xsim, summary: &RunSummary) -> bool {
    if lanes.summary(lane) != Some(summary)
        || lanes.pcs(lane) != solo.pcs()
        || lanes.ccs(lane) != solo.ccs()
    {
        return false;
    }
    let num_regs = solo.config().num_regs;
    if (0..num_regs as u16).any(|r| lanes.reg(lane, Reg(r)) != solo.reg(Reg(r))) {
        return false;
    }
    if lanes.mem_peek_slice(lane, 0, MEM_WINDOW).ok() != solo.mem().peek_slice(0, MEM_WINDOW).ok() {
        return false;
    }
    let events = |ports: &[IoPort]| -> Vec<Vec<(u64, i32)>> {
        ports
            .iter()
            .map(|p| {
                p.written()
                    .iter()
                    .map(|e| (e.cycle, e.value.as_i32()))
                    .collect()
            })
            .collect()
    };
    events(lanes.ports(lane)) == events(solo.ports())
}

use ximd::sim::RunSummary;

/// Times one backend: `rounds` rounds of a calibrated batch of runs each,
/// returning the best per-run time and the total run count. Short
/// workloads finish in microseconds, where any single measurement — and
/// the CI regression gate keyed on it — would be scheduler noise; the
/// best-of-rounds over batches long enough to time meaningfully is stable.
fn time_backend(
    backend: &dyn ExecutionBackend,
    sim: &Xsim,
    spec: RunSpec,
    rounds: u32,
    min_round_secs: f64,
) -> (f64, u32) {
    let (park, budget) = match spec {
        RunSpec::Run(b) => (None, b),
        RunSpec::Parked(p, b) => (Some(p), b),
    };
    let round = |k: u32| -> f64 {
        let mut total = 0.0;
        for _ in 0..k {
            let s = sim.clone();
            let t = Instant::now();
            let mut session = backend.prepare(vec![s], None).expect("session prepares");
            let _ = backend.finish(&mut session, park, budget);
            total += t.elapsed().as_secs_f64();
        }
        total
    };
    let mut batch = 1u32;
    while round(batch) < min_round_secs && batch < 65_536 {
        batch *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(round(batch) / f64::from(batch));
    }
    (best, rounds * batch)
}

fn bench_one(
    name: &'static str,
    sim: &Xsim,
    spec: RunSpec,
    rounds: u32,
    min_round_secs: f64,
) -> WorkloadBench {
    // Correctness first: one verified run per capable registry backend
    // against the interpreter oracle, outside the timed loops.
    let request = BackendRequest::single_ideal();
    let interp = backend::lookup("interp").expect("built-in backend");
    let (reference, ref_summary) =
        drive_session(interp.as_ref(), sim, spec).expect("the interpreter runs everything");
    let ref_digest = state_digest(&reference);
    let sim_cycles = ref_summary.as_ref().map_or(0, |s| s.cycles);
    let mut equivalent = ref_summary.is_some();

    let mut iters = rounds;
    let mut backends = Vec::new();
    for b in backend::all() {
        if !b.capabilities().supports(&request) {
            continue;
        }
        if b.name() != "interp" {
            equivalent &= match drive_session(b.as_ref(), sim, spec) {
                Ok((session, summary)) => {
                    summary == ref_summary
                        && state_digest(&session) == ref_digest
                        && matches!(
                            (reference.machine(), session.machine()),
                            (Some(a), Some(s)) if ports_agree(a, s)
                        )
                }
                Err(_) => false,
            };
        }
        let (secs, n) = time_backend(b.as_ref(), sim, spec, rounds, min_round_secs);
        if b.name() == "interp" {
            iters = n;
        }
        backends.push(BackendTime {
            backend: b.name().to_string(),
            secs,
        });
    }
    let secs_of = |name: &str| {
        backends
            .iter()
            .find(|t| t.backend == name)
            .map_or(f64::INFINITY, |t| t.secs)
    };
    WorkloadBench {
        name,
        timing: sim.config().timing.to_string(),
        sim_cycles,
        interp_secs: secs_of("interp"),
        decoded_secs: secs_of("decoded"),
        backends,
        iters,
        equivalent,
        gated: sim_cycles >= MIN_GATED_SIM_CYCLES,
    }
}

/// Builds the fork/join guarded-update workload (the §3.2 generalization
/// the `repro` harness measures) as a prepared simulator.
fn forkjoin_prepared(n: usize) -> (Xsim, RunSpec) {
    use ximd::compiler::forkjoin::{compile_forkjoin, Guard, GuardedLoop};
    use ximd::compiler::ir::{Inst, VReg, Val};

    let guards = 4usize;
    let data = gen::uniform_ints(17, n, 0, 100);
    let ind = VReg(0);
    let trips = VReg(1);
    let v = VReg(2);
    let spec = GuardedLoop {
        prologue: vec![Inst::Load {
            base: Val::Const(99),
            off: ind.into(),
            d: v,
        }],
        guards: (0..guards)
            .map(|i| Guard {
                op: CmpOp::Ge,
                a: v.into(),
                b: Val::Const((i as i32) * 100 / guards as i32),
                body: vec![Inst::Bin {
                    op: AluOp::Iadd,
                    a: VReg(3 + i as u32).into(),
                    b: Val::Const(1),
                    d: VReg(3 + i as u32),
                }],
            })
            .collect(),
        induction: ind,
        start: 1,
        step: 1,
        trips,
    };
    let fj = compile_forkjoin(&spec, guards + 1).expect("fork/join compiles");
    let mut sim = Xsim::new(fj.program.clone(), MachineConfig::with_width(fj.width))
        .expect("program validates");
    sim.mem_mut().poke_slice(100, &data).expect("data fits");
    sim.write_reg(fj.trips_reg, (n as i32).into());
    (sim, RunSpec::Run(1_000_000))
}

/// Sweeps lockstep-safe workloads across timing models: memory latency
/// 1–8 (`latency:mem=L`) and two-way banking (`banked:2`), with the ideal
/// row as reference. Every point re-checks the oracle — timing models must
/// stretch schedules without ever changing results.
///
/// # Panics
///
/// Panics if a workload fails to build or run within its stretched budget
/// (the embedded programs always do).
pub fn run_latency_sweep(quick: bool) -> Vec<SweepPoint> {
    let n = if quick { 16usize } else { 64 };
    let mut specs = vec![TimingSpec::Ideal];
    for lat in [2u64, 3, 4, 6, 8] {
        specs.push(TimingSpec::parse(&format!("latency:mem={lat}")).expect("valid spec"));
    }
    specs.push(TimingSpec::parse("banked:2").expect("valid spec"));

    let minmax_data = gen::uniform_ints(8, n, -10_000, 10_000);
    let minmax_oracle = minmax::oracle(&minmax_data);
    let ll_y = gen::livermore_y(5, n);
    let ll_oracle = livermore::oracle(&ll_y);
    let (sa, sx, sy) = (2.5f32, saxpy::float_vec(1, n), saxpy::float_vec(2, n));
    let saxpy_oracle = saxpy::oracle(sa, &sx, &sy);

    let mut points = Vec::new();
    for spec in &specs {
        let timing = spec.to_string();
        let (out, s) = minmax::run_vliw_timed(&minmax_data, spec).expect("minmax vliw runs");
        points.push(SweepPoint {
            workload: "minmax_vliw",
            timing: timing.clone(),
            cycles: s.cycles,
            stall_cycles: s.stats.stall_cycles,
            contention_stalls: s.stats.contention_stalls,
            correct: (out.min, out.max) == minmax_oracle,
        });
        let (out, s) = livermore::run_vliw_timed(&ll_y, spec).expect("ll12 vliw runs");
        points.push(SweepPoint {
            workload: "livermore12_vliw",
            timing: timing.clone(),
            cycles: s.cycles,
            stall_cycles: s.stats.stall_cycles,
            contention_stalls: s.stats.contention_stalls,
            correct: out.x == ll_oracle,
        });
        let (z, s) = saxpy::run_timed(sa, &sx, &sy, 8, spec).expect("saxpy runs");
        points.push(SweepPoint {
            workload: "saxpy",
            timing,
            cycles: s.cycles,
            stall_cycles: s.stats.stall_cycles,
            contention_stalls: s.stats.contention_stalls,
            correct: z
                .iter()
                .map(|v| v.to_bits())
                .eq(saxpy_oracle.iter().map(|v| v.to_bits())),
        });
    }
    points
}

/// Runs the full benchmark suite.
///
/// # Panics
///
/// Panics if a workload fails to build (the embedded programs always
/// validate).
pub fn run_benchmarks(config: &BenchConfig) -> BenchReport {
    // The differential backend rides along in every workload row: each
    // xbench run exercises the decoded-vs-interp lockstep check under
    // real workloads, not just the unit suites.
    crate::shadow::register();
    let (scale, default_rounds, min_round_secs) = if config.quick {
        (32usize, 5u32, 0.005)
    } else {
        (256, 9, 0.02)
    };
    let rounds = config.iters.unwrap_or(default_rounds);

    let prepared: Vec<(&'static str, Xsim, RunSpec)> = vec![
        {
            let (sim, spec) = tproc::prepared(9, -4, 3, 12).expect("tproc");
            ("tproc", sim, spec)
        },
        {
            let y = gen::livermore_y(5, scale);
            let (sim, spec) = livermore::prepared(&y).expect("livermore");
            ("livermore12", sim, spec)
        },
        {
            let data = gen::uniform_ints(8, scale, -10_000, 10_000);
            let (sim, spec) = minmax::prepared(&data).expect("minmax");
            ("minmax", sim, spec)
        },
        {
            let data = gen::bit_weighted_ints(13, scale, 24);
            let (sim, spec) = bitcount::prepared(&data).expect("bitcount");
            ("bitcount", sim, spec)
        },
        {
            let scenario = nonblocking::Scenario::with_seed(3);
            let (sim, spec) = nonblocking::prepared_sync(&scenario).expect("nonblocking");
            ("nonblocking", sim, spec)
        },
        {
            let (sim, spec) = forkjoin_prepared(scale);
            ("forkjoin", sim, spec)
        },
    ];

    let workloads: Vec<WorkloadBench> = prepared
        .iter()
        .map(|(name, sim, spec)| bench_one(name, sim, *spec, rounds, min_round_secs))
        .collect();

    // Heavy-traffic axis: independent bitcount instances across threads,
    // all on the decoded engine, aggregate simulated cycles/second.
    let batch = {
        let threads = config.batch_threads.max(1);
        let per_thread = if config.quick { 4usize } else { 16 };
        let data = gen::bit_weighted_ints(29, scale, 24);
        let (proto, spec) = bitcount::prepared(&data).expect("bitcount");
        let total = parking_lot::Mutex::new(0u64);
        let t = Instant::now();
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut cycles = 0u64;
                    for _ in 0..per_thread {
                        let mut sim = proto.clone();
                        let summary = spec.drive_decoded(&mut sim).expect("bitcount runs");
                        cycles += summary.cycles;
                    }
                    *total.lock() += cycles;
                });
            }
        })
        .expect("batch threads join");
        BatchBench {
            threads,
            instances_per_thread: per_thread,
            total_cycles: total.into_inner(),
            wall_secs: t.elapsed().as_secs_f64(),
        }
    };

    // The same heavy-traffic axis on the lane engine: one decoded program,
    // N lanes stepped in lockstep on one core.
    let mut batch_lanes = Vec::new();

    // Uniform row — like-for-like with the threaded `batch` row: same
    // prototype, same data, every lane identical, so the run never leaves
    // the vectorized path. Timed region includes batch assembly, matching
    // the threaded row's per-instance clone cost. Identical lanes make
    // per-lane checks redundant; three spot-checked lanes against one
    // independent run pin the whole batch.
    {
        let lanes_n = if config.quick { 256usize } else { 1024 };
        let data = gen::bit_weighted_ints(29, scale, 24);
        let (proto, spec) = bitcount::prepared(&data).expect("bitcount");
        let t = Instant::now();
        let mut lanes = LaneXsim::replicate(&proto, lanes_n).expect("lane batch assembles");
        spec.drive_lanes(&mut lanes).expect("lane batch runs");
        let wall_secs = t.elapsed().as_secs_f64();
        let mut solo = proto.clone();
        let summary = spec.drive_decoded(&mut solo).expect("bitcount runs");
        let equivalent = [0, lanes_n / 2, lanes_n - 1]
            .iter()
            .all(|&l| lane_agrees(&lanes, l, &solo, &summary));
        batch_lanes.push(LaneBatchBench {
            workload: "bitcount",
            mode: "uniform",
            lanes: lanes_n,
            total_cycles: lanes.total_cycles(),
            wall_secs,
            equivalent,
        });
    }

    // Seeded row — per-lane input data, so lanes diverge on data-dependent
    // branches and park at different cycles: the honest number for mixed
    // populations, exercising the scalar fallback and masking paths. Every
    // lane is verified against its own independent decoded run.
    {
        let lanes_n = if config.quick { 64usize } else { 256 };
        let lane_data: Vec<Vec<i32>> = (0..lanes_n)
            .map(|lane| gen::bit_weighted_ints(1000 + lane as u64, scale, 24))
            .collect();
        let prepared: Vec<(Xsim, RunSpec)> = lane_data
            .iter()
            .map(|data| bitcount::prepared(data).expect("bitcount"))
            .collect();
        let t = Instant::now();
        let (mut lanes, spec) = lane_batch(prepared).expect("lane batch assembles");
        spec.drive_lanes(&mut lanes).expect("lane batch runs");
        let wall_secs = t.elapsed().as_secs_f64();
        let equivalent = lane_data.iter().enumerate().all(|(l, data)| {
            let (mut solo, solo_spec) = bitcount::prepared(data).expect("bitcount");
            let summary = solo_spec.drive_decoded(&mut solo).expect("bitcount runs");
            lane_agrees(&lanes, l, &solo, &summary)
        });
        batch_lanes.push(LaneBatchBench {
            workload: "bitcount",
            mode: "seeded",
            lanes: lanes_n,
            total_cycles: lanes.total_cycles(),
            wall_secs,
            equivalent,
        });
    }

    BenchReport {
        quick: config.quick,
        workloads,
        batch,
        batch_lanes,
        sweep: run_latency_sweep(config.quick),
        schedule: schedule_quality(4),
    }
}

/// Renders a report as the `BENCH_ximd.json` document. One line per
/// workload object, so the line-oriented baseline parser stays trivial.
pub fn to_json(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ximd-xbench-v1\",");
    let _ = writeln!(out, "  \"quick\": {},", report.quick);
    let _ = writeln!(out, "  \"workloads\": [");
    let n = report.workloads.len();
    for (i, w) in report.workloads.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let mut rec = JsonWriter::new();
        rec.begin_object();
        rec.field_str("name", w.name);
        rec.field_str("timing", &w.timing);
        rec.field_u64("sim_cycles", w.sim_cycles);
        rec.field_u64("iters", u64::from(w.iters));
        rec.field_f64("interp_wall_secs", w.interp_secs, 6);
        rec.field_f64("decoded_wall_secs", w.decoded_secs, 6);
        // Registry backends beyond the two baseline-gated ones get flat
        // per-line fields so the line-oriented parser stays trivial.
        for t in &w.backends {
            if t.backend != "interp" && t.backend != "decoded" {
                rec.field_f64(&format!("{}_wall_secs", t.backend), t.secs, 6);
            }
        }
        rec.field_f64("interp_cycles_per_sec", w.interp_cps(), 1);
        rec.field_f64("decoded_cycles_per_sec", w.decoded_cps(), 1);
        rec.field_f64("speedup", w.speedup(), 3);
        rec.field_bool("equivalent", w.equivalent);
        rec.field_bool("gated", w.gated);
        rec.end_object();
        let _ = writeln!(out, "    {}{comma}", rec.finish());
    }
    let _ = writeln!(out, "  ],");
    let b = &report.batch;
    let mut rec = JsonWriter::new();
    rec.begin_object();
    rec.field_str("workload", "bitcount");
    rec.field_u64("threads", b.threads as u64);
    rec.field_u64("instances_per_thread", b.instances_per_thread as u64);
    rec.field_u64("total_cycles", b.total_cycles);
    rec.field_f64("wall_secs", b.wall_secs, 6);
    rec.field_f64("cycles_per_sec", b.cycles_per_sec(), 1);
    rec.end_object();
    let _ = writeln!(out, "  \"batch\": {},", rec.finish());
    let _ = writeln!(out, "  \"batch_lanes\": [");
    let n = report.batch_lanes.len();
    for (i, l) in report.batch_lanes.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let mut rec = JsonWriter::new();
        rec.begin_object();
        rec.field_str("workload", l.workload);
        rec.field_str("mode", l.mode);
        rec.field_u64("lanes", l.lanes as u64);
        rec.field_u64("total_cycles", l.total_cycles);
        rec.field_f64("wall_secs", l.wall_secs, 6);
        rec.field_f64("cycles_per_sec", l.cycles_per_sec(), 1);
        rec.field_f64("vs_threads", report.lane_vs_threads(l), 3);
        rec.field_bool("equivalent", l.equivalent);
        rec.end_object();
        let _ = writeln!(out, "    {}{comma}", rec.finish());
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"schedule\": [");
    let n = report.schedule.len();
    for (i, s) in report.schedule.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let mut rec = JsonWriter::new();
        rec.begin_object();
        rec.field_str("workload", s.workload);
        rec.field_u64("width", s.width as u64);
        rec.field_u64("ops", s.ops);
        rec.field_u64("rows", s.rows);
        rec.field_f64("density", s.density(), 3);
        if let Some(ii) = s.ii {
            rec.field_u64("ii", u64::from(ii));
        }
        rec.field_bool("certified", s.certified);
        rec.end_object();
        let _ = writeln!(out, "    {}{comma}", rec.finish());
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sweep\": [");
    let n = report.sweep.len();
    for (i, p) in report.sweep.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let mut rec = JsonWriter::new();
        rec.begin_object();
        rec.field_str("workload", p.workload);
        rec.field_str("timing", &p.timing);
        rec.field_u64("cycles", p.cycles);
        rec.field_u64("stall_cycles", p.stall_cycles);
        rec.field_u64("contention_stalls", p.contention_stalls);
        rec.field_bool("correct", p.correct);
        rec.end_object();
        let _ = writeln!(out, "    {}{comma}", rec.finish());
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Extracts `(name, timing, speedup)` triples from a `BENCH_ximd.json`
/// document (the workspace's serde stub cannot deserialize, so this is a
/// minimal line-oriented parser for the format [`to_json`] emits). Records
/// written before the timing layer existed carry no `"timing"` field; those
/// measured the ideal machine, so the tag defaults to `"ideal"`. Sweep rows
/// key their workload as `"workload"`, not `"name"`, and are skipped here,
/// as are records explicitly marked `"gated": false` (sub-microsecond
/// workloads whose ratio is noise — see [`MIN_GATED_SIM_CYCLES`]).
pub fn baseline_speedups(json: &str) -> Vec<(String, String, f64)> {
    json.lines()
        .filter_map(|line| {
            if line.contains("\"gated\": false") {
                return None;
            }
            let name = str_field(line, "name")?;
            let timing = str_field(line, "timing").unwrap_or("ideal");
            let speedup = num_field(line, "speedup")?;
            Some((name.to_string(), timing.to_string(), speedup))
        })
        .collect()
}

/// Compares a fresh report against a committed baseline document.
///
/// The gate is on the decoded-vs-interpreter **speedup ratio**, not raw
/// cycles/second: both engines run on the same machine in the same process,
/// so the ratio is independent of host speed while raw throughput is not —
/// a CI runner half as fast as the baseline machine would otherwise trip
/// the gate on every run. Comparison is like-for-like: a baseline record
/// only gates a fresh record with the same `(name, timing)` pair, so an
/// ideal-machine baseline never judges a stalling machine (whose ratio it
/// says nothing about) and vice versa, and a record exempt from gating on
/// *either* side (fresh `gated: false`, or a baseline line so marked) is
/// skipped. Returns the workloads whose speedup dropped more than
/// `tolerance` (e.g. `0.2` = 20%) below the baseline's.
pub fn regressions(
    report: &BenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for (name, timing, base) in baseline_speedups(baseline_json) {
        let matched = report
            .workloads
            .iter()
            .find(|w| w.gated && w.name == name && w.timing == timing);
        if let Some(w) = matched {
            if w.speedup() < base * (1.0 - tolerance) {
                out.push((name, base, w.speedup()));
            }
        }
    }
    out
}

/// Compares the fresh lane-engine rows against a committed baseline's
/// `batch_lanes` records, keyed like-for-like on `(workload, mode)`.
///
/// The gated quantity is `vs_threads` — lane aggregate cycles/s over the
/// same report's threaded-batch cycles/s. Both sides of that ratio are
/// measured on the same host in the same process, so it is host-speed
/// independent; it *does* scale inversely with the runner's core count
/// (threads use every core, lanes exactly one), which is why callers pass
/// a generous tolerance rather than a tight one. Only `"uniform"` rows are
/// gated: the seeded row's throughput depends on how the per-lane data
/// happens to diverge and is reported, not gated. Returns
/// `(workload, baseline vs_threads, fresh vs_threads)` for rows that fell
/// more than `tolerance` below the baseline.
pub fn lane_regressions(
    report: &BenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for line in baseline_json.lines() {
        let (Some(workload), Some("uniform"), Some(base)) = (
            str_field(line, "workload"),
            str_field(line, "mode"),
            num_field(line, "vs_threads"),
        ) else {
            continue;
        };
        let matched = report
            .batch_lanes
            .iter()
            .find(|l| l.workload == workload && l.mode == "uniform");
        if let Some(l) = matched {
            let fresh = report.lane_vs_threads(l);
            if fresh < base * (1.0 - tolerance) {
                out.push((workload.to_string(), base, fresh));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_benchmarks_run_and_agree() {
        let report = run_benchmarks(&BenchConfig {
            quick: true,
            iters: Some(1),
            batch_threads: 2,
        });
        assert_eq!(report.workloads.len(), 6);
        assert!(report.all_equivalent(), "engines diverged: {report:#?}");
        assert!(report.workloads.iter().all(|w| w.sim_cycles > 0));
        assert!(report.workloads.iter().all(|w| w.timing == "ideal"));
        // Every row covered the whole registry, including the
        // differential backend registered by this crate.
        for w in &report.workloads {
            let timed: Vec<&str> = w.backends.iter().map(|t| t.backend.as_str()).collect();
            for expected in ["interp", "decoded", "lanes", "shadow"] {
                assert!(timed.contains(&expected), "{}: missing {expected}", w.name);
            }
            assert!(w
                .backends
                .iter()
                .all(|t| t.secs.is_finite() && t.secs > 0.0));
        }
        assert!(report.batch.total_cycles > 0);
        // tproc's 6-cycle run is exempt from the ratio gate; the real
        // kernels are gated.
        assert!(!report.workload("tproc").unwrap().gated);
        assert!(report.workload("bitcount").unwrap().gated);
        // Both lane rows ran and verified against independent runs.
        assert_eq!(report.batch_lanes.len(), 2);
        assert_eq!(report.batch_lanes[0].mode, "uniform");
        assert_eq!(report.batch_lanes[1].mode, "seeded");
        assert!(report.batch_lanes.iter().all(|l| l.total_cycles > 0));
        // Every compiled suite workload reports schedule quality and its
        // emitted schedule passes the certifier.
        assert_eq!(report.schedule.len(), 5);
        for s in &report.schedule {
            assert!(s.certified, "{} must certify clean", s.workload);
            assert!(s.ops > 0 && s.rows > 0);
            assert!(s.density() > 0.0 && s.density() <= 1.0, "{}", s.workload);
        }
        // The pipelined kernels report their achieved II.
        let ii_of = |name: &str| {
            report
                .schedule
                .iter()
                .find(|s| s.workload == name)
                .and_then(|s| s.ii)
        };
        assert!(ii_of("saxpy").is_some() && ii_of("livermore").is_some());
        assert!(ii_of("minmax").is_none());
    }

    #[test]
    fn sweep_stretches_cycles_but_never_results() {
        let sweep = run_latency_sweep(true);
        // 3 workloads x (ideal + 5 latencies + banked:2).
        assert_eq!(sweep.len(), 3 * 7);
        assert!(
            sweep.iter().all(|p| p.correct),
            "timing changed results: {sweep:#?}"
        );
        let cycles = |workload: &str, timing: &str| {
            sweep
                .iter()
                .find(|p| p.workload == workload && p.timing == timing)
                .map(|p| p.cycles)
                .expect("sweep point present")
        };
        for w in ["minmax_vliw", "livermore12_vliw", "saxpy"] {
            let ideal = cycles(w, "ideal");
            // Memory latency stretches monotonically.
            let mut prev = ideal;
            for t in ["latency:mem=2", "latency:mem=4", "latency:mem=8"] {
                let c = cycles(w, t);
                assert!(c > prev, "{w} under {t}: {c} <= {prev}");
                prev = c;
            }
        }
        // The memory-heavy kernel hits bank conflicts.
        let banked = sweep
            .iter()
            .find(|p| p.workload == "saxpy" && p.timing == "banked:2")
            .expect("banked saxpy point");
        assert!(banked.contention_stalls > 0);
        assert!(banked.cycles > cycles("saxpy", "ideal"));
    }

    #[test]
    fn json_roundtrips_through_baseline_parser() {
        let report = BenchReport {
            quick: true,
            workloads: vec![WorkloadBench {
                name: "bitcount",
                timing: "ideal".into(),
                sim_cycles: 1000,
                interp_secs: 0.02,
                decoded_secs: 0.005,
                backends: Vec::new(),
                iters: 3,
                equivalent: true,
                gated: true,
            }],
            batch: BatchBench {
                threads: 2,
                instances_per_thread: 4,
                total_cycles: 8000,
                wall_secs: 0.01,
            },
            batch_lanes: vec![LaneBatchBench {
                workload: "bitcount",
                mode: "uniform",
                lanes: 256,
                total_cycles: 256_000,
                wall_secs: 0.08,
                equivalent: true,
            }],
            sweep: vec![SweepPoint {
                workload: "saxpy",
                timing: "banked:2".into(),
                cycles: 500,
                stall_cycles: 120,
                contention_stalls: 120,
                correct: true,
            }],
            schedule: Vec::new(),
        };
        let json = to_json(&report);
        let speedups = baseline_speedups(&json);
        // Sweep rows key on "workload", not "name" — invisible to the gate.
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "bitcount");
        assert_eq!(speedups[0].1, "ideal");
        assert!((speedups[0].2 - 4.0).abs() < 0.01);
        // A baseline with a much higher speedup trips the gate...
        let inflated = json.replace("\"speedup\": 4.000", "\"speedup\": 9.000");
        assert_eq!(regressions(&report, &inflated, 0.2).len(), 1);
        // ...while the report's own numbers pass it.
        assert!(regressions(&report, &json, 0.2).is_empty());
        // Lane rows round-trip too: vs_threads = (256000/0.08)/(8000/0.01).
        assert!(lane_regressions(&report, &json, 0.2).is_empty());
        let lane_inflated = json.replace("\"vs_threads\": 4.000", "\"vs_threads\": 9.000");
        let regs = lane_regressions(&report, &lane_inflated, 0.2);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].0, "bitcount");
        assert!((regs[0].2 - 4.0).abs() < 0.01);
    }

    #[test]
    fn ungated_workloads_are_exempt_from_the_ratio_gate() {
        let report = BenchReport {
            quick: true,
            // A sub-threshold workload whose measured ratio collapsed.
            workloads: vec![WorkloadBench {
                name: "tproc",
                timing: "ideal".into(),
                sim_cycles: 6,
                interp_secs: 0.001,
                decoded_secs: 0.002,
                backends: Vec::new(),
                iters: 3,
                equivalent: true,
                gated: false,
            }],
            batch: BatchBench {
                threads: 1,
                instances_per_thread: 1,
                total_cycles: 1,
                wall_secs: 0.01,
            },
            batch_lanes: Vec::new(),
            sweep: Vec::new(),
            schedule: Vec::new(),
        };
        // Exempt on the fresh side: even an inflated baseline can't trip it.
        let baseline = "{\"name\": \"tproc\", \"timing\": \"ideal\", \"speedup\": 9.000}\n";
        assert!(regressions(&report, baseline, 0.2).is_empty());
        // Exempt on the baseline side: a gated:false line never gates.
        let json = to_json(&report);
        assert!(json.contains("\"gated\": false"));
        assert!(baseline_speedups(&json).is_empty());
    }

    #[test]
    fn baseline_gate_is_like_for_like() {
        let mk = |timing: &str, decoded_secs: f64| WorkloadBench {
            name: "bitcount",
            timing: timing.into(),
            sim_cycles: 1000,
            interp_secs: 0.02,
            decoded_secs,
            backends: Vec::new(),
            iters: 3,
            equivalent: true,
            gated: true,
        };
        let report = BenchReport {
            quick: true,
            // Non-ideal record with a much weaker speedup (2x vs 4x).
            workloads: vec![mk("ideal", 0.005), mk("latency:mem=4", 0.01)],
            batch: BatchBench {
                threads: 1,
                instances_per_thread: 1,
                total_cycles: 1,
                wall_secs: 0.01,
            },
            batch_lanes: Vec::new(),
            sweep: Vec::new(),
            schedule: Vec::new(),
        };
        // An ideal 4x baseline must not judge the latency:mem=4 record.
        let baseline = "{\"name\": \"bitcount\", \"timing\": \"ideal\", \"speedup\": 4.000}\n";
        assert!(regressions(&report, baseline, 0.2).is_empty());
        // A pre-timing baseline (no "timing" field) means the ideal machine.
        let legacy = "{\"name\": \"bitcount\", \"speedup\": 9.000}\n";
        let regs = regressions(&report, legacy, 0.2);
        assert_eq!(regs.len(), 1, "legacy baseline gates the ideal record");
        // And a like-for-like non-ideal baseline gates its own kind.
        let timed = "{\"name\": \"bitcount\", \"timing\": \"latency:mem=4\", \"speedup\": 9.000}\n";
        assert_eq!(regressions(&report, timed, 0.2).len(), 1);
    }
}
