//! Experiment harness: one function per table/figure of the paper.
//!
//! Each `run_*` function regenerates one published artifact and returns a
//! plain-text report (plus a machine-checkable success flag where the paper
//! printed concrete values). The `repro` binary prints them; the criterion
//! benches and `EXPERIMENTS.md` are built from the same functions.
//!
//! | function | paper artifact |
//! |----------|----------------|
//! | [`run_ex1_tproc`]        | Example 1 — TPROC schedule |
//! | [`run_ll12`]             | §3.1 — Livermore Loop 12 software pipeline |
//! | [`run_ex2_minmax`]       | Example 2 — MINMAX listing |
//! | [`run_fig10_trace`]      | Figure 10 — MINMAX address trace |
//! | [`run_ex3_bitcount`]     | Example 3 — BITCOUNT1 listing |
//! | [`run_fig11_flow`]       | Figure 11 — BITCOUNT1 stream profile |
//! | [`run_fig12_nonblocking`]| Figure 12 — sync bits vs memory flags |
//! | [`run_fig13_tiles`]      | Figure 13 — tiles and packing |
//! | [`run_perf_table`]       | §4.1 — xsim vs vsim comparison |
//! | [`run_prototype`]        | §4.3 — prototype peak-rate model |
//! | [`run_models`]           | §2 — state-machine hierarchy |

pub mod shadow;
pub mod throughput;

use std::fmt::Write as _;

use ximd::asm::listing::{listing, ListingOptions};
use ximd::compiler::pack::{pack_skyline, pack_stacked};
use ximd::compiler::tile::menus;
use ximd::models::MachineClass;
use ximd::workloads::{bitcount, gen, livermore, minmax, nonblocking, tproc};

/// A regenerated experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `"FIG10"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The regenerated content.
    pub body: String,
    /// Whether every checked property held.
    pub ok: bool,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "==== {} — {} [{}] ====",
            self.id,
            self.title,
            if self.ok { "ok" } else { "MISMATCH" }
        )?;
        f.write_str(&self.body)
    }
}

/// Example 1: the TPROC percolation-scheduled listing, its cycle count and
/// correctness, and VLIW equivalence.
pub fn run_ex1_tproc() -> Report {
    let mut body = String::new();
    let asm = tproc::ximd_assembly();
    let _ = writeln!(body, "{}", listing(&asm.program, ListingOptions::default()));
    let mut ok = true;
    for (a, b, c, d) in [(1, 2, 3, 4), (-7, 11, 5, 2)] {
        let x = tproc::run_ximd(a, b, c, d).expect("tproc runs");
        let v = tproc::run_vliw(a, b, c, d).expect("tproc runs");
        let oracle = tproc::oracle(a, b, c, d);
        ok &= x.result == oracle && v == x;
        let _ = writeln!(
            body,
            "tproc({a},{b},{c},{d}) = {} (oracle {oracle}), {} cycles, identical on vsim: {}",
            x.result,
            x.cycles,
            v == x
        );
    }
    let _ = writeln!(
        body,
        "\n5 scheduled instructions + halt word; VLIW code runs unchanged on XIMD (section 3.1)"
    );
    Report {
        id: "EX1",
        title: "TPROC scalar schedule (Example 1)",
        body,
        ok,
    }
}

/// §3.1: Livermore Loop 12 — software-pipelined, identical on both
/// machines, II = 2 steady state.
pub fn run_ll12() -> Report {
    let mut body = String::new();
    let mut ok = true;
    let _ = writeln!(
        body,
        "{:>6} {:>12} {:>12} {:>10} {:>8}",
        "n", "xsim cycles", "vsim cycles", "identical", "cyc/iter"
    );
    let mut prev: Option<(usize, u64)> = None;
    for n in [4usize, 16, 64, 256] {
        let y = gen::livermore_y(n as u64, n);
        let x = livermore::run_ximd(&y).expect("ll12 runs");
        let v = livermore::run_vliw(&y).expect("ll12 runs");
        let oracle = livermore::oracle(&y);
        ok &= x.x == oracle && v.x == oracle && x.cycles == v.cycles;
        let per_iter = match prev {
            Some((pn, pc)) => format!("{:.2}", (x.cycles - pc) as f64 / (n - pn) as f64),
            None => "-".into(),
        };
        let _ = writeln!(
            body,
            "{n:>6} {:>12} {:>12} {:>10} {:>8}",
            x.cycles,
            v.cycles,
            x.cycles == v.cycles,
            per_iter
        );
        prev = Some((n, x.cycles));
    }
    let _ = writeln!(
        body,
        "\nmarginal cost/iteration = 2 cycles = the modulo schedule's initiation interval;\n\
         vectorizable code runs 'just as efficiently on the XIMD as on a VLIW machine' (section 3.1)"
    );
    Report {
        id: "LL12",
        title: "Livermore Loop 12 software pipelining",
        body,
        ok,
    }
}

/// Example 2: the MINMAX listing in the paper's boxed format.
pub fn run_ex2_minmax() -> Report {
    let asm = minmax::ximd_assembly();
    let body = listing(&asm.program, ListingOptions::default());
    Report {
        id: "EX2",
        title: "MINMAX implicit barrier synchronization (Example 2)",
        body,
        ok: true,
    }
}

/// Figure 10: the MINMAX address trace on `IZ() = (5,3,4,7)`, checked
/// cell-for-cell against the published table.
pub fn run_fig10_trace() -> Report {
    let (outcome, trace) = minmax::run_ximd_traced(&[5, 3, 4, 7]).expect("minmax runs");
    let mut body = trace.to_table();
    let diff = minmax::diff_figure10(&trace);
    let ok = diff.is_none() && outcome.min == 3 && outcome.max == 7 && outcome.cycles == 14;
    match diff {
        None => {
            let _ = writeln!(
                body,
                "\nmin = {}, max = {}, {} cycles — matches the published Figure 10 exactly",
                outcome.min, outcome.max, outcome.cycles
            );
        }
        Some((cycle, expected, actual)) => {
            let _ = writeln!(
                body,
                "\nMISMATCH at cycle {cycle}: expected {expected}, got {actual}"
            );
        }
    }
    Report {
        id: "FIG10",
        title: "MINMAX address trace (Figure 10)",
        body,
        ok,
    }
}

/// Example 3: the BITCOUNT1 listing, with the sync-signal row the paper
/// adds for this example.
pub fn run_ex3_bitcount() -> Report {
    let asm = bitcount::ximd_assembly();
    let body = listing(
        &asm.program,
        ListingOptions {
            show_sync: true,
            ..Default::default()
        },
    );
    Report {
        id: "EX3",
        title: "BITCOUNT1 explicit barrier synchronization (Example 3)",
        body,
        ok: true,
    }
}

/// Figure 11: the stream (SSET) profile of a BITCOUNT1 run — fork to four
/// streams, barrier re-joins.
pub fn run_fig11_flow() -> Report {
    let data = gen::bit_weighted_ints(7, 16, 20);
    let (outcome, trace) = bitcount::run_ximd_traced(&data).expect("bitcount runs");
    let profile = bitcount::stream_profile(&trace);
    let ok = outcome.b == bitcount::oracle(&data) && profile.iter().max() == Some(&4);
    let mut body = String::new();
    let _ = writeln!(body, "input: {data:?}");
    let line: String = profile
        .iter()
        .map(|&s| char::from_digit(s as u32, 10).unwrap_or('?'))
        .collect();
    let _ = writeln!(body, "concurrent streams per cycle:\n{line}");
    let joins = profile.windows(2).filter(|w| w[0] > 1 && w[1] == 1).count();
    let _ = writeln!(
        body,
        "\nmax streams: {}   barrier re-joins: {joins}   total cycles: {}",
        profile.iter().max().unwrap(),
        outcome.cycles
    );
    let _ = writeln!(
        body,
        "the program forks at the first data-dependent inner-loop branch and re-joins at the\n\
         ALL-SS barrier (state 10:), as diagrammed in Figure 11"
    );
    Report {
        id: "FIG11",
        title: "BITCOUNT1 control flow (Figure 11)",
        body,
        ok,
    }
}

/// Figure 12: non-blocking synchronizations — sync bits vs memory flags
/// over many seeds.
pub fn run_fig12_nonblocking() -> Report {
    let mut body = String::new();
    let mut ok = true;
    let _ = writeln!(
        body,
        "{:>6} {:>12} {:>12} {:>9}",
        "seed", "sync cycles", "flag cycles", "saving"
    );
    let (mut tot_s, mut tot_f) = (0u64, 0u64);
    for seed in 0..16 {
        let s = nonblocking::Scenario::with_seed(seed);
        let sync = nonblocking::run_sync(&s).expect("sync version runs");
        let flags = nonblocking::run_flags(&s).expect("flags version runs");
        ok &= sync.p1_wrote == s.xyz.to_vec()
            && sync.p2_wrote == s.abc.to_vec()
            && flags.p1_wrote == s.xyz.to_vec()
            && flags.p2_wrote == s.abc.to_vec()
            && sync.cycles <= flags.cycles;
        let _ = writeln!(
            body,
            "{seed:>6} {:>12} {:>12} {:>8.1}%",
            sync.cycles,
            flags.cycles,
            100.0 * (1.0 - sync.cycles as f64 / flags.cycles as f64)
        );
        tot_s += sync.cycles;
        tot_f += flags.cycles;
    }
    let _ = writeln!(
        body,
        "\nmean saving {:.1}% — 'using the XIMD synchronization bits rather than register or\n\
         memory based flags … will result in increased performance' (section 3.4)",
        100.0 * (1.0 - tot_s as f64 / tot_f as f64)
    );
    Report {
        id: "FIG12",
        title: "Non-blocking synchronizations (Figure 12)",
        body,
        ok,
    }
}

const FIG13_THREADS: &str = r"
fn scan(n) {
    let best = 0;
    let i = 0;
    while (i < n) {
        if (mem[100 + i] > best) { best = mem[100 + i]; }
        i = i + 1;
    }
    return best;
}
fn blend(a, b, c, d) {
    let e = a + b; let f = c + d;
    let g = a - b; let h = c - d;
    return (e * f) + (g * h);
}
fn powsum(n) {
    let p = 1;
    let s = 0;
    let i = 0;
    while (i < n) { s = s + p; p = p * 2; i = i + 1; }
    return s;
}
fn clampdiff(a, b) {
    let d = a - b;
    if (d < 0) { d = 0 - d; }
    if (d > 100) { d = 100; }
    return d;
}
fn copyrange(n) {
    let i = 0;
    while (i < n) { mem[400 + i] = mem[300 + i]; i = i + 1; }
    return 0;
}
fn poly(x) {
    return ((x * x) * x) + 3 * (x * x) - 7 * x + 42;
}
";

/// Figure 13: six threads compiled at widths 1/2/4/8 into tiles, then two
/// alternative packings of instruction memory.
pub fn run_fig13_tiles() -> Report {
    let menus = menus(FIG13_THREADS, &[1, 2, 4, 8]).expect("threads compile");
    let mut body = String::new();
    let _ = writeln!(
        body,
        "tile menus (height in wide instructions at each width):"
    );
    for m in &menus {
        let _ = write!(body, "  {:<10}", m.name);
        for t in &m.options {
            let _ = write!(body, " w{}:{:>3}", t.width, t.height);
        }
        let _ = writeln!(body);
    }
    let stacked = pack_stacked(&menus, 8);
    let deps = [(0usize, 2usize), (1, 3)];
    let skyline = pack_skyline(&menus, 8, &deps);
    let ok = stacked.is_valid()
        && skyline.is_valid()
        && skyline.respects(&deps)
        && skyline.total_height() <= stacked.total_height()
        && skyline.op_density() > stacked.op_density();
    let _ = writeln!(
        body,
        "\nsolution 1 (stacked, widest tiles):   {:>4} words  op density {:.2}",
        stacked.total_height(),
        stacked.op_density()
    );
    let _ = writeln!(
        body,
        "solution 2 (skyline, min-area tiles): {:>4} words  op density {:.2}  (2 data deps honoured)",
        skyline.total_height(),
        skyline.op_density()
    );
    let _ = writeln!(
        body,
        "static code size reduction: {:.1}%",
        100.0 * (1.0 - skyline.total_height() as f64 / stacked.total_height() as f64)
    );
    Report {
        id: "FIG13",
        title: "Tile generation and packing (Figure 13)",
        body,
        ok,
    }
}

/// One row of the §4.1 performance table.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload name.
    pub name: &'static str,
    /// Cycles on xsim.
    pub ximd_cycles: u64,
    /// Cycles on vsim.
    pub vliw_cycles: u64,
    /// Maximum concurrent streams the XIMD run used.
    pub max_streams: usize,
    /// Results matched the oracle on both machines.
    pub correct: bool,
}

impl PerfRow {
    /// VLIW cycles / XIMD cycles.
    pub fn speedup(&self) -> f64 {
        self.vliw_cycles as f64 / self.ximd_cycles as f64
    }
}

/// Computes the §4.1 xsim-vs-vsim table (rows computed concurrently with
/// crossbeam — the sweep is embarrassingly parallel).
pub fn perf_rows() -> Vec<PerfRow> {
    let results = parking_lot::Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        scope.spawn(|_| {
            let x = tproc::run_ximd(9, -4, 3, 12).expect("tproc");
            let v = tproc::run_vliw(9, -4, 3, 12).expect("tproc");
            results.lock().push((
                0usize,
                PerfRow {
                    name: "tproc",
                    ximd_cycles: x.cycles,
                    vliw_cycles: v.cycles,
                    max_streams: 1,
                    correct: x.result == tproc::oracle(9, -4, 3, 12) && v.result == x.result,
                },
            ));
        });
        scope.spawn(|_| {
            let y = gen::livermore_y(5, 128);
            let x = livermore::run_ximd(&y).expect("ll12");
            let v = livermore::run_vliw(&y).expect("ll12");
            results.lock().push((
                1,
                PerfRow {
                    name: "livermore12",
                    ximd_cycles: x.cycles,
                    vliw_cycles: v.cycles,
                    max_streams: 1,
                    correct: x.x == livermore::oracle(&y) && v.x == x.x,
                },
            ));
        });
        scope.spawn(|_| {
            let data = gen::uniform_ints(8, 256, -10_000, 10_000);
            let (_, trace) = minmax::run_ximd_traced(&data).expect("minmax");
            let x = minmax::run_ximd(&data).expect("minmax");
            let v = minmax::run_vliw(&data).expect("minmax");
            results.lock().push((
                2,
                PerfRow {
                    name: "minmax",
                    ximd_cycles: x.cycles,
                    vliw_cycles: v.cycles,
                    max_streams: trace.max_streams(),
                    correct: (x.min, x.max) == minmax::oracle(&data)
                        && (v.min, v.max) == (x.min, x.max),
                },
            ));
        });
        scope.spawn(|_| {
            let data = gen::bit_weighted_ints(13, 128, 24);
            let (_, trace) = bitcount::run_ximd_traced(&data).expect("bitcount");
            let x = bitcount::run_ximd(&data).expect("bitcount");
            let v = bitcount::run_vliw(&data).expect("bitcount");
            results.lock().push((
                3,
                PerfRow {
                    name: "bitcount",
                    ximd_cycles: x.cycles,
                    vliw_cycles: v.cycles,
                    max_streams: trace.max_streams(),
                    correct: x.b == bitcount::oracle(&data) && v.b == x.b,
                },
            ));
        });
        scope.spawn(|_| {
            let s = nonblocking::Scenario::with_seed(3);
            let x = nonblocking::run_sync(&s).expect("nonblocking");
            let v = nonblocking::run_flags(&s).expect("nonblocking");
            results.lock().push((
                4,
                PerfRow {
                    name: "nonblocking",
                    ximd_cycles: x.cycles,
                    vliw_cycles: v.cycles, // the flag version is the baseline here
                    max_streams: 8,
                    correct: x.p1_wrote == s.xyz.to_vec() && x.p2_wrote == s.abc.to_vec(),
                },
            ));
        });
    })
    .expect("perf sweep threads join");
    let mut rows = results.into_inner();
    rows.sort_by_key(|&(i, _)| i);
    rows.into_iter().map(|(_, r)| r).collect()
}

/// §4.1: "Preliminary results show a significant performance increase on
/// many programs" — the xsim-vs-vsim table.
pub fn run_perf_table() -> Report {
    let rows = perf_rows();
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "workload", "xsim cycles", "vsim cycles", "speedup", "streams", "correct"
    );
    let mut ok = true;
    for r in &rows {
        ok &= r.correct;
        let _ = writeln!(
            body,
            "{:<14} {:>12} {:>12} {:>8.2}x {:>9} {:>9}",
            r.name,
            r.ximd_cycles,
            r.vliw_cycles,
            r.speedup(),
            r.max_streams,
            r.correct
        );
    }
    // The paper's qualitative claims: synchronous code ties, branchy code
    // wins.
    let tie = |n: &str| {
        rows.iter()
            .find(|r| r.name == n)
            .map(|r| r.speedup())
            .unwrap_or(0.0)
    };
    ok &= (tie("tproc") - 1.0).abs() < 1e-9;
    ok &= (tie("livermore12") - 1.0).abs() < 1e-9;
    ok &= tie("minmax") > 1.2;
    ok &= tie("bitcount") > 1.5;
    ok &= tie("nonblocking") > 1.0;
    let _ = writeln!(
        body,
        "\nshape check: synchronous workloads (tproc, livermore12) tie at 1.00x;\n\
         control-parallel workloads win (minmax > 1.2x, bitcount > 1.5x, nonblocking > 1x)"
    );
    Report {
        id: "PERF",
        title: "xsim vs vsim performance (section 4.1)",
        body,
        ok,
    }
}

/// §4.3: the prototype's peak-rate arithmetic — 85 ns cycle, 8 FUs, one
/// data operation per FU per cycle ⇒ > 90 MIPS / 90 MFLOPS peak.
pub fn run_prototype() -> Report {
    let cycle_ns = 85.0f64;
    let fus = 8.0f64;
    let mips = fus / (cycle_ns * 1e-9) / 1e6;
    let peak_ok = mips > 90.0;

    // Sustained rates from the simulator's statistics, for contrast with
    // the peak figure (the structural ceiling is one op per FU per cycle).
    let data = gen::uniform_ints(1, 64, -100, 100);
    let minmax_rate = {
        let mut sim = ximd::prelude::Xsim::new(
            minmax::ximd_assembly().program,
            ximd::prelude::MachineConfig::with_width(4),
        )
        .expect("minmax program validates");
        sim.mem_mut()
            .poke_slice(minmax::Z_BASE as i64, &data)
            .expect("data fits memory");
        sim.write_reg(minmax::REG_N, (data.len() as i32).into());
        sim.write_reg(minmax::REG_MIN, i32::MAX.into());
        sim.write_reg(minmax::REG_MAX, i32::MIN.into());
        sim.run_until_parked(minmax::PARK, 10_000)
            .expect("minmax runs")
            .stats
            .ops_per_cycle()
    };
    let y = gen::livermore_y(2, 64);
    let l = livermore::run_ximd(&y).expect("ll12 runs");

    let mut body = String::new();
    let _ = writeln!(
        body,
        "cycle time:            {cycle_ns} ns (paper's initial analysis)"
    );
    let _ = writeln!(
        body,
        "functional units:      8 (one data op each per cycle)"
    );
    let _ = writeln!(
        body,
        "peak rate:             {mips:.1} MIPS / {mips:.1} MFLOPS  (paper: 'in excess of 90')"
    );
    let _ = writeln!(body, "\nsimulated sustained rates for contrast:");
    let _ = writeln!(
        body,
        "  minmax n=64      : {minmax_rate:.2} ops/cycle on a width-4 machine"
    );
    let _ = writeln!(
        body,
        "  livermore12 n=64 : {:.2} cycles/iteration steady state (II = 2)",
        (l.cycles as f64 - 8.0) / 64.0
    );
    Report {
        id: "PROTO",
        title: "Prototype peak performance (section 4.3)",
        body,
        ok: peak_ok,
    }
}

/// §2: the architecture-class hierarchy with shapes and emulation matrix.
pub fn run_models() -> Report {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<6} {:>8} {:>8} {:>8} {:>16} {:>16}",
        "class", "lambdas", "deltas", "states", "sees all CCs", "sees other PCs"
    );
    for m in MachineClass::ALL {
        let s = m.shape(8);
        let _ = writeln!(
            body,
            "{:<6} {:>8} {:>8} {:>8} {:>16} {:>16}",
            m.to_string(),
            s.lambdas,
            s.deltas,
            s.states,
            s.delta_sees_all_datapaths,
            s.delta_sees_other_controls
        );
    }
    let _ = writeln!(body, "\nemulation matrix (row emulates column):");
    let _ = write!(body, "{:<6}", "");
    for c in MachineClass::ALL {
        let _ = write!(body, "{c:>6}");
    }
    let _ = writeln!(body);
    let mut ok = true;
    for r in MachineClass::ALL {
        let _ = write!(body, "{:<6}", r.to_string());
        for c in MachineClass::ALL {
            let _ = write!(body, "{:>6}", if r.emulates(c) { "yes" } else { "-" });
        }
        let _ = writeln!(body);
    }
    ok &= MachineClass::Ximd.emulates(MachineClass::Vliw)
        && MachineClass::Ximd.emulates(MachineClass::Mimd)
        && MachineClass::Vliw.emulates(MachineClass::Simd);
    let _ = writeln!(
        body,
        "\nthe executable versions of these claims (random-program equivalence) run in\n\
         `cargo test -p ximd-models` (tests/emulation_theorems.rs)"
    );
    Report {
        id: "MODELS",
        title: "Architectural state-machine hierarchy (section 2)",
        body,
        ok,
    }
}

/// Extension: coarse-grain parallelism via multi-thread XIMD codegen —
/// "XIMD can potentially exploit medium-grained and coarse-grained
/// parallelism as well" (§1.4). Two independently compiled threads run
/// concurrently on disjoint FU columns with an ALL-SS join, against the
/// same threads run back-to-back on vsim.
pub fn run_coarse() -> Report {
    use ximd::compiler::compile_named;
    use ximd::compiler::ximdgen::{combine_threads, Join};
    use ximd::prelude::*;

    const SRC: &str = r"
fn sum(n) {
    let s = 0;
    let i = 1;
    while (i <= n) { s = s + i; i = i + 1; }
    return s;
}
fn fib(n) {
    let a = 0;
    let b = 1;
    let i = 0;
    while (i < n) { let t = a + b; a = b; b = t; i = i + 1; }
    return a;
}
";
    let sum = compile_named(SRC, "sum", 2).expect("sum compiles");
    let fib = compile_named(SRC, "fib", 2).expect("fib compiles");
    let combined = combine_threads(&[&sum, &fib], 4, Join::Barrier).expect("threads fit");

    let mut sim = Xsim::new(combined.program.clone(), MachineConfig::with_width(4))
        .expect("combined program validates");
    sim.write_reg(combined.threads[0].param_regs[0], 40i32.into());
    sim.write_reg(combined.threads[1].param_regs[0], 30i32.into());
    let summary = sim.run(1_000_000).expect("combined run");
    let sum_result = sim
        .reg(combined.threads[0].ret_reg.expect("sum returns"))
        .as_i32();
    let fib_result = sim
        .reg(combined.threads[1].ret_reg.expect("fib returns"))
        .as_i32();

    let solo = |f: &ximd::compiler::CompiledFunction, arg: i32| {
        let mut s = Vsim::new(f.vliw.clone(), MachineConfig::with_width(f.width))
            .expect("thread validates");
        s.write_reg(f.param_regs[0], arg.into());
        s.run(1_000_000).expect("solo run").cycles
    };
    let (c_sum, c_fib) = (solo(&sum, 40), solo(&fib, 30));
    let sequential = c_sum + c_fib;

    let fib30 = {
        let (mut a, mut b) = (0i64, 1i64);
        for _ in 0..30 {
            let t = a + b;
            a = b;
            b = t;
        }
        a as i32
    };
    let ok = sum_result == 820
        && fib_result == fib30
        && summary.cycles < sequential
        && summary.cycles <= c_sum.max(c_fib) + 4;

    let mut body = String::new();
    let _ = writeln!(
        body,
        "threads: sum(40) and fib(30), each compiled for 2 FUs"
    );
    let _ = writeln!(
        body,
        "results: sum = {sum_result} (expect 820), fib = {fib_result} (expect {fib30})"
    );
    let _ = writeln!(
        body,
        "sequential on vsim: {c_sum} + {c_fib} = {sequential} cycles"
    );
    let _ = writeln!(
        body,
        "concurrent on 4-FU xsim: {} cycles (dispatch + ALL-SS join overhead <= 4)",
        summary.cycles
    );
    let _ = writeln!(
        body,
        "coarse-grain speedup: {:.2}x",
        sequential as f64 / summary.cycles as f64
    );
    Report {
        id: "COARSE",
        title: "Coarse-grain thread parallelism (section 1.4 claim)",
        body,
        ok,
    }
}

/// Extension: the modulo scheduler across Livermore kernels and machine
/// widths — resource-bound vs recurrence-bound vs memory-carried II.
pub fn run_ll_kernels() -> Report {
    use ximd::workloads::livermore_ext as ext;
    let mut body = String::new();
    let mut ok = true;
    let _ = writeln!(
        body,
        "{:<22} {:>6} {:>4} {:>7} {:>9}",
        "kernel", "width", "II", "stages", "cycles"
    );
    let n = 48;
    for width in [4usize, 8] {
        match ext::run_loop1(width, n, 1) {
            Ok(r) => {
                let _ = writeln!(
                    body,
                    "{:<22} {width:>6} {:>4} {:>7} {:>9}",
                    "loop1 (hydro)", r.ii, r.stages, r.cycles
                );
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(body, "loop1 width {width}: {e}");
            }
        }
    }
    for width in [4usize, 8] {
        match ext::run_loop3(width, n, 2) {
            Ok(r) => {
                let _ = writeln!(
                    body,
                    "{:<22} {width:>6} {:>4} {:>7} {:>9}",
                    "loop3 (inner product)", r.ii, r.stages, r.cycles
                );
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(body, "loop3 width {width}: {e}");
            }
        }
    }
    let mut loop5_ii = Vec::new();
    for width in [4usize, 8] {
        match ext::run_loop5(width, n, 3) {
            Ok(r) => {
                loop5_ii.push(r.ii);
                let _ = writeln!(
                    body,
                    "{:<22} {width:>6} {:>4} {:>7} {:>9}",
                    "loop5 (tridiagonal)", r.ii, r.stages, r.cycles
                );
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(body, "loop5 width {width}: {e}");
            }
        }
    }
    ok &= loop5_ii.len() == 2 && loop5_ii[0] == loop5_ii[1];
    let _ = writeln!(
        body,
        "\nshape check: loop1's II shrinks with width (resource-bound); loop5's II is\n\
         width-invariant (the x[i-1] -> x[i] memory recurrence bounds it) — the run-time\n\
         disambiguation ablation from DESIGN.md"
    );
    Report {
        id: "LLK",
        title: "Modulo scheduling across kernels (software pipelining ablation)",
        body,
        ok,
    }
}

/// Extension: the §3.2 fork/join codegen ablation — a classification loop
/// with G independent guarded updates, compiled to multi-stream XIMD (one
/// FU per guard, equal-length paths) vs the serialized single-sequencer
/// schedule of the same loop. The gap widens with the number of guards —
/// the paper's "control operations may begin to dominate execution time"
/// argument, quantified.
pub fn run_forkjoin() -> Report {
    use ximd::compiler::forkjoin::{compile_forkjoin, compile_forkjoin_vliw, Guard, GuardedLoop};
    use ximd::compiler::ir::{Inst, VReg, Val};
    use ximd::isa::AluOp;
    use ximd::prelude::*;

    let mut body = String::new();
    let mut ok = true;
    let _ = writeln!(
        body,
        "{:>7} {:>12} {:>12} {:>9}",
        "guards", "xsim cycles", "vsim cycles", "speedup"
    );

    let n = 64usize;
    let data = gen::uniform_ints(17, n, 0, 100);
    for guards in [2usize, 4, 7] {
        let ind = VReg(0);
        let trips = VReg(1);
        let v = VReg(2);
        let spec = GuardedLoop {
            prologue: vec![Inst::Load {
                base: Val::Const(99),
                off: ind.into(),
                d: v,
            }],
            guards: (0..guards)
                .map(|i| {
                    let counter = VReg(3 + i as u32);
                    Guard {
                        op: CmpOp::Ge,
                        a: v.into(),
                        b: Val::Const((i as i32) * 100 / guards as i32),
                        body: vec![Inst::Bin {
                            op: AluOp::Iadd,
                            a: counter.into(),
                            b: Val::Const(1),
                            d: counter,
                        }],
                    }
                })
                .collect(),
            induction: ind,
            start: 1,
            step: 1,
            trips,
        };
        let fj = compile_forkjoin(&spec, guards + 1).expect("fork/join compiles");
        let vl = compile_forkjoin_vliw(&spec, guards + 1).expect("baseline compiles");
        let run = |prog: &Program, width: usize, trips_reg: Reg| {
            let mut sim = Xsim::new(prog.clone(), MachineConfig::with_width(width))
                .expect("program validates");
            sim.mem_mut().poke_slice(100, &data).expect("data fits");
            sim.write_reg(trips_reg, (n as i32).into());
            let cycles = sim.run(1_000_000).expect("run completes").cycles;
            (sim, cycles)
        };
        let (xs, xc) = run(&fj.program, fj.width, fj.trips_reg);
        let (vs, vc) = run(&vl.program, vl.width, vl.trips_reg);
        // Correctness: counters match the oracle on both machines.
        for i in 0..guards {
            let bound = (i as i32) * 100 / guards as i32;
            let expect = data.iter().filter(|&&x| x >= bound).count() as i32;
            let c = VReg(3 + i as u32);
            ok &= xs.reg(fj.reg_of[&c]).as_i32() == expect;
            ok &= vs.reg(vl.reg_of[&c]).as_i32() == expect;
        }
        ok &= xc < vc;
        let _ = writeln!(
            body,
            "{guards:>7} {xc:>12} {vc:>12} {:>8.2}x",
            vc as f64 / xc as f64
        );
    }
    let _ = writeln!(
        body,
        "\nthe XIMD loop costs a constant 4 + prologue cycles per iteration regardless of\n\
         guard count (all branches in one cycle, equal-path re-join); the VLIW loop adds\n\
         one branch cycle per guard — the section 1.3 control-flow bottleneck, measured"
    );
    Report {
        id: "FORKJOIN",
        title: "Fork/join guarded updates (section 3.2, generalized)",
        body,
        ok,
    }
}

/// Extension: automatic software pipelining — the same mini-C loop compiled
/// plainly and with `compile_pipelined` (modulo schedule + runtime
/// trip-count guard + fallback), swept over n.
pub fn run_autopipe() -> Report {
    use ximd::compiler::autopipeline::compile_pipelined;
    use ximd::compiler::compile;
    use ximd::prelude::*;

    const SRC: &str = r"
fn scale(n) {
    let i = 0;
    while (i < n) {
        mem[4000 + i] = mem[2000 + i] * 3 + 7;
        i = i + 1;
    }
    return 0;
}
";
    let (piped, ii) = compile_pipelined(SRC, 8).expect("loop compiles");
    let plain = compile(SRC, 8).expect("loop compiles");
    let Some(ii) = ii else {
        return Report {
            id: "AUTO",
            title: "Automatic software pipelining (extension)",
            body: "loop failed to qualify for pipelining".into(),
            ok: false,
        };
    };

    let mut body = String::new();
    let mut ok = true;
    let _ = writeln!(
        body,
        "achieved II = {ii} on 8 FUs; runtime guard falls back below the pipeline depth\n"
    );
    let _ = writeln!(
        body,
        "{:>6} {:>14} {:>14} {:>9}",
        "n", "plain cycles", "pipelined", "speedup"
    );
    for n in [2usize, 8, 32, 128, 512] {
        let input: Vec<i32> = (0..n as i32).map(|i| i * 13 % 97 - 40).collect();
        let run = |f: &ximd::compiler::CompiledFunction| {
            let mut sim =
                Vsim::new(f.vliw.clone(), MachineConfig::with_width(8)).expect("program validates");
            sim.write_reg(f.param_regs[0], (n as i32).into());
            sim.mem_mut().poke_slice(2000, &input).expect("fits");
            let cycles = sim.run(1_000_000).expect("runs").cycles;
            (sim.mem().peek_slice(4000, n).expect("fits"), cycles)
        };
        let (pout, pc) = run(&piped);
        let (qout, qc) = run(&plain);
        let expect: Vec<i32> = input.iter().map(|v| v * 3 + 7).collect();
        ok &= pout == expect && qout == expect;
        if n >= 32 {
            ok &= pc < qc;
        }
        let _ = writeln!(
            body,
            "{n:>6} {qc:>14} {pc:>14} {:>8.2}x",
            qc as f64 / pc as f64
        );
    }
    let _ = writeln!(
        body,
        "\nsteady-state cost approaches II = {ii} cycles/iteration vs the plain loop's\n\
         header-test + body + back-branch; small n uses the unmodified fallback loop"
    );
    Report {
        id: "AUTO",
        title: "Automatic software pipelining (extension)",
        body,
        ok,
    }
}

/// What the xlint preflight saw across every harness program.
#[derive(Debug, Clone, Default)]
pub struct Preflight {
    /// Per-program report lines.
    pub body: String,
    /// Any error-severity finding.
    pub errors: bool,
    /// Some program's product exploration hit the state cap, so the
    /// product verdicts (deadlock, termination) are incomplete — the
    /// preflight must not pass such a run off as verified-clean.
    pub incomplete: bool,
}

/// Lint every program the harness executes, before any experiment runs.
///
/// Covers the hand-written workload listings (assembled, so findings carry
/// source lines), the hand-built Livermore Loop 12 kernel, and — via the
/// schedule certifier — every compiler-emitted suite schedule. Returns the
/// per-program report, whether any *error*-severity finding was seen, and
/// whether any product exploration was cap-truncated; warnings — MINMAX's
/// deliberate cross-stream handoff draws two — are reported but do not
/// fail the preflight.
pub fn lint_preflight() -> Preflight {
    use ximd::analysis::{cycle_bounds, lint_assembly, AnalysisConfig, BoundsConfig};

    // One static-oracle line per program: the worst-case cycle bound under
    // ideal timing, or `unbounded` where streams honestly diverge. These
    // are informational — unbounded is the truthful verdict for most XIMD
    // forms without harness entry facts.
    fn bound_line(program: &ximd::isa::Program, config: &AnalysisConfig) -> String {
        let report = cycle_bounds(program, config, &BoundsConfig::default());
        match report.total {
            Some(total) => format!("cycle bound <= {total}"),
            None => "cycle bound unbounded".to_string(),
        }
    }

    let config = AnalysisConfig::default();
    let assemblies = [
        ("tproc", tproc::ximd_assembly()),
        ("minmax", minmax::ximd_assembly()),
        ("bitcount", bitcount::ximd_assembly()),
        ("nonblocking/sync", nonblocking::sync_assembly()),
        ("nonblocking/flags", nonblocking::flags_assembly()),
        ("race", ximd::workloads::race::ximd_assembly()),
    ];
    let mut pf = Preflight::default();
    for (name, assembly) in &assemblies {
        let analysis = lint_assembly(assembly, &config);
        pf.errors |= analysis.has_errors();
        pf.incomplete |= analysis.truncated;
        let bounds = bound_line(&assembly.program, &config);
        let _ = writeln!(pf.body, "{name:<18} {analysis}; {bounds}");
    }
    let ll12_program = livermore::ximd_program();
    let ll12 = ximd::analysis::analyze(&ll12_program, &config);
    pf.errors |= ll12.has_errors();
    pf.incomplete |= ll12.truncated;
    let bounds = bound_line(&ll12_program, &config);
    let _ = writeln!(pf.body, "{:<18} {ll12}; {bounds}", "livermore/ll12");
    // Translation validation for the compiler-emitted schedules: every
    // suite workload's compiled program must verify against its embedded
    // schedule certificate before the harness trusts its numbers.
    for w in &ximd::compiler::suite::SUITE {
        let (f, _) = w.compile(4).expect("suite workload compiles");
        let cert = f
            .cert
            .as_ref()
            .expect("compiled output carries a certificate");
        let report = ximd::analysis::certify_program(&f.ximd_program(), cert);
        pf.errors |= report.has_errors();
        let name = format!("compiled/{}", w.name);
        let _ = writeln!(pf.body, "{name:<18} certify: {report}");
    }
    pf
}

/// Every experiment, in paper order.
pub fn all_reports() -> Vec<Report> {
    vec![
        run_models(),
        run_ex1_tproc(),
        run_ll12(),
        run_ex2_minmax(),
        run_fig10_trace(),
        run_ex3_bitcount(),
        run_fig11_flow(),
        run_fig12_nonblocking(),
        run_fig13_tiles(),
        run_perf_table(),
        run_prototype(),
        run_coarse(),
        run_ll_kernels(),
        run_forkjoin(),
        run_autopipe(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_preflight_passes() {
        let pf = lint_preflight();
        assert!(!pf.errors, "preflight found errors:\n{}", pf.body);
        assert!(!pf.incomplete, "preflight hit the state cap:\n{}", pf.body);
        // MINMAX's two cross-stream warnings are expected and must not
        // silently vanish — they pin the analysis' sensitivity.
        assert!(pf.body.contains("minmax"));
        assert!(
            pf.body.contains("cross-stream"),
            "minmax warnings missing:\n{}",
            pf.body
        );
        // The compiler-emitted suite schedules certify clean.
        for name in ["saxpy", "livermore", "minmax", "bitcount", "tproc"] {
            assert!(
                pf.body.contains(&format!("compiled/{name}")),
                "certify line for {name} missing:\n{}",
                pf.body
            );
        }
    }

    #[test]
    fn every_experiment_reports_ok() {
        for report in all_reports() {
            assert!(
                report.ok,
                "experiment {} failed:\n{}",
                report.id, report.body
            );
        }
    }

    #[test]
    fn perf_rows_cover_all_workloads() {
        let rows = perf_rows();
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["tproc", "livermore12", "minmax", "bitcount", "nonblocking"]
        );
        assert!(rows.iter().all(|r| r.correct));
    }

    #[test]
    fn fig10_report_is_exact() {
        let r = run_fig10_trace();
        assert!(r.ok);
        assert!(r.body.contains("matches the published Figure 10 exactly"));
    }

    #[test]
    fn reports_render() {
        let r = run_models();
        let text = r.to_string();
        assert!(text.contains("MODELS"));
        assert!(text.contains("XIMD"));
    }
}
