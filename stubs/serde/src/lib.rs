//! Offline stand-in for `serde` (see `stubs/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything at runtime, so this stub keeps the *derives*
//! compiling: the re-exported derive macros expand to nothing and the
//! traits carry blanket impls, so `T: Serialize` bounds (if any appear)
//! remain satisfiable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe {
        _x: u32,
    }

    fn assert_bounds<T: super::Serialize + super::DeserializeOwned>() {}

    #[test]
    fn derives_and_bounds_compile() {
        assert_bounds::<Probe>();
        assert_bounds::<Vec<String>>();
    }
}
