//! Offline stand-in for `parking_lot`, backed by `std::sync` (see
//! `stubs/README.md`). Only the `Mutex`/`RwLock` surface the workspace uses
//! is provided; poisoning is swallowed, matching parking_lot's panic-free
//! `lock()` signature.

/// A mutex whose `lock` does not return a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// An rwlock whose guards do not return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
