//! Offline stand-in for `criterion` (see `stubs/README.md`).
//!
//! Bench binaries keep compiling and each benchmark body runs exactly once
//! per invocation — a smoke test rather than a measurement. Timing is
//! reported coarsely with `std::time::Instant` so `cargo bench` output
//! stays vaguely informative without any statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant.
    BytesDecimal(u64),
}

/// Runs one closure invocation and reports wall-clock time.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once and records its duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        drop(out);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {label:<40} {:?} (single pass)", b.elapsed);
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` once under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs `f` once under `id` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// The default driver.
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion {}
    }

    /// Accepted and ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored (real criterion parses argv here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs `f` once under `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&name.to_string(), f);
        self
    }
}

/// An opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main`, running each group once.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
