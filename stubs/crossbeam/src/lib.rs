//! Offline stand-in for `crossbeam`, backed by `std::thread::scope` (see
//! `stubs/README.md`). Only scoped spawning is provided — the single
//! crossbeam API the workspace uses.

/// A scope handle mirroring `crossbeam::thread::Scope`.
///
/// `repr(transparent)` over [`std::thread::Scope`] so a `&std` scope can be
/// reinterpreted as `&Scope` without constructing a value whose borrow
/// would have to last for the (caller-chosen, invariant) `'scope` lifetime.
#[repr(transparent)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (unused by
    /// the workspace, but part of crossbeam's signature).
    pub fn spawn<F, T>(&'scope self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(self))
    }
}

/// Runs `f` with a scope in which threads borrowing local state can be
/// spawned; all are joined before returning. Always `Ok` (panics propagate
/// as panics, as with `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        // SAFETY: Scope is repr(transparent) over std::thread::Scope, so
        // the pointer cast preserves layout; lifetimes are unchanged.
        let wrapped =
            unsafe { &*(s as *const std::thread::Scope<'_, 'env> as *const Scope<'_, 'env>) };
        f(wrapped)
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1, 2, 3];
        let total = std::sync::Mutex::new(0);
        super::scope(|scope| {
            for &x in &data {
                scope.spawn(|_| {
                    *total.lock().unwrap() += x;
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner().unwrap(), 6);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
