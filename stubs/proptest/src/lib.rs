//! Offline stand-in for `proptest` (see `stubs/README.md`).
//!
//! This workspace builds hermetically (no crates.io), so its property tests
//! run against this minimal re-implementation: the same `Strategy` DSL
//! surface (`prop_map`, `prop_flat_map`, `prop_oneof!`, `prop_compose!`,
//! `proptest!`, `any`, `sample::select`, `collection::vec`, …) driven by a
//! deterministic per-test splitmix64 generator. Differences from real
//! proptest: no shrinking (a failing case reports its values, not a
//! minimal counterexample), no persisted failure seeds, and case seeds are
//! derived from the test's module path, so runs are fully reproducible.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator backing every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator from an explicit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The generator for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h ^ (u64::from(case) << 32 | u64::from(case)))
        }

        /// The next raw 64-bit output (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case asked to be skipped (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (skipped case) with a message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of one type.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// seeded sampler.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then a value from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Retries generation until `f` accepts the value (bounded; panics
        /// if the filter rejects too often).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
        }
    }

    /// A closure-backed strategy (used by `prop_compose!`).
    #[derive(Clone)]
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!options.is_empty(), "empty prop_oneof!");
            let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.gen_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    use crate::strategy::{FnStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        fn arbitrary() -> impl Strategy<Value = Self> + 'static;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> impl Strategy<Value = $t> + 'static {
                    FnStrategy(|rng: &mut TestRng| rng.next_u64() as $t)
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary() -> impl Strategy<Value = bool> + 'static {
            FnStrategy(|rng: &mut TestRng| rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary() -> impl Strategy<Value = f32> + 'static {
            // Finite values only, spread over a wide magnitude range.
            FnStrategy(|rng: &mut TestRng| {
                let mantissa = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
                let scale = [1.0f32, 1e3, 1e-3, 1e6][(rng.next_u64() % 4) as usize];
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                mantissa * scale * sign
            })
        }
    }

    /// The canonical strategy for `T`, as in `any::<u32>()`.
    pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> + 'static {
        T::arbitrary()
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Generates vectors of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A strategy for vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `prop::…` path alias, mirroring the real prelude.
pub mod prop {
    pub use crate::{arbitrary, collection, sample, strategy};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Defines a function returning a strategy built from named sub-strategies,
/// mirroring proptest's `prop_compose!` (one or two binding groups).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($args:tt)*)
        ($($p1:pat in $s1:expr),+ $(,)?)
        ($($p2:pat in $s2:expr),+ $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $p1 = $crate::strategy::Strategy::gen_value(&($s1), rng);)+
                $(let $p2 = $crate::strategy::Strategy::gen_value(&($s2), rng);)+
                $body
            })
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($args:tt)*)
        ($($p1:pat in $s1:expr),+ $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $p1 = $crate::strategy::Strategy::gen_value(&($s1), rng);)+
                $body
            })
        }
    };
}

/// Declares property tests: each `fn name(x in strategy, …) { body }` runs
/// `cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $p = $crate::strategy::Strategy::gen_value(&($s), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases,
                            "proptest {}: every case rejected",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u32> {
        prop_oneof![2 => 0u32..10, 1 => 90u32..100]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn oneof_picks_from_both_arms(x in arb_small()) {
            prop_assert!(x < 10 || (90..100).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(v in prop::collection::vec((0u8..4).prop_map(u32::from), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    prop_compose! {
        fn arb_pair()(hi in 10u32..20)(lo in 0u32..10, hi in Just(hi)) -> (u32, u32) {
            (lo, hi)
        }
    }

    proptest! {
        #[test]
        fn compose_orders_stages(pair in arb_pair()) {
            prop_assert!(pair.0 < pair.1);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        let mut c = TestRng::for_case("x", 2);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn select_and_boxed() {
        let s = crate::sample::select(vec![1, 2, 3]).boxed();
        let mut rng = TestRng::from_seed(9);
        for _ in 0..20 {
            assert!((1..=3).contains(&s.gen_value(&mut rng)));
        }
    }
}
