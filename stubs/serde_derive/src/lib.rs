//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in
//! (see `stubs/README.md`).
//!
//! The workspace only *derives* the serde traits — nothing serializes at
//! runtime — so the derives expand to nothing and the stub `serde` crate
//! provides blanket impls instead. `attributes(serde)` keeps any
//! field-level `#[serde(...)]` attributes accepted.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
