//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the external dependencies are replaced by minimal local
//! implementations via `[patch.crates-io]` (see `stubs/README.md`). This
//! crate covers exactly the surface the workspace uses: `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`.
//!
//! The generator is a splitmix64 — statistically fine for test-data
//! generation, deterministic per seed, but *not* the upstream `SmallRng`
//! algorithm; seeded streams differ from real `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait.
pub trait Rng {
    /// The raw 64-bit output feeding every sampler.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small-footprint generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small fast generator (splitmix64 here; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i32 = a.gen_range(-20..20);
            assert_eq!(x, b.gen_range(-20..20));
            assert!((-20..20).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn inclusive_range_covers_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
